import pathlib
import sys

# Make `tests.*` helper imports resolve regardless of invocation directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
