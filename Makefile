# Developer workflow for the Choir reproduction.
#
#   make lint          repo-specific AST rules (R001-R007) + ruff, if installed
#   make typecheck     mypy per the gradual-strictness table in pyproject.toml
#   make test          the tier-1 suite (includes the static-analysis gate)
#   make check         all of the above
#   make bench-gateway streaming-gateway throughput -> BENCH_gateway.json
#   make bench-decode  per-packet decode latency vs SF/users -> BENCH_decode.json
#   make bench-check   regression gate vs the committed BENCH_decode.json (+-25%)

PYTHON   ?= python
PYTHONPATH := src

.PHONY: lint typecheck test check bench-gateway bench-decode bench-check

lint:
	$(PYTHON) tools/repro_lint.py src tools
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
	else \
		echo "ruff not installed (pip install -e '.[lint]'); skipping"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed (pip install -e '.[lint]'); skipping"; \
	fi

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

check: lint typecheck test

bench-gateway:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_report.py --out BENCH_gateway.json

bench-decode:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_decode.py --out BENCH_decode.json

bench-check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_report.py \
		--compare BENCH_decode.json --tolerance 0.25
