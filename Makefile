# Developer workflow for the Choir reproduction.
#
#   make lint          repo-specific AST rules (R001-R013) + ruff, if installed
#   make analyze       the AST dataflow engine alone, with a JSON findings report
#   make typecheck     mypy per the gradual-strictness table in pyproject.toml
#   make test          the tier-1 suite (includes the static-analysis gate)
#   make soak          full-length server soak (bounded-memory proof)
#   make check         all of the above
#   make ci            what .github/workflows/ci.yml runs, locally
#   make campaign      scaled capacity sweep (Choir vs standard LoRa) with
#                      the ordering assertion -- what the CI campaign job runs
#   make bench-gateway streaming-gateway throughput -> BENCH_gateway.json
#   make bench-decode  per-packet decode latency vs SF/users -> $(BENCH_DECODE_OUT)
#   make bench-cascade tiered vs full decode on a mixed workload -> $(BENCH_CASCADE_OUT)
#   make bench-capacity capacity sweep baseline -> $(BENCH_CAPACITY_OUT)
#   make bench-check   regression gate vs the committed BENCH_decode.json (+-25%)
#   make bench-profile profiled gateway run -> run manifest + collapsed stacks
#   make profile-check `repro diff` gate vs the committed BENCH_profile.json
#
# Benchmark knobs (CI overrides these so it never rewrites the committed
# baseline and gets extra slack for shared-runner jitter):
#   BENCH_DECODE_OUT   where bench-decode writes its report
#   BENCH_CASCADE_OUT  where bench-cascade writes its report
#   BENCH_CAPACITY_OUT where bench-capacity writes its report
#   BENCH_BASELINE     baseline bench-check gates against
#   BENCH_CANDIDATE    pre-recorded report to gate (empty = re-run fresh)
#   BENCH_TOLERANCE    allowed fractional slowdown (0.25 = +-25%)
#   BENCH_SLACK        absolute grace in seconds on top of the tolerance
#   BENCH_PROFILE_OUT  where bench-profile writes the run manifest
#   BENCH_STACKS_OUT   where bench-profile writes the collapsed stacks
#   PROFILE_BASELINE   manifest profile-check diffs against
#   PROFILE_CANDIDATE  candidate manifest profile-check gates
#   PROFILE_TOLERANCE  allowed fractional drift per metric (wall times are
#                      machine-dependent, so this is deliberately wide)
#   PROFILE_SLACK      absolute grace on top of the tolerance
#
# Campaign knobs (defaults are the CI scale; the committed scenario's own
# sweep section is the full 100/300/1000-node campaign):
#   CAMPAIGN_SCENARIO  scenario file the sweep loads
#   CAMPAIGN_NODES     node counts swept
#   CAMPAIGN_DURATION  simulated air seconds per sweep point

PYTHON   ?= python
PYTHONPATH := src

BENCH_DECODE_OUT ?= BENCH_decode.json
BENCH_CASCADE_OUT ?= BENCH_cascade.json
BENCH_CAPACITY_OUT ?= BENCH_capacity.json
BENCH_BASELINE   ?= BENCH_decode.json
BENCH_CANDIDATE  ?=
BENCH_TOLERANCE  ?= 0.25
BENCH_SLACK      ?= 0.002

BENCH_PROFILE_OUT ?= BENCH_profile.json
BENCH_STACKS_OUT  ?= profile_stacks.txt
PROFILE_BASELINE  ?= BENCH_profile.json
PROFILE_CANDIDATE ?= BENCH_profile.ci.json
PROFILE_TOLERANCE ?= 3.0
PROFILE_SLACK     ?= 0.05

CAMPAIGN_SCENARIO ?= scenarios/eu868_urban.yaml
CAMPAIGN_NODES    ?= 50 200 800
CAMPAIGN_DURATION ?= 10
CAMPAIGN_JSON     ?= capacity_curve.json
CAMPAIGN_CSV      ?= capacity_curve.csv
CAMPAIGN_MANIFEST ?= campaign_manifest.json
CAMPAIGN_STACKS   ?= campaign_stacks.txt

ANALYZE_OUT ?= analysis_findings.json

.PHONY: lint analyze typecheck test soak check ci campaign bench-gateway bench-decode bench-cascade bench-capacity bench-check bench-profile profile-check

lint:
	$(PYTHON) tools/repro_lint.py --engine=ast src tools
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
	else \
		echo "ruff not installed (pip install -e '.[lint]'); skipping"; \
	fi

# Concurrency & determinism audit (DESIGN.md Sec. 14): rules R001-R013
# over the source tree, findings also written as a JSON artifact.
analyze:
	$(PYTHON) tools/repro_lint.py --engine=ast --json $(ANALYZE_OUT) src tools

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed (pip install -e '.[lint]'); skipping"; \
	fi

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The tier-1 suite runs a scaled-down version of this; SOAK=1 runs the
# full-length stream (50x) and the telemetry-cardinality check.
soak:
	SOAK=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/server/test_soak_server.py -q

check: lint typecheck test

# Mirror of the CI workflow: the same gates, the same benchmark flow
# (fresh candidate report compared against the committed baseline with
# runner slack), without touching BENCH_decode.json.
ci:
	$(MAKE) lint
	$(MAKE) analyze
	$(MAKE) typecheck
	$(MAKE) test
	CI=1 $(MAKE) bench-decode BENCH_DECODE_OUT=BENCH_decode.ci.json
	$(MAKE) bench-check BENCH_CANDIDATE=BENCH_decode.ci.json BENCH_SLACK=0.05
	CI=1 $(MAKE) bench-cascade BENCH_CASCADE_OUT=BENCH_cascade.ci.json
	$(MAKE) bench-check BENCH_BASELINE=BENCH_cascade.json BENCH_CANDIDATE=BENCH_cascade.ci.json BENCH_SLACK=0.05
	$(MAKE) campaign
	CI=1 $(MAKE) bench-capacity BENCH_CAPACITY_OUT=BENCH_capacity.ci.json
	$(MAKE) bench-check BENCH_BASELINE=BENCH_capacity.json BENCH_CANDIDATE=BENCH_capacity.ci.json BENCH_TOLERANCE=0.5 BENCH_SLACK=0.05
	CI=1 $(MAKE) bench-profile BENCH_PROFILE_OUT=BENCH_profile.ci.json BENCH_STACKS_OUT=profile_stacks.ci.txt
	$(MAKE) profile-check PROFILE_CANDIDATE=BENCH_profile.ci.json

# The CI campaign job: scaled node-count sweep over the committed urban
# scenario, with the Choir-vs-standard capacity ordering asserted at
# every point (strictly above from 200 nodes on) and the curve written
# as plot-ready JSON + CSV artifacts, plus the sweep's run manifest and
# collapsed kernel stacks (where did the campaign's time go).
campaign:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro campaign \
		--scenario $(CAMPAIGN_SCENARIO) \
		--nodes $(CAMPAIGN_NODES) --duration $(CAMPAIGN_DURATION) \
		--json-out $(CAMPAIGN_JSON) --csv-out $(CAMPAIGN_CSV) \
		--profile-out $(CAMPAIGN_MANIFEST) --stacks-out $(CAMPAIGN_STACKS) \
		--assert-ordering

# The committed baseline is the 8-channel EU868 mixed-SF sharded run
# (the configuration the ROADMAP's realtime target is stated against).
bench-gateway:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_report.py \
		--channels 8 --sf-set 7,8 --nodes 8 --duration 1.0 --workers 2 \
		--out BENCH_gateway.json

bench-decode:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_decode.py --out $(BENCH_DECODE_OUT)

bench-cascade:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_cascade.py --out $(BENCH_CASCADE_OUT)

bench-capacity:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_capacity.py --out $(BENCH_CAPACITY_OUT)

bench-check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_report.py \
		--compare $(BENCH_BASELINE) --tolerance $(BENCH_TOLERANCE) \
		--slack $(BENCH_SLACK) \
		$(if $(BENCH_CANDIDATE),--candidate $(BENCH_CANDIDATE),)

# The committed BENCH_gateway.json config rerun with the kernel profiler
# on: writes the diffable run manifest plus flamegraph-ready collapsed
# stacks.  The bench report itself goes to a scratch file so the
# committed unprofiled baseline is never overwritten.
bench-profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/bench_report.py \
		--channels 8 --sf-set 7,8 --nodes 8 --duration 1.0 --workers 2 \
		--out BENCH_gateway.profiled.json \
		--profile-out $(BENCH_PROFILE_OUT) --stacks-out $(BENCH_STACKS_OUT)

# Diff a fresh manifest against the committed BENCH_profile.json.
# Strict mode: a kernel disappearing from the table (instrumentation
# silently dropped) fails the gate just like a slowdown; the wide
# tolerance absorbs machine-speed differences on wall metrics.
profile-check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro diff \
		$(PROFILE_BASELINE) $(PROFILE_CANDIDATE) \
		--tolerance $(PROFILE_TOLERANCE) --slack $(PROFILE_SLACK) \
		--assert-no-regression
