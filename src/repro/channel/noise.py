"""Additive white Gaussian noise and noise-floor accounting."""

from __future__ import annotations

import numpy as np

from repro.utils import RngLike, db_to_linear, ensure_rng

#: Boltzmann constant (J/K) for thermal-noise computation.
BOLTZMANN = 1.380649e-23


def thermal_noise_power(
    bandwidth_hz: float, noise_figure_db: float = 6.0, temperature_k: float = 290.0
) -> float:
    """Receiver noise power in watts over ``bandwidth_hz``.

    ``kTB`` plus the receiver noise figure; with a 125 kHz LoRa channel and
    a 6 dB NF this lands near -117 dBm, the ballpark commodity gateways
    quote.
    """
    return BOLTZMANN * temperature_k * bandwidth_hz * db_to_linear(noise_figure_db)


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 6.0) -> float:
    """Same as :func:`thermal_noise_power` but in dBm."""
    watts = thermal_noise_power(bandwidth_hz, noise_figure_db)
    return 10.0 * np.log10(watts * 1e3)


def awgn(waveform: np.ndarray, noise_power: float, rng: RngLike = None) -> np.ndarray:
    """Add complex AWGN of total (I+Q) power ``noise_power`` to a waveform."""
    rng = ensure_rng(rng)
    waveform = np.asarray(waveform, dtype=complex)
    sigma = np.sqrt(noise_power / 2.0)
    noise = rng.normal(0.0, sigma, waveform.size) + 1j * rng.normal(0.0, sigma, waveform.size)
    return waveform + noise


def awgn_for_snr(
    waveform: np.ndarray,
    snr_db_target: float,
    signal_power: float | None = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Add AWGN so the result has the requested SNR relative to the signal.

    If ``signal_power`` is not given it is measured from ``waveform`` --
    callers dealing with collisions should pass the power of the *user of
    interest*, not the aggregate.
    """
    waveform = np.asarray(waveform, dtype=complex)
    if signal_power is None:
        signal_power = float(np.mean(np.abs(waveform) ** 2))
    noise_power = signal_power / db_to_linear(snr_db_target)
    return awgn(waveform, noise_power, rng=rng)
