"""Path-loss models calibrated for the urban LP-WAN setting.

The paper's range results (Sec. 9.3) are driven by how fast signals decay
with distance in a built-up area: a single client dies at ~1 km while a
30-node team reaches 2.65 km.  A log-distance model with an urban exponent
of ~3.5 reproduces exactly that relation, since an N-node team's coherent
power gain of N buys a distance factor of ``N**(1/eta)`` and
``30**(1/3.5) = 2.64``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class FreeSpacePathLoss:
    """Friis free-space loss, the rural/line-of-sight reference."""

    carrier_hz: float = 902e6

    def loss_db(self, distance_m: float | np.ndarray) -> float | np.ndarray:
        """Free-space path loss in dB at ``distance_m`` meters."""
        distance_m = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
        wavelength = 299_792_458.0 / self.carrier_hz
        return 20.0 * np.log10(4.0 * np.pi * distance_m / wavelength)


@dataclass(frozen=True)
class UrbanPathLoss:
    """Log-distance path loss with log-normal shadowing.

    ``PL(d) = PL(d0) + 10 * eta * log10(d / d0) + X_sigma``

    Parameters
    ----------
    exponent:
        Path-loss exponent ``eta``; 3.4-3.8 is typical of dense urban
        macro cells, and 3.5 calibrates the single-client range to ~1 km
        for LoRa link budgets.
    reference_loss_db:
        Loss at the reference distance (free space at ``reference_m`` by
        default for 902 MHz: ~31.5 dB at 1 m).
    shadowing_sigma_db:
        Log-normal shadowing standard deviation (buildings, terrain).
    """

    exponent: float = 3.5
    reference_m: float = 1.0
    reference_loss_db: float = 31.5
    shadowing_sigma_db: float = 0.0
    carrier_hz: float = 902e6

    def loss_db(self, distance_m: float | np.ndarray, rng: RngLike = None) -> float | np.ndarray:
        """Path loss in dB at ``distance_m`` (with shadowing if configured)."""
        distance_m = np.maximum(np.asarray(distance_m, dtype=float), self.reference_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * np.log10(
            distance_m / self.reference_m
        )
        if self.shadowing_sigma_db > 0.0:
            rng = ensure_rng(rng)
            loss = loss + rng.normal(0.0, self.shadowing_sigma_db, np.shape(distance_m))
        if np.ndim(distance_m) == 0:
            return float(loss)
        return loss

    def distance_for_loss(self, loss_db: float) -> float:
        """Invert the (shadowing-free) model: distance achieving ``loss_db``."""
        exponent_term = (loss_db - self.reference_loss_db) / (10.0 * self.exponent)
        return float(self.reference_m * 10.0**exponent_term)
