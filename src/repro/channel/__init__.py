"""Wireless channel substrate: noise, urban path loss, fading, collisions.

Replaces the paper's physical RF environment (10 km^2 of urban Pittsburgh)
with calibrated models: log-distance path loss with log-normal shadowing,
flat Rayleigh/Rician fading per link, AWGN at a configurable noise floor,
and a collision channel that superimposes several impaired client waveforms
with arbitrary per-user delays -- the input the Choir decoder consumes.
"""

from repro.channel.noise import awgn, noise_power_dbm, thermal_noise_power
from repro.channel.pathloss import UrbanPathLoss, FreeSpacePathLoss
from repro.channel.fading import FlatFadingChannel
from repro.channel.link import LinkBudget, LinkModel
from repro.channel.collider import CollisionChannel, ReceivedPacket

__all__ = [
    "awgn",
    "noise_power_dbm",
    "thermal_noise_power",
    "UrbanPathLoss",
    "FreeSpacePathLoss",
    "FlatFadingChannel",
    "LinkBudget",
    "LinkModel",
    "CollisionChannel",
    "ReceivedPacket",
]
