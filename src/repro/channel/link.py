"""Link budget: TX power -> received SNR through path loss and fading."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.fading import FlatFadingChannel
from repro.channel.noise import noise_power_dbm
from repro.channel.pathloss import UrbanPathLoss
from repro.utils import RngLike, db_to_linear, ensure_rng


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget terms shared by every link to one base station.

    ``penetration_loss_db`` lumps the urban extras the paper blames for its
    short single-client range (building penetration, hilly terrain, the
    USRP's receive chain, Sec. 9.3): with the default 22.5 dB, a 14 dBm
    client at the *minimum* LoRaWAN rate (SF12) dies at ~1 km under the
    eta=3.5 urban model -- the paper's measured single-node limit -- and a
    30-node team's ~14.8 dB pooled-SNR gain buys ``30**(1/3.5) = 2.64x``
    distance, matching the 2.65 km headline.
    """

    tx_power_dbm: float = 14.0
    tx_antenna_gain_dbi: float = 0.0
    rx_antenna_gain_dbi: float = 3.0
    bandwidth_hz: float = 125_000.0
    noise_figure_db: float = 6.0
    penetration_loss_db: float = 22.5

    @property
    def noise_floor_dbm(self) -> float:
        """Receiver noise power over the channel bandwidth."""
        return float(noise_power_dbm(self.bandwidth_hz, self.noise_figure_db))

    def rx_power_dbm(self, path_loss_db: float) -> float:
        """Mean received power for a given path loss."""
        return (
            self.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.penetration_loss_db
            - path_loss_db
        )

    def snr_db(self, path_loss_db: float) -> float:
        """Mean SNR for a given path loss."""
        return self.rx_power_dbm(path_loss_db) - self.noise_floor_dbm


@dataclass
class LinkModel:
    """One client-to-base-station link: distance -> per-packet gain and SNR.

    Combines the urban path-loss model, per-packet flat fading, and the link
    budget.  :meth:`packet_gain` returns the complex amplitude scale to apply
    to a unit-power transmit waveform so that, with the base station's noise
    normalized to power 1, the sample SNR equals the link SNR.
    """

    budget: LinkBudget = field(default_factory=LinkBudget)
    pathloss: UrbanPathLoss = field(default_factory=UrbanPathLoss)
    fading: FlatFadingChannel = field(default_factory=FlatFadingChannel)

    def mean_snr_db(self, distance_m: float) -> float:
        """Distance -> mean (fading-free, shadowing-free) SNR in dB."""
        loss = UrbanPathLoss(
            exponent=self.pathloss.exponent,
            reference_m=self.pathloss.reference_m,
            reference_loss_db=self.pathloss.reference_loss_db,
            shadowing_sigma_db=0.0,
            carrier_hz=self.pathloss.carrier_hz,
        ).loss_db(distance_m)
        return self.budget.snr_db(float(loss))

    def range_for_snr(self, snr_db: float) -> float:
        """Largest distance at which the mean SNR is still ``snr_db``."""
        loss_db = (
            self.budget.tx_power_dbm
            + self.budget.tx_antenna_gain_dbi
            + self.budget.rx_antenna_gain_dbi
            - self.budget.penetration_loss_db
            - self.budget.noise_floor_dbm
            - snr_db
        )
        return self.pathloss.distance_for_loss(loss_db)

    def packet_gain(self, distance_m: float, rng: RngLike = None) -> complex:
        """Draw one packet's complex channel gain (noise power == 1 ref).

        The magnitude is scaled so ``|gain|^2`` equals the linear SNR;
        shadowing and fading multiply on top of the mean.
        """
        rng = ensure_rng(rng)
        loss_db = float(self.pathloss.loss_db(distance_m, rng=rng))
        snr_linear = db_to_linear(self.budget.snr_db(loss_db))
        fade = self.fading.sample_gain(rng)
        return complex(np.sqrt(snr_linear) * fade)
