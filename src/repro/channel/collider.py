"""Collision channel: superimpose impaired client waveforms + noise.

This is the integration point that produces exactly what the paper's USRP
base station records: the sum of several clients' chirp frames -- each with
its own oscillator offset, sub-symbol timing offset, random phase, and
complex channel gain -- plus unit-power AWGN (all amplitudes are expressed
relative to the noise floor, so ``|gain|^2`` *is* the linear SNR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.noise import awgn
from repro.hardware.adc import AdcModel
from repro.hardware.radio import LoRaRadio, TransmitterState
from repro.phy.params import LoRaParams
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class CollidedUser:
    """Ground truth for one participant in a collision (for evaluation)."""

    node_id: int
    symbols: np.ndarray
    gain: complex
    state: TransmitterState

    def true_offset_bins(self, params: LoRaParams) -> float:
        """The aggregate CFO+TO peak shift this user contributes, in bins."""
        return self.state.aggregate_offset_bins(params)


@dataclass(frozen=True)
class ReceivedPacket:
    """One base-station capture: samples plus per-user ground truth."""

    samples: np.ndarray
    params: LoRaParams
    users: tuple[CollidedUser, ...]
    noise_power: float = 1.0

    @property
    def n_users(self) -> int:
        return len(self.users)


@dataclass
class CollisionChannel:
    """Render a multi-user collision into base-station samples.

    Parameters
    ----------
    params:
        Shared PHY configuration (all colliders use the same spreading
        factor -- the hard case the paper targets; different spreading
        factors are already orthogonal, see Sec. 5.2 note (4)).
    noise_power:
        AWGN power at the receiver; defaults to 1 so user gains are SNRs.
    adc:
        Optional ADC quantization applied after superposition.
    """

    params: LoRaParams
    noise_power: float = 1.0
    adc: AdcModel | None = None

    def receive(
        self,
        transmissions: list[tuple[LoRaRadio, np.ndarray, complex]],
        rng: RngLike = None,
        extra_noise_symbols: int = 1,
    ) -> ReceivedPacket:
        """Superimpose transmissions and add noise.

        Parameters
        ----------
        transmissions:
            ``(radio, data_symbols, channel_gain)`` triples.  Each radio
            renders its frame with its own impairments; ``channel_gain`` is
            the complex amplitude from :meth:`repro.channel.LinkModel.packet_gain`.
        extra_noise_symbols:
            Noise-only padding appended so timing-offset tails fit.
        """
        rng = ensure_rng(rng)
        if not transmissions:
            raise ValueError("at least one transmission is required")
        rendered: list[np.ndarray] = []
        users: list[CollidedUser] = []
        for radio, symbols, gain in transmissions:
            waveform, state = radio.transmit_symbols(np.asarray(symbols, dtype=int))
            rendered.append(waveform * gain)
            users.append(
                CollidedUser(
                    node_id=radio.node_id,
                    symbols=np.asarray(symbols, dtype=int).copy(),
                    gain=complex(gain),
                    state=state,
                )
            )
        total_len = max(w.size for w in rendered)
        total_len += extra_noise_symbols * self.params.samples_per_symbol
        mixed = np.zeros(total_len, dtype=complex)
        for waveform in rendered:
            mixed[: waveform.size] += waveform
        noisy = awgn(mixed, self.noise_power, rng=rng)
        if self.adc is not None:
            noisy = self.adc.digitize(noisy)
        return ReceivedPacket(
            samples=noisy,
            params=self.params,
            users=tuple(users),
            noise_power=self.noise_power,
        )


def receive_mixed_sf(
    transmissions: list[tuple[LoRaRadio, np.ndarray, complex]],
    noise_power: float = 1.0,
    adc: AdcModel | None = None,
    rng: RngLike = None,
    extra_noise_samples: int = 1024,
) -> tuple[np.ndarray, list[CollidedUser]]:
    """Superimpose transmissions whose radios use *different* SFs.

    All radios must share the same bandwidth (hence sample rate); their
    chirps differ in spreading factor and therefore length.  Returns the
    raw capture plus per-user ground truth; feed the capture to
    :class:`repro.core.multisf.MultiSfDecoder` to demultiplex (paper
    Sec. 5.2 note 4).
    """
    rng = ensure_rng(rng)
    if not transmissions:
        raise ValueError("at least one transmission is required")
    rates = {radio.params.sample_rate for radio, _, _ in transmissions}
    if len(rates) != 1:
        raise ValueError("all radios must share one bandwidth/sample rate")
    rendered: list[np.ndarray] = []
    users: list[CollidedUser] = []
    for radio, symbols, gain in transmissions:
        waveform, state = radio.transmit_symbols(np.asarray(symbols, dtype=int))
        rendered.append(waveform * gain)
        users.append(
            CollidedUser(
                node_id=radio.node_id,
                symbols=np.asarray(symbols, dtype=int).copy(),
                gain=complex(gain),
                state=state,
            )
        )
    total_len = max(w.size for w in rendered) + extra_noise_samples
    mixed = np.zeros(total_len, dtype=complex)
    for waveform in rendered:
        mixed[: waveform.size] += waveform
    noisy = awgn(mixed, noise_power, rng=rng)
    if adc is not None:
        noisy = adc.digitize(noisy)
    return noisy, users
