"""Flat small-scale fading per link.

LoRa symbols are narrowband (125-500 kHz) and long (~ms), so multipath in
an urban microcell is well below the symbol time: the channel is flat in
frequency and quasi-static over a packet.  We model it as a single complex
gain per link per packet -- Rayleigh when no line of sight exists, Rician
otherwise.  This is the ``h_i`` of the paper's Eqn. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import RngLike, db_to_linear, ensure_rng


@dataclass(frozen=True)
class FlatFadingChannel:
    """Quasi-static flat fading gain generator.

    Parameters
    ----------
    rician_k_db:
        Rician K-factor in dB.  ``None`` selects pure Rayleigh fading; a
        large K approaches a deterministic (AWGN-only) channel.
    """

    rician_k_db: float | None = None

    def sample_gain(self, rng: RngLike = None) -> complex:
        """Draw one unit-mean-power complex channel gain."""
        rng = ensure_rng(rng)
        scatter = (rng.normal(0.0, 1.0) + 1j * rng.normal(0.0, 1.0)) / np.sqrt(2.0)
        if self.rician_k_db is None:
            return complex(scatter)
        k = float(db_to_linear(self.rician_k_db))
        los_phase = rng.uniform(0.0, 2.0 * np.pi)
        los = np.sqrt(k / (k + 1.0)) * np.exp(1j * los_phase)
        return complex(los + scatter / np.sqrt(k + 1.0))

    def sample_gains(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` independent link gains."""
        rng = ensure_rng(rng)
        return np.array([self.sample_gain(rng) for _ in range(n)], dtype=complex)
