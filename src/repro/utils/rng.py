"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalizes it through
:func:`ensure_rng`.  This keeps experiments reproducible end to end: a single
seed at the experiment level deterministically derives every radio's
oscillator offset, every channel's fading draw, and every MAC backoff.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator; an ``int`` or
    ``SeedSequence`` seeds a new generator; an existing generator is returned
    unchanged (so callers can share one stream).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
