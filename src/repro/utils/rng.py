"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalizes it through
:func:`ensure_rng`.  This keeps experiments reproducible end to end: a single
seed at the experiment level deterministically derives every radio's
oscillator offset, every channel's fading draw, and every MAC backoff.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator; an ``int`` or
    ``SeedSequence`` seeds a new generator; an existing generator is returned
    unchanged (so callers can share one stream).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def as_seed_sequence(rng: RngLike = None) -> np.random.SeedSequence:
    """Normalize ``rng`` into a :class:`numpy.random.SeedSequence`.

    The sequence is the *spawnable* form of a seed: independent child
    streams can be derived from it by key (:func:`derive_rng`) or in bulk
    (:func:`spawn_seeds`) without the children ever sharing state.  A
    ``Generator`` is accepted for convenience; when it still carries the
    seed sequence it was built from, that sequence is reused, otherwise a
    child sequence is drawn from the generator's stream.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        seq = getattr(rng.bit_generator, "seed_seq", None) or getattr(
            rng.bit_generator, "_seed_seq", None
        )
        if isinstance(seq, np.random.SeedSequence):
            return seq
        return np.random.SeedSequence(int(rng.integers(0, 2**63)))
    return np.random.SeedSequence(rng)


def derive_rng(rng: RngLike, *keys: int) -> np.random.Generator:
    """A generator deterministically derived from ``rng`` by integer key(s).

    Unlike drawing from a shared stream, the derived generator depends only
    on ``(rng, keys)`` -- not on how many draws happened before or which
    thread asks first.  The gateway uses this to give every decode job its
    own stream (keyed by job id), so a parallel run decodes identically to
    a serial one.
    """
    base = as_seed_sequence(rng)
    spawn_key = tuple(base.spawn_key) + tuple(int(k) for k in keys)
    child = np.random.SeedSequence(base.entropy, spawn_key=spawn_key)
    return np.random.default_rng(child)


def spawn_seeds(rng: RngLike, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences derived from ``rng``.

    Children are derived by index, so ``spawn_seeds(seed, n)[i]`` equals
    ``spawn_seeds(seed, m)[i]`` for any ``m > i`` -- resizing a worker pool
    does not reshuffle the streams of the workers that already existed.
    """
    base = as_seed_sequence(rng)
    return [
        np.random.SeedSequence(
            base.entropy, spawn_key=tuple(base.spawn_key) + (int(i),)
        )
        for i in range(n)
    ]
