"""Generic DSP helpers shared across the PHY and the Choir decoder."""

from __future__ import annotations

import numpy as np


def next_pow2(n: int) -> int:
    """Smallest power of two that is >= ``n`` (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def fractional_part(value: float | np.ndarray) -> float | np.ndarray:
    """Fractional part in ``[0, 1)`` (works for negative inputs too).

    ``np.mod`` can round to exactly 1.0 for tiny negative inputs; that edge
    is folded back to 0.0 so the contract holds.
    """
    frac = np.mod(value, 1.0)
    frac = np.where(frac >= 1.0, 0.0, frac)
    if np.ndim(value) == 0:
        return float(frac)
    return frac


def wrap_to_half(value: float | np.ndarray) -> float | np.ndarray:
    """Wrap a value (in bins, cycles, ...) into ``[-0.5, 0.5)``."""
    return np.mod(np.asarray(value, dtype=float) + 0.5, 1.0) - 0.5


def circular_distance(
    a: float | np.ndarray, b: float | np.ndarray, period: float = 1.0
) -> float | np.ndarray:
    """Shortest distance between ``a`` and ``b`` on a circle of ``period``.

    Used to compare fractional peak positions, which live on a circle of
    period one FFT bin: fractional offsets 0.02 and 0.98 are only 0.04
    apart, not 0.96.
    """
    diff = np.mod(np.asarray(a, dtype=float) - np.asarray(b, dtype=float), period)
    return np.minimum(diff, period - diff)


def fractional_delay(samples: np.ndarray, delay: float) -> np.ndarray:
    """Delay a signal by a (possibly fractional) number of samples.

    Implemented as a circular frequency-domain phase ramp, which is exact for
    signals that are (approximately) periodic over the record -- the case for
    the chirp symbols this library manipulates.  Positive ``delay`` moves the
    signal later in time.
    """
    samples = np.asarray(samples)
    n = samples.size
    if n == 0 or delay == 0.0:
        return samples.copy()
    freqs = np.fft.fftfreq(n)
    spectrum = np.fft.fft(samples)
    return np.fft.ifft(spectrum * np.exp(-2j * np.pi * freqs * delay))
