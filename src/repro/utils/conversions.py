"""Decibel/linear conversions and signal power helpers.

Conventions:

* All "power" quantities are linear power (watts, or arbitrary linear
  units); dB quantities are ``10 * log10``.
* :func:`signal_power` returns the *mean* sample power of a complex
  baseband signal, i.e. ``mean(|x|^2)``.
"""

from __future__ import annotations

import numpy as np


def db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value: float | np.ndarray, floor: float = 1e-30) -> float | np.ndarray:
    """Convert a linear power ratio to dB.

    Values at or below ``floor`` are clamped so the logarithm stays finite
    (useful when a decoded residual collapses to numerical zero).
    """
    clipped = np.maximum(np.asarray(value, dtype=float), floor)
    return 10.0 * np.log10(clipped)


def signal_power(samples: np.ndarray) -> float:
    """Mean sample power ``mean(|x|^2)`` of a (possibly complex) signal."""
    samples = np.asarray(samples)
    if samples.size == 0:
        return 0.0
    return float(np.mean(np.abs(samples) ** 2))


def power_db(samples: np.ndarray) -> float:
    """Mean sample power of a signal, in dB."""
    return float(linear_to_db(signal_power(samples)))


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """SNR in dB between a clean signal and a noise record."""
    noise_power = signal_power(noise)
    if noise_power == 0.0:
        return float("inf")
    return float(linear_to_db(signal_power(signal) / noise_power))
