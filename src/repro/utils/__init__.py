"""Small shared utilities: dB conversions, RNG plumbing, DSP helpers."""

from repro.utils.conversions import (
    db_to_linear,
    linear_to_db,
    power_db,
    signal_power,
    snr_db,
)
from repro.utils.rng import (
    RngLike,
    as_seed_sequence,
    derive_rng,
    ensure_rng,
    spawn_seeds,
)
from repro.utils.dsp import (
    circular_distance,
    fractional_delay,
    fractional_part,
    next_pow2,
    wrap_to_half,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "power_db",
    "signal_power",
    "snr_db",
    "RngLike",
    "as_seed_sequence",
    "derive_rng",
    "ensure_rng",
    "spawn_seeds",
    "circular_distance",
    "fractional_delay",
    "fractional_part",
    "next_pow2",
    "wrap_to_half",
]
