"""Terminal plotting helpers (no matplotlib dependency).

The experiment harness prints tables; these helpers render quick visual
sanity checks -- spectra, CDFs, bar charts -- as ASCII, used by the CLI
and the visualization example to echo the paper's figures in a terminal.
"""

from __future__ import annotations

import numpy as np


def ascii_line(
    values: np.ndarray,
    width: int = 72,
    height: int = 14,
    label: str = "",
) -> str:
    """Render a 1-D series as an ASCII line chart."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return "(empty series)"
    # Resample to the display width.
    x = np.linspace(0, values.size - 1, width)
    resampled = np.interp(x, np.arange(values.size), values)
    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((resampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows):
        grid[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{hi:.3g} " + "-" * width)
    lines.extend("".join(row) for row in grid)
    lines.append(f"{lo:.3g} " + "-" * width)
    return "\n".join(lines)


def ascii_bars(
    labels: list[str], values: list[float], width: int = 48, unit: str = ""
) -> str:
    """Render labelled horizontal bars (for the paper's bar figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(no bars)"
    peak = max(max(values), 1e-30)
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_cdf(samples: np.ndarray, width: int = 72, height: int = 12, label: str = "") -> str:
    """Render an empirical CDF of ``samples``."""
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size == 0:
        return "(no samples)"
    grid_x = np.linspace(samples[0], samples[-1], width)
    cdf = np.searchsorted(samples, grid_x, side="right") / samples.size
    return ascii_line(cdf, width=width, height=height, label=label)
