"""Parallel decode workers wrapping :class:`repro.core.ChoirDecoder`.

The gateway's dispatch stage hands detected packet windows to a
:class:`DecodeWorkerPool`.  Three executors share one code path:

* ``"serial"`` -- decode inline in the caller (deterministic baseline,
  also what the tests lean on),
* ``"thread"`` -- a bounded queue drained by worker threads (numpy's FFTs
  release the GIL for the hot part),
* ``"process"`` -- a :class:`concurrent.futures.ProcessPoolExecutor` for
  per-core scaling when thread-level parallelism is not enough.

Backpressure is explicit: the queue is bounded and the drop policy says
what happens when decode falls behind ingest -- drop the ``"newest"``
window (default: keep latency bounded, lose the packet that arrived into
an overloaded system), drop the ``"oldest"`` (favor fresh traffic), or
``"block"`` ingest (lossless, at the price of stalling the stream).

Every decode job carries its own RNG derived from the pool seed and the
job id (:func:`repro.utils.derive_rng`), so which worker decodes which
packet -- or whether any parallelism is used at all -- never changes the
result.

Observability rides the same outcome path on every executor: per-job
instruments are recorded into a job-local registry and shipped back as a
``telemetry_delta`` the pool merges, and a job's provenance span tree
(when its :class:`repro.trace.TraceDirective` asks for one) is built
inside the worker -- thread or process -- and travels home on the
outcome, so counter totals and retained traces are identical across
executors by construction.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.cascade import DECODE_TIERS, build_pipeline
from repro.gateway.telemetry import Telemetry, clock, shard_label
from repro.phy.params import LoRaParams
from repro.profile import context as profile_context
from repro.profile.profiler import KernelProfiler
from repro.profile.resources import process_cpu
from repro.trace import context as trace_context
from repro.trace.model import PacketTrace, TraceBuilder
from repro.trace.recorder import TraceDirective, TraceRecorder
from repro.utils import RngLike, as_seed_sequence, derive_rng

#: Accepted overload behaviors for the bounded decode queue.
DROP_POLICIES: Tuple[str, ...] = ("newest", "oldest", "block")

#: Accepted executor kinds.
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class DecodeJob:
    """One detected packet window, ready to decode.

    A sharded (multi-channel / multi-SF) gateway tags each job with the
    shard that detected it: ``params`` overrides the pool's shared PHY
    configuration (so one pool can decode SF7 and SF8 windows side by
    side), ``channel`` labels telemetry, and ``rng_key`` replaces the
    job-id RNG derivation with a per-shard key so results stay
    deterministic no matter how jobs from different shards interleave.
    """

    job_id: int
    samples: np.ndarray
    n_data_symbols: int
    payload_len: int
    start_sample: int
    detection_score: float
    created_at: float  # telemetry clock() reading at submission
    params: Optional[LoRaParams] = None
    channel: int = 0
    rng_key: Optional[Tuple[int, ...]] = None

    @property
    def key(self) -> Tuple[int, ...]:
        """The job's deterministic identity (rng_key, or job id alone)."""
        return self.rng_key if self.rng_key is not None else (self.job_id,)


@dataclass(frozen=True)
class UserResult:
    """One decoded user's payload attempt within a window."""

    offset_bins: float
    payload: bytes
    crc_ok: bool


@dataclass(frozen=True)
class DecodeOutcome:
    """Result of decoding one packet window.

    ``telemetry_delta`` is the job-local registry state recorded inside
    the worker (merged into the pool registry on arrival), ``trace``
    is the retained provenance span tree, and ``profile_delta`` is the
    job-local kernel-profiler state (when the pool profiles) -- all
    travel with the outcome so the process executor loses none of them.

    ``tier`` names the pipeline tier that produced ``users`` (``"full"``
    or ``"tier0"``); ``escalation_reason`` is set when Tier 0 declined
    the window (see :mod:`repro.core.cascade`), so forensics can tell
    "the fast path lost it" from "the full path lost it" structurally.
    """

    job_id: int
    start_sample: int
    users: Tuple[UserResult, ...]
    payload: Optional[bytes]
    crc_ok: bool
    queue_wait_s: float
    decode_s: float
    detection_score: float
    sync_retries: int = 0
    error: Optional[str] = None
    channel: int = 0
    spreading_factor: Optional[int] = None
    rng_key: Optional[Tuple[int, ...]] = None
    tier: str = "full"
    escalation_reason: Optional[str] = None
    telemetry_delta: Optional[Dict[str, Dict[str, Any]]] = None
    trace: Optional[PacketTrace] = None
    profile_delta: Optional[Dict[str, Any]] = None

    @property
    def n_users(self) -> int:
        """How many users the decoder disentangled in this window."""
        return len(self.users)

    @property
    def key(self) -> Tuple[int, ...]:
        """The outcome's deterministic identity (matches the job's)."""
        return self.rng_key if self.rng_key is not None else (self.job_id,)


def decode_packet_window(
    job: DecodeJob,
    params: LoRaParams,
    base_seed: np.random.SeedSequence,
    synchronize: bool = True,
    coding_rate: int = 4,
    sync_search_symbols: int = 0,
    max_users: Optional[int] = None,
    use_engine: bool = True,
    decode_tier: str = "full",
    trace_directive: Optional[TraceDirective] = None,
    profile: bool = False,
) -> DecodeOutcome:
    """Decode one packet window with a job-keyed deterministic RNG.

    The decode itself is delegated to the tier pipeline named by
    ``decode_tier`` (:func:`repro.core.cascade.build_pipeline`): the
    default ``"full"`` pipeline snaps the window to the preamble grid
    (``sync_search_symbols`` bounds that search to the first so-many
    symbols -- the streaming gateway cuts windows with two symbols of
    lead, so the true boundary always lies within the first three) and
    retries a small ladder of alternative alignments with CRC as the
    oracle; ``"cascade"`` tries the Tier-0 fast path first and escalates
    to the full pipeline on collision evidence or CRC failure; ``"fast"``
    is Tier 0 alone.  This function owns the job plumbing around the
    pipeline: RNG derivation, the trace builder, job-local telemetry,
    and the outcome record.

    Module-level (rather than a pool method) so the process executor can
    ship it to workers; everything it touches -- including the trace
    directive in and the span tree out -- is picklable.

    A job carrying its own ``params`` (a sharded gateway's SF-tagged
    window) decodes with those instead of the pool's, and a job carrying
    an ``rng_key`` derives its decoder RNG from that key rather than the
    job id -- per-shard sequence numbers keep results independent of how
    shards interleave their submissions.

    With ``profile=True`` a job-local :class:`KernelProfiler` is
    installed for the decode (so per-kernel wall/FFT/bytes accounting
    works identically on every executor) and its state ships home as
    ``profile_delta``; the whole decode runs under a ``decode.window``
    root kernel, so summed kernel wall times cover the job end to end.
    """
    started = clock()
    if job.params is not None:
        params = job.params
    rng_key = job.key
    sharded_sf = params.spreading_factor if job.params is not None else None
    builder: Optional[TraceBuilder] = None
    if trace_directive is not None and trace_directive.build:
        builder = TraceBuilder(
            "decode.job",
            job_id=job.job_id,
            key=list(rng_key),
            channel=job.channel,
            spreading_factor=sharded_sf,
            start_sample=job.start_sample,
            detection_score=job.detection_score,
        )
    local = Telemetry()
    pipeline = build_pipeline(
        decode_tier,
        params,
        rng=derive_rng(base_seed, *rng_key),
        use_engine=use_engine,
        synchronize=synchronize,
        coding_rate=coding_rate,
        sync_search_symbols=sync_search_symbols,
        max_users=max_users,
    )
    job_profiler = KernelProfiler() if profile else None
    cpu_started = process_cpu() if profile else 0.0
    with trace_context.use_builder(builder), profile_context.use_profiler(
        job_profiler
    ):
        with profile_context.kernel(
            "decode.window", f"sf{params.spreading_factor}"
        ):
            window = pipeline.decode_window(
                job.samples, job.n_data_symbols, job.payload_len, instruments=local
            )
        results = [
            UserResult(
                offset_bins=u.offset_bins, payload=u.payload, crc_ok=u.crc_ok
            )
            for u in window.users
        ]
        verified = [r for r in results if r.crc_ok]
        retries = window.sync_retries
        local.counter("decode.users_found").inc(len(results))
        trace_context.add_event(
            "result",
            crc_ok=bool(verified),
            n_users=len(results),
            sync_retries=retries,
        )
    if job_profiler is not None:
        job_profiler.add_cpu(max(process_cpu() - cpu_started, 0.0))
    best = verified[0] if verified else (results[0] if results else None)
    crc_ok = bool(verified)
    trace: Optional[PacketTrace] = None
    if builder is not None and trace_directive is not None:
        root = builder.finish()
        if trace_directive.keep(crc_ok):
            trace = PacketTrace(
                key=rng_key,
                job_id=job.job_id,
                channel=job.channel,
                spreading_factor=sharded_sf,
                start_sample=job.start_sample,
                detection_score=job.detection_score,
                sampled=trace_directive.sampled,
                root=root,
                label=(
                    shard_label(job.channel, sharded_sf)
                    if sharded_sf is not None
                    else ""
                ),
            )
    return DecodeOutcome(
        job_id=job.job_id,
        start_sample=job.start_sample,
        users=tuple(results),
        payload=best.payload if best is not None else None,
        crc_ok=crc_ok,
        queue_wait_s=max(started - job.created_at, 0.0),
        decode_s=clock() - started,
        detection_score=job.detection_score,
        sync_retries=retries,
        channel=job.channel,
        spreading_factor=sharded_sf,
        rng_key=job.rng_key,
        tier=window.tier,
        escalation_reason=window.escalation_reason,
        telemetry_delta=local.state(),
        trace=trace,
        profile_delta=(
            job_profiler.state() if job_profiler is not None else None
        ),
    )


class DecodeWorkerPool:
    """Bounded-queue pool of Choir decode workers.

    Parameters
    ----------
    params:
        Shared PHY configuration.
    n_workers:
        Parallel decoders (ignored for ``executor="serial"``).
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    queue_capacity:
        Maximum windows awaiting decode before the drop policy applies.
    drop_policy:
        Overload behavior; see :data:`DROP_POLICIES`.
    synchronize:
        Snap each window to the preamble grid first (needed when windows
        are cut at detection granularity, as the gateway does; disable
        for pre-aligned captures).
    sync_search_symbols:
        Bound the grid search to the first so-many symbols of each
        window (0 = unbounded); set by callers that control the cut.
    max_users:
        Cap on SIC user estimates per window (None = uncapped); bounds
        the worst-case decode time on windows full of interference.
    use_engine:
        Route each decoder's residual searches through the batched
        :class:`repro.core.engine.ResidualEngine` paths (default); the
        scalar reference loops are selected with ``False``.
    decode_tier:
        Which pipeline decodes each window -- ``"full"`` (default, the
        classic path), ``"cascade"`` (Tier-0 fast path, full Choir on
        escalation) or ``"fast"`` (Tier 0 only); see
        :mod:`repro.core.cascade`.
    rng:
        Pool seed; each job's decoder RNG is derived from it by job id.
    telemetry:
        Optional registry receiving dispatch/decode instruments.
    trace_recorder:
        Optional :class:`repro.trace.TraceRecorder`; when set, each
        job's trace directive is computed from its key before dispatch
        and every outcome (with its retained span tree) is recorded.
    profiler:
        Optional :class:`repro.profile.KernelProfiler`; when set, every
        job decodes under a job-local profiler whose state ships back on
        the outcome and is merged here -- per-kernel totals are
        identical across executors by construction, exactly like
        telemetry deltas.
    on_outcome:
        Optional live outcome hook, called once per recorded outcome
        (after aggregation, outside the pool lock) -- the gateway's
        report-streaming tap, e.g. forwarding decoded frames to a
        network server while the stream is still running.  Thread and
        process executors call it from worker/callback threads, so the
        callable must be thread-safe; outcomes may arrive out of stream
        order.
    """

    def __init__(
        self,
        params: LoRaParams,
        n_workers: int = 1,
        executor: str = "thread",
        queue_capacity: int = 8,
        drop_policy: str = "newest",
        synchronize: bool = True,
        coding_rate: int = 4,
        sync_search_symbols: int = 0,
        max_users: Optional[int] = None,
        use_engine: bool = True,
        decode_tier: str = "full",
        rng: RngLike = None,
        telemetry: Optional[Telemetry] = None,
        trace_recorder: Optional[TraceRecorder] = None,
        profiler: Optional[KernelProfiler] = None,
        on_outcome: Optional[Callable[[DecodeOutcome], None]] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if decode_tier not in DECODE_TIERS:
            raise ValueError(
                f"decode_tier must be one of {DECODE_TIERS}, got {decode_tier!r}"
            )
        if drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, got {drop_policy!r}"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.params = params
        self.n_workers = n_workers
        self.executor = executor
        self.queue_capacity = queue_capacity
        self.drop_policy = drop_policy
        self.synchronize = synchronize
        self.coding_rate = coding_rate
        self.sync_search_symbols = sync_search_symbols
        self.max_users = max_users
        self.use_engine = use_engine
        self.decode_tier = decode_tier
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.trace_recorder = trace_recorder
        self.profiler = profiler
        self.on_outcome = on_outcome
        self._base_seed = as_seed_sequence(rng)
        self._outcomes: List[DecodeOutcome] = []
        self._lock = threading.Lock()
        self._closed = False
        self._queue: "queue.Queue[Optional[DecodeJob]]" = queue.Queue(
            maxsize=queue_capacity
        )
        self._threads: List[threading.Thread] = []
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[int, "Future[DecodeOutcome]"] = {}
        # Scalar facts about in-flight process jobs, kept parent-side so
        # a worker crash can still be recorded as an error outcome.
        self._job_meta: Dict[int, Tuple[int, float, int, Optional[int], Optional[Tuple[int, ...]]]] = {}
        if executor == "thread":
            self._threads = [
                threading.Thread(
                    target=self._thread_worker, name=f"decode-{i}", daemon=True
                )
                for i in range(n_workers)
            ]
            for thread in self._threads:
                thread.start()
        elif executor == "process":
            self._pool = ProcessPoolExecutor(max_workers=n_workers)

    # ------------------------------------------------------------------
    # Shared decode + accounting
    # ------------------------------------------------------------------
    def _directive(self, job: DecodeJob) -> Optional[TraceDirective]:
        """The job's tracing instruction, or None when tracing is off."""
        if self.trace_recorder is None:
            return None
        return self.trace_recorder.directive(job.key)

    def _error_outcome(
        self,
        job_id: int,
        start_sample: int,
        detection_score: float,
        channel: int,
        spreading_factor: Optional[int],
        rng_key: Optional[Tuple[int, ...]],
        exc: BaseException,
    ) -> DecodeOutcome:
        return DecodeOutcome(
            job_id=job_id,
            start_sample=start_sample,
            users=(),
            payload=None,
            crc_ok=False,
            queue_wait_s=0.0,
            decode_s=0.0,
            detection_score=detection_score,
            error=f"{type(exc).__name__}: {exc}",
            channel=channel,
            spreading_factor=spreading_factor,
            rng_key=rng_key,
        )

    def _decode(self, job: DecodeJob) -> DecodeOutcome:
        try:
            return decode_packet_window(
                job,
                self.params,
                self._base_seed,
                synchronize=self.synchronize,
                coding_rate=self.coding_rate,
                sync_search_symbols=self.sync_search_symbols,
                max_users=self.max_users,
                use_engine=self.use_engine,
                decode_tier=self.decode_tier,
                trace_directive=self._directive(job),
                profile=self.profiler is not None,
            )
        except Exception as exc:  # defensive: a worker must never die
            self.telemetry.counter("decode.errors").inc()
            return self._error_outcome(
                job.job_id,
                job.start_sample,
                job.detection_score,
                job.channel,
                job.params.spreading_factor if job.params is not None else None,
                job.rng_key,
                exc,
            )

    def _record(self, outcome: DecodeOutcome) -> None:
        with self._lock:
            self._outcomes.append(outcome)
        if outcome.telemetry_delta:
            self.telemetry.merge(outcome.telemetry_delta)
        if outcome.profile_delta and self.profiler is not None:
            self.profiler.merge_state(outcome.profile_delta)
        self.telemetry.histogram("decode.queue_wait_s").record(outcome.queue_wait_s)
        self.telemetry.histogram("decode.decode_s").record(outcome.decode_s)
        if outcome.error is None:
            # Per-tier latency: "full" here covers both the classic path
            # and cascade escalations (the whole job paid the full cost).
            self.telemetry.histogram(f"decode.{outcome.tier}.decode_s").record(
                outcome.decode_s
            )
        if outcome.sync_retries:
            self.telemetry.counter("decode.sync_retries").inc(outcome.sync_retries)
        if outcome.crc_ok:
            self.telemetry.counter("decode.crc_ok").inc()
        elif outcome.error is None:
            self.telemetry.counter("decode.crc_failed").inc()
        if outcome.spreading_factor is not None:
            # Sharded jobs additionally bump per-(channel, SF) counters so
            # the report can break recovery out by shard.
            label = shard_label(outcome.channel, outcome.spreading_factor)
            if outcome.crc_ok:
                self.telemetry.counter(f"{label}.decode.crc_ok").inc()
            elif outcome.error is None:
                self.telemetry.counter(f"{label}.decode.crc_failed").inc()
            else:
                self.telemetry.counter(f"{label}.decode.errors").inc()
            if outcome.error is None and outcome.tier == "tier0" and outcome.crc_ok:
                self.telemetry.counter(f"{label}.decode.tier0.ok").inc()
            if outcome.escalation_reason is not None and outcome.tier == "full":
                self.telemetry.counter(f"{label}.decode.escalated").inc()
        if self.trace_recorder is not None:
            self.trace_recorder.record_outcome(
                job_id=outcome.job_id,
                key=outcome.key,
                channel=outcome.channel,
                spreading_factor=outcome.spreading_factor,
                start_sample=outcome.start_sample,
                detection_score=outcome.detection_score,
                crc_ok=outcome.crc_ok,
                n_users=outcome.n_users,
                sync_retries=outcome.sync_retries,
                error=outcome.error,
                tier=outcome.tier,
                escalation_reason=outcome.escalation_reason,
                payload=outcome.payload,
                users=[
                    (u.offset_bins, u.payload.hex(), u.crc_ok)
                    for u in outcome.users
                ],
                trace=outcome.trace,
            )
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _count_drop(self, job: Optional[DecodeJob] = None) -> None:
        """Count one dropped job, with its shard label when known."""
        self.telemetry.counter("dispatch.dropped").inc()
        if job is not None and job.params is not None:
            label = shard_label(job.channel, job.params.spreading_factor)
            self.telemetry.counter(f"{label}.dispatch.dropped").inc()

    # ------------------------------------------------------------------
    # Thread executor
    # ------------------------------------------------------------------
    def _thread_worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            self.telemetry.gauge("dispatch.queue_depth").set(self._queue.qsize())
            self._record(self._decode(job))
            self._queue.task_done()

    def _submit_thread(self, job: DecodeJob) -> bool:
        while True:
            try:
                self._queue.put_nowait(job)
                return True
            except queue.Full:
                if self.drop_policy == "newest":
                    self._count_drop(job)
                    return False
                if self.drop_policy == "block":
                    self._queue.put(job)
                    return True
                # oldest: evict one queued job, then retry the put.
                try:
                    evicted = self._queue.get_nowait()
                    self._queue.task_done()
                    self._count_drop(evicted)
                except queue.Empty:
                    pass  # a worker drained it first; just retry

    # ------------------------------------------------------------------
    # Process executor
    # ------------------------------------------------------------------
    def _in_flight(self) -> int:
        with self._lock:
            return sum(1 for f in self._futures.values() if not f.done())

    def _submit_process(self, job: DecodeJob) -> bool:
        assert self._pool is not None
        while self._in_flight() >= self.queue_capacity:
            if self.drop_policy == "newest":
                self._count_drop(job)
                return False
            if self.drop_policy == "oldest":
                with self._lock:
                    pending = sorted(
                        (jid for jid, f in self._futures.items() if not f.done())
                    )
                cancelled = False
                for jid in pending:
                    with self._lock:
                        future = self._futures.get(jid)
                    if future is not None and future.cancel():
                        with self._lock:
                            self._futures.pop(jid, None)
                            self._job_meta.pop(jid, None)
                        self._count_drop()
                        cancelled = True
                        break
                if not cancelled:
                    # Everything already running; drop the incoming job.
                    self._count_drop(job)
                    return False
                continue
            time.sleep(0.001)  # block: poll until a slot frees
        future = self._pool.submit(
            decode_packet_window,
            job,
            self.params,
            self._base_seed,
            synchronize=self.synchronize,
            coding_rate=self.coding_rate,
            sync_search_symbols=self.sync_search_symbols,
            max_users=self.max_users,
            use_engine=self.use_engine,
            decode_tier=self.decode_tier,
            trace_directive=self._directive(job),
            profile=self.profiler is not None,
        )
        with self._lock:
            self._futures[job.job_id] = future
            self._job_meta[job.job_id] = (
                job.start_sample,
                job.detection_score,
                job.channel,
                job.params.spreading_factor if job.params is not None else None,
                job.rng_key,
            )
        future.add_done_callback(lambda f, jid=job.job_id: self._process_done(jid, f))
        return True

    def _process_done(self, job_id: int, future: "Future[DecodeOutcome]") -> None:
        with self._lock:
            meta = self._job_meta.pop(job_id, None)
            # Drop the completed future so the table tracks only live
            # work; otherwise it grows for the pool's lifetime and every
            # _in_flight() scan pays for all jobs ever submitted.
            self._futures.pop(job_id, None)
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            # A worker died outright (the in-worker try/except never got
            # to run); synthesize the error outcome parent-side so no
            # job goes unaccounted and telemetry matches serial runs.
            self.telemetry.counter("decode.errors").inc()
            if meta is not None:
                start_sample, score, channel, sf, rng_key = meta
                self._record(
                    self._error_outcome(
                        job_id, start_sample, score, channel, sf, rng_key, exc
                    )
                )
            return
        self._record(future.result())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, job: DecodeJob) -> bool:
        """Enqueue ``job``; returns False when the drop policy rejected it.

        Dropped jobs (either the incoming one or an evicted older one,
        per policy) are counted under ``dispatch.dropped``.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self.telemetry.counter("dispatch.submitted").inc()
        if self.executor == "serial":
            self._record(self._decode(job))
            return True
        if self.executor == "thread":
            accepted = self._submit_thread(job)
            self.telemetry.gauge("dispatch.queue_depth").set(self._queue.qsize())
            return accepted
        return self._submit_process(job)

    @property
    def dropped(self) -> int:
        """Jobs lost to the drop policy so far."""
        return self.telemetry.counter("dispatch.dropped").value

    def close(self) -> List[DecodeOutcome]:
        """Drain all pending work, stop the workers, return every outcome.

        Outcomes are sorted by job id, so callers see stream order
        regardless of decode interleaving.
        """
        if not self._closed:
            self._closed = True
            if self.executor == "thread":
                for _ in self._threads:
                    self._queue.put(None)
                for thread in self._threads:
                    thread.join()
            elif self.executor == "process":
                assert self._pool is not None
                with self._lock:
                    futures = list(self._futures.values())
                for future in futures:
                    if not future.cancelled():
                        try:
                            future.result()
                        except Exception:
                            pass  # already counted in _process_done
                self._pool.shutdown()
        with self._lock:
            return sorted(self._outcomes, key=lambda o: o.job_id)
