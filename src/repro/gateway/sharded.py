"""Multi-channel, multi-SF sharded gateway: one wideband stream, many shards.

Real LoRaWAN base stations do not listen to a single 125 kHz channel: the
regional plans (EU868, US915) define eight-channel uplink grids, and every
channel can carry several spreading factors at once.  This module scales
the streaming runtime of :mod:`repro.gateway.runtime` out to that shape:

1. **channelize** -- a :class:`repro.gateway.channelizer.PolyphaseChannelizer`
   splits each wideband chunk into the per-channel basebands of a
   :class:`repro.phy.params.ChannelPlan`.
2. **per-channel rings** -- every channel buffers its stream in its own
   :class:`repro.gateway.ring.SampleRing`.
3. **per-(channel, SF) scanners** -- each channel is scanned once per
   spreading factor in the configured ``sf_set`` by a
   :class:`repro.gateway.runtime.StreamScanner`; scanners sharing a ring
   publish release positions and the ring consumes their minimum, so an
   SF7 and an SF8 scanner can multiplex one channel without stealing each
   other's samples.
4. **one shared pool** -- every shard submits to a single
   :class:`repro.gateway.workers.DecodeWorkerPool`.  Jobs are tagged with
   their shard's params/channel and carry a per-shard RNG key
   ``(channel, sf, shard_seq)``, so decode results are deterministic no
   matter how shards interleave or which executor runs the pool.

Telemetry uses the shared dotted names plus per-shard
``ch{c}.sf{s}.{metric}`` labels (:func:`repro.gateway.telemetry.shard_label`);
the returned :class:`repro.gateway.runtime.GatewayReport` carries a
``shards`` table and prints it in :meth:`GatewayReport.summary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cascade import DECODE_TIERS
from repro.gateway.channelizer import DEFAULT_TAPS_PER_BRANCH, PolyphaseChannelizer
from repro.gateway.ring import SampleRing
from repro.gateway.runtime import GatewayReport, StreamScanner
from repro.gateway.sources import SampleSource
from repro.gateway.telemetry import Telemetry, clock, shard_label
from repro.gateway.workers import DecodeOutcome, DecodeWorkerPool
from repro.phy.params import ChannelPlan, LoRaParams
from repro.profile import context as profile_context
from repro.profile.profiler import KernelProfiler
from repro.profile.resources import ResourceAccountant, ResourceSummary
from repro.trace.recorder import TraceConfig, TraceRecorder


@dataclass(frozen=True)
class ShardedGatewayConfig:
    """Everything configurable about one multi-channel gateway run.

    Parameters
    ----------
    plan:
        The channel grid to demultiplex; must be critically stacked (the
        channelizer's requirement).
    sf_set:
        Spreading factors scanned on *every* channel; duplicates are
        dropped and the set is kept sorted.
    payload_len, preamble_len, coding_rate:
        Frame geometry shared by all shards.
    n_workers, executor, queue_capacity, drop_policy:
        Shape of the single decode pool all shards share; see
        :class:`repro.gateway.workers.DecodeWorkerPool`.
    ring_symbols:
        Per-channel ring capacity in symbols of the *largest* configured
        SF (0 sizes automatically to four of its frames).
    detection_pfa, synchronize, max_users, use_engine, decode_tier, seed:
        As in :class:`repro.gateway.runtime.GatewayConfig`; ``seed`` is
        the master seed all per-shard decode RNG keys derive from, and
        ``decode_tier`` selects the decode pipeline every shard's jobs
        run through (see :mod:`repro.core.cascade`).
    taps_per_branch:
        Prototype filter length per channelizer branch.
    trace, trace_sample_rate, trace_always_sample_failures:
        Provenance tracing, as in
        :class:`repro.gateway.runtime.GatewayConfig`; sampling stays
        deterministic per shard because directives key on
        ``(channel, sf, shard_seq)``.
    profile, profile_alloc:
        Kernel/resource profiling, as in
        :class:`repro.gateway.runtime.GatewayConfig`; the channelizer's
        pushes are accounted under the run-level ambient profiler, the
        per-job decode kernels under job-local profilers merged by the
        pool.
    """

    plan: ChannelPlan = field(default_factory=ChannelPlan)
    sf_set: Tuple[int, ...] = (7, 8)
    payload_len: int = 8
    preamble_len: int = 8
    n_workers: int = 1
    executor: str = "thread"
    queue_capacity: int = 8
    drop_policy: str = "newest"
    ring_symbols: int = 0
    detection_pfa: float = 1e-3
    coding_rate: int = 4
    synchronize: bool = True
    max_users: Optional[int] = 4
    use_engine: bool = True
    decode_tier: str = "full"
    seed: Optional[int] = None
    taps_per_branch: int = DEFAULT_TAPS_PER_BRANCH
    trace: bool = False
    trace_sample_rate: float = 1.0
    trace_always_sample_failures: bool = True
    profile: bool = False
    profile_alloc: int = 0

    def trace_config(self) -> TraceConfig:
        """The sampling policy implied by the trace fields."""
        return TraceConfig(
            sample_rate=self.trace_sample_rate,
            always_sample_failures=self.trace_always_sample_failures,
        )

    def __post_init__(self) -> None:
        if not self.sf_set:
            raise ValueError("sf_set must name at least one spreading factor")
        if self.decode_tier not in DECODE_TIERS:
            raise ValueError(
                f"decode_tier must be one of {DECODE_TIERS}, got {self.decode_tier!r}"
            )
        object.__setattr__(self, "sf_set", tuple(sorted(set(self.sf_set))))

    def shard_params(self, spreading_factor: int) -> LoRaParams:
        """Narrowband PHY params of every (channel, ``spreading_factor``) shard."""
        return self.plan.channel_params(
            spreading_factor, preamble_len=self.preamble_len
        )


class ShardedGateway:
    """Wideband base-station runtime: channelizer fan-out, shared decode pool.

    Construct with a :class:`ShardedGatewayConfig`, then :meth:`run` it
    over a wideband :class:`repro.gateway.sources.SampleSource` (for
    synthetic traffic, a :class:`repro.gateway.sources.SyntheticTrafficSource`
    built with the same ``plan``).
    """

    def __init__(
        self,
        config: ShardedGatewayConfig,
        telemetry: Optional[Telemetry] = None,
        trace_recorder: Optional[TraceRecorder] = None,
        profiler: Optional[KernelProfiler] = None,
        on_outcome: Optional[Callable[[DecodeOutcome], None]] = None,
    ) -> None:
        self.config = config
        self.on_outcome = on_outcome
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if trace_recorder is None and config.trace:
            trace_recorder = TraceRecorder(config.trace_config())
        self.trace_recorder = trace_recorder
        if profiler is None and config.profile:
            profiler = KernelProfiler()
        self.profiler = profiler
        # Probe scanners once for frame geometry so the ring capacity can
        # be validated up front (run() builds its own fresh scanners).
        probe = [
            StreamScanner(
                config.shard_params(sf),
                config.payload_len,
                Telemetry(),
                coding_rate=config.coding_rate,
            )
            for sf in config.sf_set
        ]
        max_frame = max(scanner.frame_samples for scanner in probe)
        if config.ring_symbols:
            n = max(
                config.shard_params(sf).samples_per_symbol for sf in config.sf_set
            )
            capacity = config.ring_symbols * n
            if capacity < 2 * max_frame:
                raise ValueError(
                    f"ring_symbols={config.ring_symbols} holds less than two "
                    f"frames of the largest SF ({2 * max_frame // n} symbols needed)"
                )
        else:
            capacity = 4 * max_frame
        self._ring_capacity = capacity

    # ------------------------------------------------------------------
    def _build_scanners(self) -> Dict[int, List[StreamScanner]]:
        config = self.config
        scanners: Dict[int, List[StreamScanner]] = {}
        for channel in range(config.plan.n_channels):
            scanners[channel] = [
                StreamScanner(
                    config.shard_params(sf),
                    config.payload_len,
                    self.telemetry,
                    detection_pfa=config.detection_pfa,
                    coding_rate=config.coding_rate,
                    channel=channel,
                    job_params=config.shard_params(sf),
                    rng_prefix=(channel, sf),
                    label=shard_label(channel, sf),
                    trace_recorder=self.trace_recorder,
                )
                for sf in config.sf_set
            ]
        return scanners

    def run(self, source: SampleSource) -> GatewayReport:
        """Consume the wideband ``source`` to exhaustion and report."""
        config = self.config
        telemetry = self.telemetry
        recorder = self.trace_recorder
        if recorder is not None:
            recorder.set_header(
                run_kind="sharded-gateway",
                executor=config.executor,
                n_workers=config.n_workers,
                seed=config.seed,
                n_channels=config.plan.n_channels,
                sf_set=list(config.sf_set),
                payload_len=config.payload_len,
                decode_tier=config.decode_tier,
                sample_rate=recorder.config.sample_rate,
                always_sample_failures=recorder.config.always_sample_failures,
            )
            ground_truth = getattr(source, "ground_truth", None)
            if callable(ground_truth):
                recorder.set_ground_truth(ground_truth())
        channelizer = PolyphaseChannelizer(
            config.plan, taps_per_branch=config.taps_per_branch
        )
        pool = DecodeWorkerPool(
            config.shard_params(config.sf_set[0]),
            n_workers=config.n_workers,
            executor=config.executor,
            queue_capacity=config.queue_capacity,
            drop_policy=config.drop_policy,
            synchronize=config.synchronize,
            coding_rate=config.coding_rate,
            # Same cut geometry as the single-channel gateway: two symbols
            # of lead, so the true boundary is inside the first three.
            sync_search_symbols=3,
            max_users=config.max_users,
            use_engine=config.use_engine,
            decode_tier=config.decode_tier,
            rng=config.seed,
            telemetry=telemetry,
            trace_recorder=recorder,
            profiler=self.profiler,
            on_outcome=self.on_outcome,
        )
        rings = [
            SampleRing(self._ring_capacity) for _ in range(config.plan.n_channels)
        ]
        scanners = self._build_scanners()
        samples_in = 0
        chunks_in = 0
        evicted = 0
        next_job_id = 0
        accountant: Optional[ResourceAccountant] = None
        if self.profiler is not None:
            accountant = ResourceAccountant(
                alloc_top_n=config.profile_alloc
            )
            accountant.start()
        started = clock()

        def fan_out(bands) -> None:
            nonlocal evicted, next_job_id
            for channel, ring in enumerate(rings):
                narrow = bands[channel]
                if narrow.size:
                    evicted += ring.append(narrow)
                    telemetry.counter(f"ch{channel}.ingest.samples").inc(narrow.size)
                if self.profiler is not None:
                    telemetry.gauge("ring.occupancy").set(
                        len(ring) / self._ring_capacity
                    )
                for scanner in scanners[channel]:
                    next_job_id = scanner.scan(ring, pool, next_job_id)
                ring.consume(
                    min(scanner.release_pos for scanner in scanners[channel])
                )

        # Run-level ambient profiler: covers channelizer pushes and
        # detection scans done in this (ingest) thread; decode kernels
        # ride job-local profilers the pool merges.
        with profile_context.use_profiler(self.profiler):
            for chunk in source.chunks():
                with telemetry.timer("ingest.chunk_s"):
                    samples_in += len(chunk)
                    chunks_in += 1
                    telemetry.counter("ingest.samples").inc(len(chunk))
                with telemetry.timer("channelize.push_s"):
                    bands = channelizer.push(chunk)
                fan_out(bands)
            # End of stream: drain the filter tail, then final-scan each shard
            # so truncated trailing windows still get a decode attempt.
            with telemetry.timer("channelize.push_s"):
                tail = channelizer.flush()
            fan_out(tail)
            for channel, ring in enumerate(rings):
                for scanner in scanners[channel]:
                    next_job_id = scanner.scan(ring, pool, next_job_id, final=True)
            outcomes = pool.close()
        wall = clock() - started
        resources: Optional[ResourceSummary] = None
        if accountant is not None:
            resources = accountant.stop()
        if self.profiler is not None:
            self.profiler.fold_into(telemetry)
        crc_ok = sum(1 for o in outcomes if o.crc_ok)
        errors = sum(1 for o in outcomes if o.error is not None)
        shards: Dict[str, Dict[str, int]] = {}
        for channel in range(config.plan.n_channels):
            for scanner in scanners[channel]:
                label = scanner.label
                shards[label] = {
                    "detected": scanner.detected,
                    "decoded": 0,
                    "crc_failed": 0,
                    "dropped": telemetry.counter(f"{label}.dispatch.dropped").value,
                }
        for outcome in outcomes:
            if outcome.spreading_factor is None:
                continue
            row = shards.get(shard_label(outcome.channel, outcome.spreading_factor))
            if row is None:
                continue
            if outcome.crc_ok:
                row["decoded"] += 1
            elif outcome.error is None:
                row["crc_failed"] += 1
        detected = sum(
            scanner.detected
            for channel_scanners in scanners.values()
            for scanner in channel_scanners
        )
        return GatewayReport(
            samples_in=samples_in,
            chunks_in=chunks_in,
            samples_evicted=evicted,
            packets_detected=detected,
            packets_dropped=pool.dropped,
            packets_decoded=crc_ok,
            crc_failures=sum(1 for o in outcomes if not o.crc_ok and o.error is None),
            decode_errors=errors,
            wall_s=wall,
            stream_s=samples_in / config.plan.wideband_rate,
            outcomes=outcomes,
            telemetry=telemetry.snapshot(),
            shards=shards,
            trace=recorder,
            profile=self.profiler,
            resources=resources,
        )
