"""The streaming gateway runtime: ingest -> detect -> dispatch -> decode.

This is the base-station-side loop the paper assumes but the rest of the
repo never had: instead of decoding one pre-cut capture, the gateway
consumes a continuous IQ stream in chunks, finds packets on the fly, and
keeps decoding while the stream keeps arriving.

Stages (each instrumented through :mod:`repro.gateway.telemetry`):

1. **ingest** -- append the next source chunk to a bounded
   :class:`repro.gateway.ring.SampleRing` (overflow evicts the oldest
   samples, counted as loss).
2. **detect** -- slide :func:`repro.core.detection.sliding_packet_search`
   (``earliest=True``) over the unscanned span of the ring.  A detection
   whose frame tail has not arrived yet stays pending until the next
   chunk, which is how packets straddling chunk boundaries survive.
3. **dispatch** -- cut the packet window (one guard symbol of lead for
   :func:`repro.core.detection.align_to_window_grid` to find the exact
   boundary) and submit it to the
   :class:`repro.gateway.workers.DecodeWorkerPool`; the bounded queue's
   drop policy is the backpressure valve.
4. **decode** -- workers run the full :class:`repro.core.ChoirDecoder`
   pipeline plus the LoRa FEC/CRC chain and report per-user payloads.

``Gateway.run(source)`` returns a :class:`GatewayReport` with counts,
throughput, per-stage latency percentiles and every decode outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.detection import sliding_packet_search
from repro.gateway.ring import SampleRing
from repro.gateway.sources import SampleSource
from repro.gateway.telemetry import Telemetry
from repro.gateway.workers import DecodeJob, DecodeOutcome, DecodeWorkerPool
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams


@dataclass(frozen=True)
class GatewayConfig:
    """Everything configurable about one gateway run.

    Parameters
    ----------
    params:
        Shared PHY configuration (must match the traffic).
    payload_len:
        Application payload bytes per packet; fixes the frame geometry
        the detector paces by and the decoder decodes.
    n_workers, executor, queue_capacity, drop_policy:
        Decode pool shape; see
        :class:`repro.gateway.workers.DecodeWorkerPool`.
    ring_symbols:
        Ring-buffer capacity in symbols (must hold at least two frames;
        sized automatically when 0).
    detection_pfa:
        Search-level false-alarm probability per detection scan.
    max_users:
        Cap on SIC user estimates per decoded window; bounds the
        worst-case decode time on windows full of interference
        (None = uncapped).
    use_engine:
        Route decode residual searches through the batched
        :class:`repro.core.engine.ResidualEngine` paths (default); the
        scalar reference loops are selected with ``False``.
    seed:
        Master seed; per-job decode RNGs derive from it.
    """

    params: LoRaParams = field(default_factory=LoRaParams)
    payload_len: int = 8
    n_workers: int = 1
    executor: str = "thread"
    queue_capacity: int = 8
    drop_policy: str = "newest"
    ring_symbols: int = 0
    detection_pfa: float = 1e-3
    coding_rate: int = 4
    synchronize: bool = True
    max_users: Optional[int] = 4
    use_engine: bool = True
    seed: Optional[int] = None

    def n_data_symbols(self) -> int:
        """Data symbols per frame for this payload length."""
        framer = LoRaFramer(self.params, coding_rate=self.coding_rate)
        return framer.n_symbols_for_payload(self.payload_len)

    def frame_samples(self) -> int:
        """Samples per frame: preamble plus data symbols."""
        return (
            self.params.preamble_len + self.n_data_symbols()
        ) * self.params.samples_per_symbol


@dataclass
class GatewayReport:
    """Outcome of one gateway run: counts, rates, latencies, payloads."""

    samples_in: int
    chunks_in: int
    samples_evicted: int
    packets_detected: int
    packets_dropped: int
    packets_decoded: int
    crc_failures: int
    decode_errors: int
    wall_s: float
    stream_s: float
    outcomes: List[DecodeOutcome]
    telemetry: Dict[str, Dict[str, Any]]

    # ------------------------------------------------------------------
    @property
    def decoded_payloads(self) -> List[bytes]:
        """CRC-verified payloads in stream order."""
        return [o.payload for o in self.outcomes if o.crc_ok and o.payload is not None]

    @property
    def packets_per_s(self) -> float:
        """CRC-verified packets per wall-clock second."""
        return self.packets_decoded / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def samples_per_s(self) -> float:
        """Ingested samples processed per wall-clock second."""
        return self.samples_in / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def realtime_factor(self) -> float:
        """Stream seconds processed per wall second (>1 keeps up live)."""
        return self.stream_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def decode_success_rate(self) -> float:
        """CRC-verified fraction of detected-and-decoded windows."""
        attempted = self.packets_detected - self.packets_dropped
        return self.packets_decoded / attempted if attempted > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of detected packets lost to backpressure."""
        return (
            self.packets_dropped / self.packets_detected
            if self.packets_detected > 0
            else 0.0
        )

    # ------------------------------------------------------------------
    def _stage_line(self, label: str, metric: str) -> str:
        state = self.telemetry.get(metric)
        if state is None or state.get("count", 0) == 0:
            return f"  {label:<12} (no events)"
        return (
            f"  {label:<12} n={state['count']:<5d}"
            f" p50={1e3 * state['p50_s']:7.2f}ms"
            f" p95={1e3 * state['p95_s']:7.2f}ms"
            f" max={1e3 * state['max_s']:7.2f}ms"
        )

    def summary(self) -> str:
        """Human-readable run summary (what ``repro gateway`` prints)."""
        lines = [
            "gateway run summary",
            f"  stream       {self.stream_s:.2f}s ({self.samples_in} samples,"
            f" {self.chunks_in} chunks)",
            f"  wall         {self.wall_s:.2f}s"
            f" ({self.realtime_factor:.2f}x realtime,"
            f" {self.samples_per_s / 1e6:.2f} Msamples/s)",
            f"  detected     {self.packets_detected} packets",
            f"  decoded      {self.packets_decoded} crc-ok"
            f" ({100.0 * self.decode_success_rate:.0f}% of attempted,"
            f" {self.packets_per_s:.2f} packets/s)",
            f"  crc-failed   {self.crc_failures}",
            f"  dropped      {self.packets_dropped}"
            f" ({100.0 * self.drop_rate:.0f}% of detected)"
            + (f", {self.samples_evicted} samples evicted" if self.samples_evicted else ""),
        ]
        if self.decode_errors:
            lines.append(f"  errors       {self.decode_errors}")
        lines.append("per-stage latency")
        lines.append(self._stage_line("ingest", "ingest.chunk_s"))
        lines.append(self._stage_line("detect", "detect.scan_s"))
        lines.append(self._stage_line("queue-wait", "decode.queue_wait_s"))
        lines.append(self._stage_line("decode", "decode.decode_s"))
        return "\n".join(lines)


class Gateway:
    """Streaming base-station runtime around a decode worker pool.

    Construct with a :class:`GatewayConfig`, then :meth:`run` it over any
    :class:`repro.gateway.sources.SampleSource`.  A fresh
    :class:`Telemetry` registry is created per run unless one is
    injected (e.g. to aggregate several runs).
    """

    def __init__(self, config: GatewayConfig, telemetry: Optional[Telemetry] = None) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        n = config.params.samples_per_symbol
        frame = config.frame_samples()
        if config.ring_symbols:
            capacity = config.ring_symbols * n
            if capacity < 2 * frame:
                raise ValueError(
                    f"ring_symbols={config.ring_symbols} holds less than two "
                    f"frames ({2 * frame // n} symbols needed)"
                )
        else:
            # Default: four frames -- room for one packet mid-decode-cut,
            # one arriving, and scan overlap, without unbounded growth.
            capacity = 4 * frame
        self._ring_capacity = capacity

    # ------------------------------------------------------------------
    def run(self, source: SampleSource) -> GatewayReport:
        """Consume ``source`` to exhaustion and report what was decoded."""
        config = self.config
        params = config.params
        telemetry = self.telemetry
        n = params.samples_per_symbol
        n_data_symbols = config.n_data_symbols()
        frame = config.frame_samples()
        # Lead/tail slack around the detected window-granular start: two
        # symbols of lead so align_to_window_grid can find the true
        # boundary even when a back-to-back predecessor's frame skip ate
        # into this packet's preamble, two symbols of tail for
        # timing-offset spill.
        lead = 2 * n
        tail = 2 * n
        ring = SampleRing(self._ring_capacity)
        pool = DecodeWorkerPool(
            params,
            n_workers=config.n_workers,
            executor=config.executor,
            queue_capacity=config.queue_capacity,
            drop_policy=config.drop_policy,
            synchronize=config.synchronize,
            coding_rate=config.coding_rate,
            # The cut gives two symbols of lead before the (window-granular)
            # detected start, so the true boundary is inside the first three.
            sync_search_symbols=3,
            max_users=config.max_users,
            use_engine=config.use_engine,
            rng=config.seed,
            telemetry=telemetry,
        )
        samples_in = 0
        chunks_in = 0
        evicted = 0
        detected = 0
        next_job_id = 0
        scan_pos = 0  # absolute sample index of the next unscanned sample
        started = time.perf_counter()
        for chunk in source.chunks():
            with telemetry.timer("ingest.chunk_s"):
                evicted += ring.append(chunk)
                samples_in += len(chunk)
                chunks_in += 1
                telemetry.counter("ingest.samples").inc(len(chunk))
            scan_pos, detected, next_job_id = self._scan(
                ring, pool, scan_pos, detected, next_job_id, n_data_symbols, frame, lead, tail
            )
        # Final drain: scan whatever remains after the last chunk.
        scan_pos, detected, next_job_id = self._scan(
            ring, pool, scan_pos, detected, next_job_id,
            n_data_symbols, frame, lead, tail, final=True,
        )
        outcomes = pool.close()
        wall = time.perf_counter() - started
        snapshot = telemetry.snapshot()
        crc_ok = sum(1 for o in outcomes if o.crc_ok)
        errors = sum(1 for o in outcomes if o.error is not None)
        return GatewayReport(
            samples_in=samples_in,
            chunks_in=chunks_in,
            samples_evicted=evicted,
            packets_detected=detected,
            packets_dropped=pool.dropped,
            packets_decoded=crc_ok,
            crc_failures=sum(1 for o in outcomes if not o.crc_ok and o.error is None),
            decode_errors=errors,
            wall_s=wall,
            stream_s=samples_in / params.sample_rate,
            outcomes=outcomes,
            telemetry=snapshot,
        )

    # ------------------------------------------------------------------
    def _scan(
        self,
        ring: SampleRing,
        pool: DecodeWorkerPool,
        scan_pos: int,
        detected: int,
        next_job_id: int,
        n_data_symbols: int,
        frame: int,
        lead: int,
        tail: int,
        final: bool = False,
    ) -> tuple[int, int, int]:
        """Detect and dispatch every complete packet in the unscanned span.

        Returns the updated ``(scan_pos, detected, next_job_id)``.  A
        detection whose frame has not fully arrived is left unconsumed
        (``scan_pos`` stays put) so the next chunk completes it -- unless
        ``final``, in which case the truncated window is dispatched anyway
        (the decoder may still salvage it if only slack is missing).
        """
        params = self.config.params
        n = params.samples_per_symbol
        min_span = (params.preamble_len + 1) * n
        telemetry = self.telemetry
        while True:
            scan_pos = max(scan_pos, ring.start)
            available = ring.end - scan_pos
            if available < min_span:
                break
            segment = ring.view(scan_pos, available)
            with telemetry.timer("detect.scan_s"):
                result = sliding_packet_search(
                    params,
                    segment,
                    pfa=self.config.detection_pfa,
                    earliest=True,
                )
            telemetry.counter("detect.scans").inc()
            if not result.detected:
                # Keep a preamble's worth of overlap so a packet whose
                # head just arrived is still detectable next scan.
                scan_pos = max(scan_pos, ring.end - min_span)
                ring.consume(scan_pos - lead)
                break
            start = scan_pos + result.start_window * n
            window_end = start + frame + tail
            if window_end > ring.end and not final:
                # Straddles the chunk boundary: wait for the tail.
                ring.consume(max(start - lead, ring.start))
                break
            window_start = max(start - lead, ring.start)
            window_end = min(window_end, ring.end)
            job = DecodeJob(
                job_id=next_job_id,
                samples=ring.view(window_start, window_end - window_start),
                n_data_symbols=n_data_symbols,
                payload_len=self.config.payload_len,
                start_sample=window_start,
                detection_score=result.score,
                created_at=time.perf_counter(),
            )
            detected += 1
            next_job_id += 1
            telemetry.counter("detect.packets").inc()
            pool.submit(job)
            # The detected start is window-granular and may sit up to one
            # window before the true (mid-window) packet start; skip one
            # extra symbol past the nominal frame end so the leftover
            # partial chirp cannot re-trigger detection.  A back-to-back
            # successor only loses a fraction of its first preamble
            # window, which the accumulation detector absorbs.
            scan_pos = start + frame + n
            ring.consume(scan_pos - lead)
            if window_end >= ring.end and final:
                break
        return scan_pos, detected, next_job_id
