"""The streaming gateway runtime: ingest -> detect -> dispatch -> decode.

This is the base-station-side loop the paper assumes but the rest of the
repo never had: instead of decoding one pre-cut capture, the gateway
consumes a continuous IQ stream in chunks, finds packets on the fly, and
keeps decoding while the stream keeps arriving.

Stages (each instrumented through :mod:`repro.gateway.telemetry`):

1. **ingest** -- append the next source chunk to a bounded
   :class:`repro.gateway.ring.SampleRing` (overflow evicts the oldest
   samples, counted as loss).
2. **detect** -- slide :func:`repro.core.detection.sliding_packet_search`
   (``earliest=True``) over the unscanned span of the ring.  A detection
   whose frame tail has not arrived yet stays pending until the next
   chunk, which is how packets straddling chunk boundaries survive.
3. **dispatch** -- cut the packet window (one guard symbol of lead for
   :func:`repro.core.detection.align_to_window_grid` to find the exact
   boundary) and submit it to the
   :class:`repro.gateway.workers.DecodeWorkerPool`; the bounded queue's
   drop policy is the backpressure valve.
4. **decode** -- workers run the full :class:`repro.core.ChoirDecoder`
   pipeline plus the LoRa FEC/CRC chain and report per-user payloads.

``Gateway.run(source)`` returns a :class:`GatewayReport` with counts,
throughput, per-stage latency percentiles and every decode outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.cascade import DECODE_TIERS
from repro.core.detection import sliding_packet_search
from repro.gateway.ring import SampleRing
from repro.gateway.sources import SampleSource
from repro.gateway.telemetry import Telemetry, clock
from repro.gateway.workers import DecodeJob, DecodeOutcome, DecodeWorkerPool
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams
from repro.profile import context as profile_context
from repro.profile.profiler import KernelProfiler
from repro.profile.resources import ResourceAccountant, ResourceSummary
from repro.trace.recorder import TraceConfig, TraceRecorder


@dataclass(frozen=True)
class GatewayConfig:
    """Everything configurable about one gateway run.

    Parameters
    ----------
    params:
        Shared PHY configuration (must match the traffic).
    payload_len:
        Application payload bytes per packet; fixes the frame geometry
        the detector paces by and the decoder decodes.
    n_workers, executor, queue_capacity, drop_policy:
        Decode pool shape; see
        :class:`repro.gateway.workers.DecodeWorkerPool`.
    ring_symbols:
        Ring-buffer capacity in symbols (must hold at least two frames;
        sized automatically when 0).
    detection_pfa:
        Search-level false-alarm probability per detection scan.
    max_users:
        Cap on SIC user estimates per decoded window; bounds the
        worst-case decode time on windows full of interference
        (None = uncapped).
    use_engine:
        Route decode residual searches through the batched
        :class:`repro.core.engine.ResidualEngine` paths (default); the
        scalar reference loops are selected with ``False``.
    decode_tier:
        Which pipeline decodes each window: ``"full"`` (default),
        ``"cascade"`` (Tier-0 fast path with escalation to the full
        Choir pipeline) or ``"fast"`` (Tier 0 only); see
        :mod:`repro.core.cascade`.
    seed:
        Master seed; per-job decode RNGs derive from it.
    trace:
        Attach a :class:`repro.trace.TraceRecorder` to the run: record
        every detection and decode outcome, and build provenance span
        trees per the sampling policy below.
    trace_sample_rate:
        Fraction of jobs whose span tree is retained unconditionally
        (deterministic by rng_key; 1.0 = every job).
    trace_always_sample_failures:
        Retain the span tree of every job that fails CRC, whatever the
        sample rate -- the mode that keeps forensics complete while
        bounding trace volume on healthy traffic.
    profile:
        Attach a :class:`repro.profile.KernelProfiler` to the run:
        per-kernel wall/FFT/bytes accounting on every executor, folded
        into telemetry (``profile.kernel.*``) and reported on the
        :class:`GatewayReport` alongside a resource summary.
    profile_alloc:
        With ``profile``, additionally track allocations via
        ``tracemalloc`` and keep the top so-many sites (0 = off; this
        is the expensive knob, ~2-4x slowdown).
    """

    params: LoRaParams = field(default_factory=LoRaParams)
    payload_len: int = 8
    n_workers: int = 1
    executor: str = "thread"
    queue_capacity: int = 8
    drop_policy: str = "newest"
    ring_symbols: int = 0
    detection_pfa: float = 1e-3
    coding_rate: int = 4
    synchronize: bool = True
    max_users: Optional[int] = 4
    use_engine: bool = True
    decode_tier: str = "full"
    seed: Optional[int] = None
    trace: bool = False
    trace_sample_rate: float = 1.0
    trace_always_sample_failures: bool = True
    profile: bool = False
    profile_alloc: int = 0

    def __post_init__(self) -> None:
        if self.decode_tier not in DECODE_TIERS:
            raise ValueError(
                f"decode_tier must be one of {DECODE_TIERS}, got {self.decode_tier!r}"
            )

    def trace_config(self) -> TraceConfig:
        """The sampling policy implied by the trace fields."""
        return TraceConfig(
            sample_rate=self.trace_sample_rate,
            always_sample_failures=self.trace_always_sample_failures,
        )

    def n_data_symbols(self) -> int:
        """Data symbols per frame for this payload length."""
        framer = LoRaFramer(self.params, coding_rate=self.coding_rate)
        return framer.n_symbols_for_payload(self.payload_len)

    def frame_samples(self) -> int:
        """Samples per frame: preamble plus data symbols."""
        return (
            self.params.preamble_len + self.n_data_symbols()
        ) * self.params.samples_per_symbol


@dataclass
class GatewayReport:
    """Outcome of one gateway run: counts, rates, latencies, payloads.

    Multi-channel (sharded) runs additionally fill ``shards``: one row of
    counters per ``ch{c}.sf{s}`` shard label, with the top-level counts
    acting as the cross-channel aggregate.
    """

    samples_in: int
    chunks_in: int
    samples_evicted: int
    packets_detected: int
    packets_dropped: int
    packets_decoded: int
    crc_failures: int
    decode_errors: int
    wall_s: float
    stream_s: float
    outcomes: List[DecodeOutcome]
    telemetry: Dict[str, Dict[str, Any]]
    shards: Optional[Dict[str, Dict[str, int]]] = None
    trace: Optional[TraceRecorder] = None
    profile: Optional[KernelProfiler] = None
    resources: Optional[ResourceSummary] = None

    # ------------------------------------------------------------------
    @property
    def decoded_payloads(self) -> List[bytes]:
        """CRC-verified payloads in stream order."""
        return [o.payload for o in self.outcomes if o.crc_ok and o.payload is not None]

    @property
    def packets_per_s(self) -> float:
        """CRC-verified packets per wall-clock second."""
        return self.packets_decoded / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def samples_per_s(self) -> float:
        """Ingested samples processed per wall-clock second."""
        return self.samples_in / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def realtime_factor(self) -> float:
        """Stream seconds processed per wall second (>1 keeps up live)."""
        return self.stream_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def decode_success_rate(self) -> float:
        """CRC-verified fraction of detected-and-decoded windows."""
        attempted = self.packets_detected - self.packets_dropped
        return self.packets_decoded / attempted if attempted > 0 else 0.0

    @property
    def drop_rate(self) -> float:
        """Fraction of detected packets lost to backpressure."""
        return (
            self.packets_dropped / self.packets_detected
            if self.packets_detected > 0
            else 0.0
        )

    # ------------------------------------------------------------------
    def _stage_line(self, label: str, metric: str) -> str:
        state = self.telemetry.get(metric)
        if state is None or state.get("count", 0) == 0:
            return f"  {label:<12} (no events)"
        return (
            f"  {label:<12} n={state['count']:<5d}"
            f" p50={1e3 * state['p50_s']:7.2f}ms"
            f" p95={1e3 * state['p95_s']:7.2f}ms"
            f" max={1e3 * state['max_s']:7.2f}ms"
        )

    def _counter(self, name: str) -> int:
        state = self.telemetry.get(name)
        return int(state.get("value", 0)) if state is not None else 0

    def _tier_lines(self) -> List[str]:
        """The tiered-decode section: tier split plus escalation reasons.

        Empty (section omitted) on ``decode_tier="full"`` runs, which
        never touch the ``decode.tier0.*`` instruments.
        """
        attempts = self._counter("decode.tier0.attempts")
        if attempts == 0:
            return []
        escalated = self._counter("decode.escalated")
        lines = [
            "tiered decode",
            f"  tier0        {self._counter('decode.tier0.ok')} ok of"
            f" {attempts} windows"
            f" ({escalated} escalated,"
            f" {100.0 * escalated / attempts:.0f}% escalation rate)",
        ]
        prefix = "decode.escalated."
        reasons = {
            name[len(prefix):]: int(state.get("value", 0))
            for name, state in self.telemetry.items()
            if name.startswith(prefix)
        }
        if reasons:
            lines.append("  escalation reasons")
            width = max(len(reason) for reason in reasons)
            for reason in sorted(reasons):
                lines.append(f"    {reason.ljust(width)}  {reasons[reason]}")
        return lines

    def _profile_lines(self) -> List[str]:
        """The kernel-profile section; empty when the run did not profile."""
        if self.profile is None or not len(self.profile):
            return []
        stats = self.profile.stats()
        total = sum(stat["wall_s"] for stat in stats.values()) or 1.0
        rows = sorted(
            stats.items(), key=lambda kv: kv[1]["wall_s"], reverse=True
        )
        lines = [f"kernel profile ({1e3 * total:.1f}ms self time)"]
        for (name, shape), stat in rows[:8]:
            label = f"{name} {shape}".strip()
            lines.append(
                f"  {label:<28} {1e3 * stat['wall_s']:8.2f}ms"
                f" ({100.0 * stat['wall_s'] / total:4.1f}%)"
                f" x{stat['calls']}"
            )
        if len(rows) > 8:
            rest = sum(stat["wall_s"] for _, stat in rows[8:])
            lines.append(
                f"  {'(other kernels)':<28} {1e3 * rest:8.2f}ms"
                f" ({100.0 * rest / total:4.1f}%)"
            )
        return lines

    def summary(self) -> str:
        """Human-readable run summary (what ``repro gateway`` prints)."""
        lines = [
            "gateway run summary",
            f"  stream       {self.stream_s:.2f}s ({self.samples_in} samples,"
            f" {self.chunks_in} chunks)",
            f"  wall         {self.wall_s:.2f}s"
            f" ({self.realtime_factor:.2f}x realtime,"
            f" {self.samples_per_s / 1e6:.2f} Msamples/s)",
            f"  detected     {self.packets_detected} packets",
            f"  decoded      {self.packets_decoded} crc-ok"
            f" ({100.0 * self.decode_success_rate:.0f}% of attempted,"
            f" {self.packets_per_s:.2f} packets/s)",
            f"  crc-failed   {self.crc_failures}",
            f"  dropped      {self.packets_dropped}"
            f" ({100.0 * self.drop_rate:.0f}% of detected)"
            + (f", {self.samples_evicted} samples evicted" if self.samples_evicted else ""),
        ]
        if self.decode_errors:
            lines.append(f"  errors       {self.decode_errors}")
        lines.extend(self._tier_lines())
        if self.shards:
            lines.append("per-shard recovery")
            for label in sorted(self.shards):
                row = self.shards[label]
                lines.append(
                    f"  {label:<12} detected={row.get('detected', 0)}"
                    f" decoded={row.get('decoded', 0)}"
                    f" crc-failed={row.get('crc_failed', 0)}"
                    f" dropped={row.get('dropped', 0)}"
                )
            lines.append(
                f"  {'all-shards':<12} detected={self.packets_detected}"
                f" decoded={self.packets_decoded}"
                f" crc-failed={self.crc_failures}"
                f" dropped={self.packets_dropped}"
            )
        lines.append("per-stage latency")
        lines.append(self._stage_line("ingest", "ingest.chunk_s"))
        if "channelize.push_s" in self.telemetry:
            lines.append(self._stage_line("channelize", "channelize.push_s"))
        lines.append(self._stage_line("detect", "detect.scan_s"))
        lines.append(self._stage_line("queue-wait", "decode.queue_wait_s"))
        lines.append(self._stage_line("decode", "decode.decode_s"))
        if "decode.tier0.decode_s" in self.telemetry:
            lines.append(self._stage_line("  tier0", "decode.tier0.decode_s"))
        if "decode.full.decode_s" in self.telemetry and self._counter(
            "decode.tier0.attempts"
        ):
            lines.append(self._stage_line("  full", "decode.full.decode_s"))
        lines.extend(self._profile_lines())
        if self.resources is not None:
            res = self.resources
            lines.append(
                f"resources     cpu={res.cpu_s:.2f}s"
                f" ({100.0 * res.utilization:.0f}% of wall)"
                f" peak-rss={res.peak_rss_kb / 1024.0:.0f}MB"
                + (
                    f" alloc-peak={res.alloc_peak_kb / 1024.0:.1f}MB"
                    if res.alloc_peak_kb
                    else ""
                )
            )
        return "\n".join(lines)


class StreamScanner:
    """Detection-and-dispatch state machine for one shard of a sample ring.

    Owns the scan loop the gateway runs after every ingest: find the
    earliest packet in the unscanned span, cut its window (with lead/tail
    slack) and submit it to the decode pool, then skip past the frame.
    The scanner never consumes the ring itself; it advances
    ``release_pos`` -- the earliest absolute sample it may still need --
    and the ring's owner consumes up to the *minimum* release position of
    every scanner sharing the ring.  That indirection is what lets the
    sharded gateway multiplex several SF scanners over one channel's
    stream; a single-scanner ring (the classic :class:`Gateway`) consumes
    straight to ``release_pos`` and behaves exactly as before.

    Parameters
    ----------
    params:
        PHY configuration of this shard (sets the frame geometry the
        detector paces by).
    payload_len, coding_rate:
        Frame geometry of the expected traffic.
    telemetry:
        Shared registry; scan instruments use the common ``detect.*``
        names, plus ``{label}.detect.packets`` when ``label`` is set.
    detection_pfa:
        Search-level false-alarm probability per scan.
    channel, job_params, rng_prefix, label:
        Shard tagging for submitted jobs: ``job_params`` overrides the
        pool's PHY params per job, ``rng_prefix + (shard_seq,)`` replaces
        the job-id RNG key (keeping decode RNG independent of cross-shard
        interleaving), and ``label`` prefixes per-shard telemetry.  All
        default to the untagged single-channel behaviour.
    trace_recorder:
        Optional :class:`repro.trace.TraceRecorder` receiving one
        detection record per dispatched job.
    """

    def __init__(
        self,
        params: LoRaParams,
        payload_len: int,
        telemetry: Telemetry,
        detection_pfa: float = 1e-3,
        coding_rate: int = 4,
        channel: int = 0,
        job_params: Optional[LoRaParams] = None,
        rng_prefix: Optional[Tuple[int, ...]] = None,
        label: str = "",
        trace_recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.params = params
        self.payload_len = payload_len
        self.telemetry = telemetry
        self.detection_pfa = detection_pfa
        self.channel = channel
        self.job_params = job_params
        self.rng_prefix = rng_prefix
        self.label = label
        self.trace_recorder = trace_recorder
        framer = LoRaFramer(params, coding_rate=coding_rate)
        self.n_data_symbols = framer.n_symbols_for_payload(payload_len)
        n = params.samples_per_symbol
        self.frame_samples = (params.preamble_len + self.n_data_symbols) * n
        # Lead/tail slack around the detected window-granular start: two
        # symbols of lead so align_to_window_grid can find the true
        # boundary even when a back-to-back predecessor's frame skip ate
        # into this packet's preamble, two symbols of tail for
        # timing-offset spill.
        self.lead = 2 * n
        self.tail = 2 * n
        self.min_span = (params.preamble_len + 1) * n
        self.scan_pos = 0  # absolute index of the next unscanned sample
        self.release_pos = 0  # earliest sample this scanner may still need
        self.detected = 0
        self.shard_seq = 0  # per-shard job sequence number (RNG key)

    def _release(self, pos: int) -> None:
        if pos > self.release_pos:
            self.release_pos = pos

    def _make_job(self, ring: SampleRing, start: int, window_end: int,
                  job_id: int, score: float) -> DecodeJob:
        window_start = max(start - self.lead, ring.start)
        window_end = min(window_end, ring.end)
        rng_key = (
            None
            if self.rng_prefix is None
            else self.rng_prefix + (self.shard_seq,)
        )
        return DecodeJob(
            job_id=job_id,
            samples=ring.view(window_start, window_end - window_start),
            n_data_symbols=self.n_data_symbols,
            payload_len=self.payload_len,
            start_sample=window_start,
            detection_score=score,
            created_at=clock(),
            params=self.job_params,
            channel=self.channel,
            rng_key=rng_key,
        )

    def scan(
        self,
        ring: SampleRing,
        pool: DecodeWorkerPool,
        next_job_id: int,
        final: bool = False,
    ) -> int:
        """Detect and dispatch every complete packet in the unscanned span.

        Returns the next free job id.  A detection whose frame has not
        fully arrived is left unconsumed (``scan_pos`` stays put) so the
        next chunk completes it -- unless ``final``, in which case the
        truncated window is dispatched anyway (the decoder may still
        salvage it if only slack is missing).
        """
        params = self.params
        n = params.samples_per_symbol
        telemetry = self.telemetry
        frame = self.frame_samples
        while True:
            self.scan_pos = max(self.scan_pos, ring.start)
            available = ring.end - self.scan_pos
            if available < self.min_span:
                break
            segment = ring.view(self.scan_pos, available)
            with telemetry.timer("detect.scan_s"):
                result = sliding_packet_search(
                    params,
                    segment,
                    pfa=self.detection_pfa,
                    earliest=True,
                )
            telemetry.counter("detect.scans").inc()
            if not result.detected:
                # Keep a preamble's worth of overlap so a packet whose
                # head just arrived is still detectable next scan.
                self.scan_pos = max(self.scan_pos, ring.end - self.min_span)
                self._release(self.scan_pos - self.lead)
                break
            start = self.scan_pos + result.start_window * n
            window_end = start + frame + self.tail
            if window_end > ring.end and not final:
                # Straddles the chunk boundary: wait for the tail.
                self._release(max(start - self.lead, ring.start))
                break
            job = self._make_job(ring, start, window_end, next_job_id, result.score)
            self.detected += 1
            next_job_id += 1
            self.shard_seq += 1
            telemetry.counter("detect.packets").inc()
            if self.label:
                telemetry.counter(f"{self.label}.detect.packets").inc()
            if self.trace_recorder is not None:
                self.trace_recorder.record_detection(
                    job_id=job.job_id,
                    key=job.key,
                    channel=self.channel,
                    spreading_factor=params.spreading_factor,
                    start_sample=start,
                    score=float(result.score),
                    label=self.label,
                )
            pool.submit(job)
            # The detected start is window-granular and may sit up to one
            # window before the true (mid-window) packet start; skip one
            # extra symbol past the nominal frame end so the leftover
            # partial chirp cannot re-trigger detection.  A back-to-back
            # successor only loses a fraction of its first preamble
            # window, which the accumulation detector absorbs.
            self.scan_pos = start + frame + n
            self._release(self.scan_pos - self.lead)
            if min(window_end, ring.end) >= ring.end and final:
                break
        return next_job_id


class Gateway:
    """Streaming base-station runtime around a decode worker pool.

    Construct with a :class:`GatewayConfig`, then :meth:`run` it over any
    :class:`repro.gateway.sources.SampleSource`.  A fresh
    :class:`Telemetry` registry is created per run unless one is
    injected (e.g. to aggregate several runs).  ``on_outcome`` streams
    every decode outcome to the caller live (the network-server uplink
    tap); see :class:`repro.gateway.workers.DecodeWorkerPool` for its
    threading contract.
    """

    def __init__(
        self,
        config: GatewayConfig,
        telemetry: Optional[Telemetry] = None,
        trace_recorder: Optional[TraceRecorder] = None,
        profiler: Optional[KernelProfiler] = None,
        on_outcome: Optional[Callable[[DecodeOutcome], None]] = None,
    ) -> None:
        self.config = config
        self.on_outcome = on_outcome
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if trace_recorder is None and config.trace:
            trace_recorder = TraceRecorder(config.trace_config())
        self.trace_recorder = trace_recorder
        if profiler is None and config.profile:
            profiler = KernelProfiler()
        self.profiler = profiler
        n = config.params.samples_per_symbol
        frame = config.frame_samples()
        if config.ring_symbols:
            capacity = config.ring_symbols * n
            if capacity < 2 * frame:
                raise ValueError(
                    f"ring_symbols={config.ring_symbols} holds less than two "
                    f"frames ({2 * frame // n} symbols needed)"
                )
        else:
            # Default: four frames -- room for one packet mid-decode-cut,
            # one arriving, and scan overlap, without unbounded growth.
            capacity = 4 * frame
        self._ring_capacity = capacity

    # ------------------------------------------------------------------
    def run(self, source: SampleSource) -> GatewayReport:
        """Consume ``source`` to exhaustion and report what was decoded."""
        config = self.config
        params = config.params
        telemetry = self.telemetry
        ring = SampleRing(self._ring_capacity)
        recorder = self.trace_recorder
        if recorder is not None:
            recorder.set_header(
                run_kind="gateway",
                executor=config.executor,
                n_workers=config.n_workers,
                seed=config.seed,
                spreading_factor=params.spreading_factor,
                payload_len=config.payload_len,
                decode_tier=config.decode_tier,
                sample_rate=recorder.config.sample_rate,
                always_sample_failures=recorder.config.always_sample_failures,
            )
            ground_truth = getattr(source, "ground_truth", None)
            if callable(ground_truth):
                recorder.set_ground_truth(ground_truth())
        scanner = StreamScanner(
            params,
            config.payload_len,
            telemetry,
            detection_pfa=config.detection_pfa,
            coding_rate=config.coding_rate,
            trace_recorder=recorder,
        )
        pool = DecodeWorkerPool(
            params,
            n_workers=config.n_workers,
            executor=config.executor,
            queue_capacity=config.queue_capacity,
            drop_policy=config.drop_policy,
            synchronize=config.synchronize,
            coding_rate=config.coding_rate,
            # The cut gives two symbols of lead before the (window-granular)
            # detected start, so the true boundary is inside the first three.
            sync_search_symbols=3,
            max_users=config.max_users,
            use_engine=config.use_engine,
            decode_tier=config.decode_tier,
            rng=config.seed,
            telemetry=telemetry,
            trace_recorder=recorder,
            profiler=self.profiler,
            on_outcome=self.on_outcome,
        )
        samples_in = 0
        chunks_in = 0
        evicted = 0
        next_job_id = 0
        accountant: Optional[ResourceAccountant] = None
        if self.profiler is not None:
            accountant = ResourceAccountant(
                alloc_top_n=config.profile_alloc
            )
            accountant.start()
        started = clock()
        # The run-level ambient profiler covers work done in the ingest
        # loop itself (detection scans, channelizer pushes on sharded
        # runs); per-job decode work uses job-local profilers merged by
        # the pool, so nothing is counted twice.
        with profile_context.use_profiler(self.profiler):
            for chunk in source.chunks():
                with telemetry.timer("ingest.chunk_s"):
                    evicted += ring.append(chunk)
                    samples_in += len(chunk)
                    chunks_in += 1
                    telemetry.counter("ingest.samples").inc(len(chunk))
                if self.profiler is not None:
                    telemetry.gauge("ring.occupancy").set(
                        len(ring) / self._ring_capacity
                    )
                next_job_id = scanner.scan(ring, pool, next_job_id)
                ring.consume(scanner.release_pos)
            # Final drain: scan whatever remains after the last chunk.
            next_job_id = scanner.scan(ring, pool, next_job_id, final=True)
            outcomes = pool.close()
        wall = clock() - started
        resources: Optional[ResourceSummary] = None
        if accountant is not None:
            resources = accountant.stop()
        if self.profiler is not None:
            self.profiler.fold_into(telemetry)
        snapshot = telemetry.snapshot()
        crc_ok = sum(1 for o in outcomes if o.crc_ok)
        errors = sum(1 for o in outcomes if o.error is not None)
        return GatewayReport(
            samples_in=samples_in,
            chunks_in=chunks_in,
            samples_evicted=evicted,
            packets_detected=scanner.detected,
            packets_dropped=pool.dropped,
            packets_decoded=crc_ok,
            crc_failures=sum(1 for o in outcomes if not o.crc_ok and o.error is None),
            decode_errors=errors,
            wall_s=wall,
            stream_s=samples_in / params.sample_rate,
            outcomes=outcomes,
            telemetry=snapshot,
            trace=recorder,
            profile=self.profiler,
            resources=resources,
        )
