"""Streaming gateway runtime: continuous IQ ingest + parallel decode.

The base-station-side subsystem (paper Secs. 4-7 assume one): a
continuous sample stream is ingested in chunks, packets are detected over
a ring buffer, and detected windows are decoded by a bounded worker pool
with explicit backpressure.  Every stage reports telemetry.

Quick start::

    from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
    from repro.mac import NodeConfig
    from repro.phy import LoRaParams

    params = LoRaParams(spreading_factor=7)
    config = GatewayConfig(params=params, n_workers=4, seed=0)
    source = SyntheticTrafficSource(
        params,
        nodes=[NodeConfig(node_id=i, snr_db=15.0, period_s=0.5) for i in range(4)],
        duration_s=5.0,
        rng=0,
    )
    report = Gateway(config).run(source)
    print(report.summary())
"""

from repro.gateway.ring import SampleRing
from repro.gateway.runtime import Gateway, GatewayConfig, GatewayReport
from repro.gateway.sources import (
    DEFAULT_CHUNK_SAMPLES,
    IqFileSource,
    SampleSource,
    SyntheticTrafficSource,
    TransmittedPacket,
)
from repro.gateway.telemetry import (
    Counter,
    DurationHistogram,
    Gauge,
    Telemetry,
)
from repro.gateway.workers import (
    DROP_POLICIES,
    EXECUTORS,
    DecodeJob,
    DecodeOutcome,
    DecodeWorkerPool,
    UserResult,
    decode_packet_window,
)

__all__ = [
    "Counter",
    "DEFAULT_CHUNK_SAMPLES",
    "DROP_POLICIES",
    "DecodeJob",
    "DecodeOutcome",
    "DecodeWorkerPool",
    "DurationHistogram",
    "EXECUTORS",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "Gauge",
    "IqFileSource",
    "SampleRing",
    "SampleSource",
    "SyntheticTrafficSource",
    "Telemetry",
    "TransmittedPacket",
    "UserResult",
    "decode_packet_window",
]
