"""Streaming gateway runtime: continuous IQ ingest + parallel decode.

The base-station-side subsystem (paper Secs. 4-7 assume one): a
continuous sample stream is ingested in chunks, packets are detected over
a ring buffer, and detected windows are decoded by a bounded worker pool
with explicit backpressure.  Every stage reports telemetry.

Quick start::

    from repro.gateway import Gateway, GatewayConfig, SyntheticTrafficSource
    from repro.mac import NodeConfig
    from repro.phy import LoRaParams

    params = LoRaParams(spreading_factor=7)
    config = GatewayConfig(params=params, n_workers=4, seed=0)
    source = SyntheticTrafficSource(
        params,
        nodes=[NodeConfig(node_id=i, snr_db=15.0, period_s=0.5) for i in range(4)],
        duration_s=5.0,
        rng=0,
    )
    report = Gateway(config).run(source)
    print(report.summary())

Multi-channel quick start (8 channels, mixed SF7/SF8, one shared pool)::

    from repro.gateway import ShardedGateway, ShardedGatewayConfig
    from repro.phy import ChannelPlan

    plan = ChannelPlan.eu868_style(8)
    config = ShardedGatewayConfig(plan=plan, sf_set=(7, 8), n_workers=4, seed=0)
    source = SyntheticTrafficSource(
        LoRaParams(spreading_factor=7),
        nodes=[
            NodeConfig(node_id=i, snr_db=15.0, period_s=0.5,
                       channel=i % 8, spreading_factor=7 + i % 2)
            for i in range(16)
        ],
        duration_s=5.0,
        plan=plan,
        rng=0,
    )
    report = ShardedGateway(config).run(source)
    print(report.summary())  # includes the per-shard recovery table
"""

from repro.gateway.channelizer import (
    DEFAULT_TAPS_PER_BRANCH,
    PolyphaseChannelizer,
    prototype_filter,
    upconvert_to_channel,
)
from repro.gateway.ring import SampleRing
from repro.gateway.runtime import Gateway, GatewayConfig, GatewayReport, StreamScanner
from repro.gateway.sharded import ShardedGateway, ShardedGatewayConfig
from repro.gateway.sources import (
    DEFAULT_CHUNK_SAMPLES,
    IqFileSource,
    SampleSource,
    SyntheticTrafficSource,
    TransmittedPacket,
)
from repro.gateway.telemetry import (
    DEFAULT_HISTOGRAM_CAP,
    Counter,
    DurationHistogram,
    Gauge,
    Telemetry,
    clock,
    parse_prometheus_text,
    shard_label,
)
from repro.gateway.workers import (
    DROP_POLICIES,
    EXECUTORS,
    DecodeJob,
    DecodeOutcome,
    DecodeWorkerPool,
    UserResult,
    decode_packet_window,
)

__all__ = [
    "Counter",
    "DEFAULT_CHUNK_SAMPLES",
    "DEFAULT_HISTOGRAM_CAP",
    "DEFAULT_TAPS_PER_BRANCH",
    "DROP_POLICIES",
    "DecodeJob",
    "DecodeOutcome",
    "DecodeWorkerPool",
    "DurationHistogram",
    "EXECUTORS",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "Gauge",
    "IqFileSource",
    "PolyphaseChannelizer",
    "SampleRing",
    "SampleSource",
    "ShardedGateway",
    "ShardedGatewayConfig",
    "StreamScanner",
    "SyntheticTrafficSource",
    "Telemetry",
    "TransmittedPacket",
    "UserResult",
    "clock",
    "decode_packet_window",
    "parse_prometheus_text",
    "prototype_filter",
    "shard_label",
    "upconvert_to_channel",
]
