"""Fixed-capacity IQ ring buffer with absolute sample indexing.

The gateway's ingest stage appends chunks as they arrive; the detection
stage reads windows by *absolute* stream position (sample index since the
run started), so its bookkeeping survives the buffer wrapping around.
When a producer outruns the consumer past the ring's capacity, the oldest
samples are overwritten and counted -- the bounded-memory half of the
gateway's backpressure story (the decode queue is the other half).
"""

from __future__ import annotations

import numpy as np


class SampleRing:
    """Circular complex-sample buffer addressed by absolute stream index.

    Parameters
    ----------
    capacity:
        Maximum number of samples retained.  Appends beyond it evict the
        oldest samples (returned as an overflow count so the caller can
        account the loss).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._buffer = np.zeros(self.capacity, dtype=complex)
        self._start = 0  # absolute index of the oldest retained sample
        self._count = 0  # retained samples

    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """Absolute index of the oldest retained sample."""
        return self._start

    @property
    def end(self) -> int:
        """Absolute index one past the newest retained sample."""
        return self._start + self._count

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def append(self, chunk: np.ndarray) -> int:
        """Append ``chunk``; returns how many old samples were evicted.

        A chunk larger than the whole ring keeps only its newest
        ``capacity`` samples (everything older is counted as evicted).
        """
        chunk = np.asarray(chunk, dtype=complex).ravel()
        evicted = 0
        if chunk.size >= self.capacity:
            evicted = self._count + (chunk.size - self.capacity)
            self._start += self._count + chunk.size - self.capacity
            self._count = self.capacity
            tail = chunk[-self.capacity :]
            pos = self._start % self.capacity
            first = min(self.capacity - pos, self.capacity)
            self._buffer[pos : pos + first] = tail[:first]
            if first < self.capacity:
                self._buffer[: self.capacity - first] = tail[first:]
            return evicted
        overflow = self._count + chunk.size - self.capacity
        if overflow > 0:
            self._start += overflow
            self._count -= overflow
            evicted = overflow
        pos = (self._start + self._count) % self.capacity
        first = min(self.capacity - pos, chunk.size)
        self._buffer[pos : pos + first] = chunk[:first]
        if first < chunk.size:
            self._buffer[: chunk.size - first] = chunk[first:]
        self._count += chunk.size
        return evicted

    def consume(self, upto: int) -> None:
        """Release every sample with absolute index below ``upto``."""
        if upto <= self._start:
            return
        released = min(upto - self._start, self._count)
        self._start += released
        self._count -= released

    def view(self, start: int, length: int) -> np.ndarray:
        """Copy out ``length`` samples beginning at absolute ``start``.

        The span must be fully retained; asking for evicted or not yet
        appended samples raises ``IndexError`` (the gateway treats that as
        a programming error, not a recoverable condition).
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if start < self._start or start + length > self.end:
            raise IndexError(
                f"span [{start}, {start + length}) outside retained "
                f"[{self._start}, {self.end})"
            )
        if length == 0:
            return np.zeros(0, dtype=complex)
        pos = start % self.capacity
        first = min(self.capacity - pos, length)
        out = np.empty(length, dtype=complex)
        out[:first] = self._buffer[pos : pos + first]
        if first < length:
            out[first:] = self._buffer[: length - first]
        return out
