"""Continuous IQ sample sources for the streaming gateway.

Two producers of the chunked baseband stream a base station sees:

* :class:`SyntheticTrafficSource` -- renders a node population's traffic
  into one continuous noisy stream.  Arrivals follow the MAC simulator's
  model (:class:`repro.mac.NodeConfig`: periodic with ``period_s``, or
  saturated back-to-back when ``None``); each node keeps a persistent
  :class:`repro.hardware.LoRaRadio`, so its crystal offset is stable
  across packets exactly as in :class:`repro.mac.waveform_phy.WaveformPhy`.
  Ground truth (payload, start sample, node) is exposed for end-to-end
  verification.
* :class:`IqFileSource` -- replays a capture from disk (``.npy`` complex
  array, or raw interleaved complex64) in chunks, for decoding recorded
  traffic offline through the same pipeline.

Sources yield chunks of a configurable size; the gateway never sees more
than one chunk at a time, which is what makes the runtime streaming
rather than batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Protocol

import numpy as np

from repro.channel.noise import awgn
from repro.gateway.channelizer import upconvert_to_channel
from repro.hardware.radio import LoRaRadio
from repro.mac.simulator import NodeConfig
from repro.phy.packet import LoRaFramer
from repro.phy.params import ChannelPlan, LoRaParams
from repro.utils import RngLike, as_seed_sequence, db_to_linear, derive_rng

#: Default chunk size in samples (~33 ms at 125 kHz).
DEFAULT_CHUNK_SAMPLES = 4096


class SampleSource(Protocol):
    """Anything that can feed the gateway a chunked IQ stream."""

    params: LoRaParams

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield consecutive complex-baseband chunks until exhausted."""
        ...


@dataclass(frozen=True)
class TransmittedPacket:
    """Ground truth for one synthesized uplink packet.

    ``start_sample`` is in *stream* units: narrowband samples for a
    single-channel source, wideband samples when the source renders onto a
    :class:`repro.phy.params.ChannelPlan`.  ``channel`` and
    ``spreading_factor`` identify the shard a multi-channel run should
    recover the packet on (``spreading_factor`` is ``None`` when the
    shared source params apply).
    """

    node_id: int
    payload: bytes
    start_sample: int
    n_data_symbols: int
    snr_db: float
    channel: int = 0
    spreading_factor: int | None = None

    def frame_samples(self, params: LoRaParams) -> int:
        """Nominal frame length in samples (preamble + data)."""
        return (params.preamble_len + self.n_data_symbols) * params.samples_per_symbol


class SyntheticTrafficSource:
    """Continuous base-station stream synthesized from a node population.

    Parameters
    ----------
    params:
        Shared PHY configuration.
    nodes:
        Traffic/link configuration per node (``period_s=None`` means
        saturated: the node transmits back-to-back frames).  Payload
        geometry comes from ``payload_len``, which supersedes
        ``NodeConfig.payload_bits`` -- the streaming gateway decodes a
        fixed frame length, as the paper's deployments do.
    duration_s:
        Stream duration; packets that would not finish in time are not
        scheduled.
    payload_len:
        Application payload bytes per packet.
    chunk_samples:
        Samples per yielded chunk.
    noise_power:
        AWGN power (1.0 makes ``snr_db`` literal, as in
        :class:`repro.channel.CollisionChannel`); 0 disables noise for
        deterministic unit tests.  In multi-channel mode the noise is
        added at the wideband rate and per-node amplitudes are scaled so
        ``snr_db`` stays literal *per channel* after the analysis bank.
    plan:
        ``None`` (the default) renders the legacy single-channel
        narrowband stream.  With a :class:`repro.phy.params.ChannelPlan`
        the source becomes *wideband*: each node's frames are rendered at
        its own spreading factor (``NodeConfig.spreading_factor``, falling
        back to ``params``) and upconverted onto its
        ``NodeConfig.channel``, and chunks stream at
        ``plan.wideband_rate``.
    rng:
        Seed for everything: schedule phases, payload bytes, radio
        imperfections, and noise are all derived sub-streams, so one seed
        reproduces the stream bit-for-bit (for a fixed chunk size -- the
        rendered signal is chunk-invariant, but noise is drawn per chunk).
    payload_fn:
        Optional ``(node_id, packet_seq) -> bytes`` supplying each
        packet's payload instead of the random draw (``packet_seq``
        counts that node's packets from 0 in schedule order).  This is
        how the network-server integration stamps LoRaWAN-style
        devaddr/fcnt headers onto synthesized uplinks.  Returned bytes
        must be exactly ``payload_len`` long.  The default (``None``)
        leaves the legacy random-payload draw sequence untouched.
    """

    def __init__(
        self,
        params: LoRaParams,
        nodes: List[NodeConfig],
        duration_s: float,
        payload_len: int = 8,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
        noise_power: float = 1.0,
        plan: ChannelPlan | None = None,
        rng: RngLike = None,
        payload_fn: Optional[Callable[[int, int], bytes]] = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        self.params = params
        self.plan = plan
        self.payload_len = payload_len
        self.payload_fn = payload_fn
        self.chunk_samples = int(chunk_samples)
        self.noise_power = noise_power
        framer = LoRaFramer(params)
        self.n_data_symbols = framer.n_symbols_for_payload(payload_len)
        seq = as_seed_sequence(rng)
        schedule_rng = derive_rng(seq, 0)
        self._noise_rng = derive_rng(seq, 1)
        if plan is None:
            for cfg in nodes:
                if cfg.channel != 0 or cfg.spreading_factor is not None:
                    raise ValueError(
                        "node channel/spreading_factor overrides require a "
                        f"ChannelPlan (node {cfg.node_id})"
                    )
            self.duration_samples = int(round(duration_s * params.sample_rate))
            self._init_single(params, nodes, schedule_rng, seq)
        else:
            for cfg in nodes:
                plan.validate_channel(cfg.channel)
            self.duration_samples = int(round(duration_s * plan.wideband_rate))
            self._init_wideband(plan, nodes, schedule_rng, seq)
        self._rendered: Dict[int, np.ndarray] = {}
        self._next_to_render = 0

    def _make_payload(
        self,
        node_id: int,
        seq_by_node: Dict[int, int],
        schedule_rng: np.random.Generator,
    ) -> bytes:
        """One packet's payload: the custom function, or the random draw."""
        if self.payload_fn is None:
            return bytes(
                schedule_rng.integers(0, 256, self.payload_len, dtype=np.uint8)
            )
        seq = seq_by_node.get(node_id, 0)
        seq_by_node[node_id] = seq + 1
        payload = self.payload_fn(node_id, seq)
        if len(payload) != self.payload_len:
            raise ValueError(
                f"payload_fn returned {len(payload)} bytes for node "
                f"{node_id}, expected payload_len={self.payload_len}"
            )
        return payload

    def _init_single(
        self,
        params: LoRaParams,
        nodes: List[NodeConfig],
        schedule_rng: np.random.Generator,
        seq: np.random.SeedSequence,
    ) -> None:
        """Legacy narrowband schedule; RNG draw order is frozen (see tests)."""
        self._radios: Dict[int, LoRaRadio] = {
            cfg.node_id: LoRaRadio(
                params, node_id=cfg.node_id, rng=derive_rng(seq, 2, cfg.node_id)
            )
            for cfg in nodes
        }
        self._node_symbols: Dict[int, int] = {
            cfg.node_id: self.n_data_symbols for cfg in nodes
        }
        n = params.samples_per_symbol
        frame_samples = (params.preamble_len + self.n_data_symbols) * n
        arrivals: List[tuple[int, NodeConfig]] = []
        for cfg in nodes:
            if cfg.period_s is None:
                # Saturated: back-to-back frames separated by one guard
                # symbol (the beacon-slot overhead the MAC model charges).
                slot = frame_samples + n
                phase = int(schedule_rng.integers(0, slot))
                starts = range(phase, self.duration_samples, slot)
            else:
                period = max(int(round(cfg.period_s * params.sample_rate)), 1)
                phase = int(schedule_rng.integers(0, period))
                starts = range(phase, self.duration_samples, period)
            arrivals.extend(
                (start, cfg)
                for start in starts
                if start + frame_samples + n <= self.duration_samples
            )
        arrivals.sort(key=lambda item: (item[0], item[1].node_id))
        seq_by_node: Dict[int, int] = {}
        self.transmitted: List[TransmittedPacket] = [
            TransmittedPacket(
                node_id=cfg.node_id,
                payload=self._make_payload(cfg.node_id, seq_by_node, schedule_rng),
                start_sample=start,
                n_data_symbols=self.n_data_symbols,
                snr_db=cfg.snr_db,
            )
            for start, cfg in arrivals
        ]

    def _init_wideband(
        self,
        plan: ChannelPlan,
        nodes: List[NodeConfig],
        schedule_rng: np.random.Generator,
        seq: np.random.SeedSequence,
    ) -> None:
        """Multi-channel schedule: narrowband frames placed on the plan.

        Scheduling runs in narrowband units and scales by the oversample
        factor, so every start lands on the channelizer's decimation grid
        and the through-bank signal is a pure integer delay of the
        narrowband render.
        """
        m = plan.oversample_factor
        self._radios = {}
        self._node_symbols = {}
        node_frames: Dict[int, int] = {}
        for cfg in nodes:
            sf = (
                cfg.spreading_factor
                if cfg.spreading_factor is not None
                else self.params.spreading_factor
            )
            node_params = plan.channel_params(sf, preamble_len=self.params.preamble_len)
            self._radios[cfg.node_id] = LoRaRadio(
                node_params, node_id=cfg.node_id, rng=derive_rng(seq, 2, cfg.node_id)
            )
            n_symbols = LoRaFramer(node_params).n_symbols_for_payload(self.payload_len)
            self._node_symbols[cfg.node_id] = n_symbols
            node_frames[cfg.node_id] = (
                node_params.preamble_len + n_symbols
            ) * node_params.samples_per_symbol
        arrivals: List[tuple[int, NodeConfig]] = []
        for cfg in nodes:
            node_params = self._radios[cfg.node_id].params
            n = node_params.samples_per_symbol
            frame_nb = node_frames[cfg.node_id]
            if cfg.period_s is None:
                slot_nb = frame_nb + n
                phase = int(schedule_rng.integers(0, slot_nb))
                starts = range(phase * m, self.duration_samples, slot_nb * m)
            else:
                period_nb = max(int(round(cfg.period_s * node_params.sample_rate)), 1)
                phase = int(schedule_rng.integers(0, period_nb))
                starts = range(phase * m, self.duration_samples, period_nb * m)
            arrivals.extend(
                (start, cfg)
                for start in starts
                if start + (frame_nb + n) * m <= self.duration_samples
            )
        arrivals.sort(key=lambda item: (item[0], item[1].node_id))
        seq_by_node: Dict[int, int] = {}
        self.transmitted = [
            TransmittedPacket(
                node_id=cfg.node_id,
                payload=self._make_payload(cfg.node_id, seq_by_node, schedule_rng),
                start_sample=start,
                n_data_symbols=self._node_symbols[cfg.node_id],
                snr_db=cfg.snr_db,
                channel=cfg.channel,
                spreading_factor=self._radios[cfg.node_id].params.spreading_factor,
            )
            for start, cfg in arrivals
        ]

    # ------------------------------------------------------------------
    def _render_upto(self, end_sample: int) -> None:
        """Render (in schedule order) every packet starting before ``end``.

        Rendering order is fixed by the schedule, not by chunk geometry,
        so per-radio random phase draws are reproducible for any chunk
        size.
        """
        while (
            self._next_to_render < len(self.transmitted)
            and self.transmitted[self._next_to_render].start_sample < end_sample
        ):
            packet = self.transmitted[self._next_to_render]
            radio = self._radios[packet.node_id]
            snr_lin = db_to_linear(packet.snr_db) * max(self.noise_power, 1e-30)
            if self.plan is None:
                amplitude = float(np.sqrt(snr_lin))
                waveform, _, _ = radio.transmit_payload(
                    packet.payload, amplitude=amplitude
                )
            else:
                # Per-channel noise after the analysis bank is roughly
                # noise_power / M, so scale the narrowband amplitude to
                # keep snr_db literal on the channelized stream.
                amplitude = float(np.sqrt(snr_lin / self.plan.oversample_factor))
                narrowband, _, _ = radio.transmit_payload(
                    packet.payload, amplitude=amplitude
                )
                waveform = upconvert_to_channel(
                    narrowband,
                    self.plan,
                    packet.channel,
                    start_sample=packet.start_sample,
                )
            self._rendered[self._next_to_render] = waveform
            self._next_to_render += 1

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the noisy stream chunk by chunk."""
        for a in range(0, self.duration_samples, self.chunk_samples):
            b = min(a + self.chunk_samples, self.duration_samples)
            self._render_upto(b)
            chunk = np.zeros(b - a, dtype=complex)
            for index, waveform in list(self._rendered.items()):
                start = self.transmitted[index].start_sample
                end = start + waveform.size
                if end <= a:
                    del self._rendered[index]  # fully behind the stream head
                    continue
                if start >= b:
                    continue
                lo, hi = max(start, a), min(end, b)
                chunk[lo - a : hi - a] += waveform[lo - start : hi - start]
            if self.noise_power > 0:
                chunk = awgn(chunk, self.noise_power, rng=self._noise_rng)
            yield chunk

    def ground_truth(self) -> List[Dict[str, object]]:
        """Per-packet truth rows for the trace/forensics layer.

        ``start_sample`` is converted to the units the *detector* sees:
        narrowband samples (a wideband plan's starts divide exactly by
        its oversample factor, since scheduling runs on the decimation
        grid), so forensics can match detections to transmissions
        without knowing the channelizer geometry.
        """
        m = 1 if self.plan is None else self.plan.oversample_factor
        rows: List[Dict[str, object]] = []
        for packet in self.transmitted:
            node_params = self._radios[packet.node_id].params
            rows.append(
                {
                    "node_id": packet.node_id,
                    "payload": packet.payload.hex(),
                    "start_sample": packet.start_sample // m,
                    "channel": packet.channel,
                    "spreading_factor": node_params.spreading_factor,
                    "frame_samples": packet.frame_samples(node_params),
                    "snr_db": packet.snr_db,
                }
            )
        return rows


class IqFileSource:
    """Replay a recorded IQ capture from disk in chunks.

    ``.npy`` files are loaded as saved; any other extension is read as raw
    interleaved complex64 (the common SDR capture format).
    """

    def __init__(
        self,
        params: LoRaParams,
        path: str,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> None:
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        self.params = params
        self.path = Path(path)
        self.chunk_samples = int(chunk_samples)
        if self.path.suffix == ".npy":
            data = np.load(self.path)
        else:
            data = np.fromfile(self.path, dtype=np.complex64)
        self.samples = np.asarray(data, dtype=complex).ravel()

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the capture chunk by chunk."""
        for a in range(0, self.samples.size, self.chunk_samples):
            yield self.samples[a : a + self.chunk_samples]
