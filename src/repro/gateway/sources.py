"""Continuous IQ sample sources for the streaming gateway.

Two producers of the chunked baseband stream a base station sees:

* :class:`SyntheticTrafficSource` -- renders a node population's traffic
  into one continuous noisy stream.  Arrivals follow the MAC simulator's
  model (:class:`repro.mac.NodeConfig`: periodic with ``period_s``, or
  saturated back-to-back when ``None``); each node keeps a persistent
  :class:`repro.hardware.LoRaRadio`, so its crystal offset is stable
  across packets exactly as in :class:`repro.mac.waveform_phy.WaveformPhy`.
  Ground truth (payload, start sample, node) is exposed for end-to-end
  verification.
* :class:`IqFileSource` -- replays a capture from disk (``.npy`` complex
  array, or raw interleaved complex64) in chunks, for decoding recorded
  traffic offline through the same pipeline.

Sources yield chunks of a configurable size; the gateway never sees more
than one chunk at a time, which is what makes the runtime streaming
rather than batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Protocol

import numpy as np

from repro.channel.noise import awgn
from repro.hardware.radio import LoRaRadio
from repro.mac.simulator import NodeConfig
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams
from repro.utils import RngLike, as_seed_sequence, db_to_linear, derive_rng

#: Default chunk size in samples (~33 ms at 125 kHz).
DEFAULT_CHUNK_SAMPLES = 4096


class SampleSource(Protocol):
    """Anything that can feed the gateway a chunked IQ stream."""

    params: LoRaParams

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield consecutive complex-baseband chunks until exhausted."""
        ...


@dataclass(frozen=True)
class TransmittedPacket:
    """Ground truth for one synthesized uplink packet."""

    node_id: int
    payload: bytes
    start_sample: int
    n_data_symbols: int
    snr_db: float

    def frame_samples(self, params: LoRaParams) -> int:
        """Nominal frame length in samples (preamble + data)."""
        return (params.preamble_len + self.n_data_symbols) * params.samples_per_symbol


class SyntheticTrafficSource:
    """Continuous base-station stream synthesized from a node population.

    Parameters
    ----------
    params:
        Shared PHY configuration.
    nodes:
        Traffic/link configuration per node (``period_s=None`` means
        saturated: the node transmits back-to-back frames).  Payload
        geometry comes from ``payload_len``, which supersedes
        ``NodeConfig.payload_bits`` -- the streaming gateway decodes a
        fixed frame length, as the paper's deployments do.
    duration_s:
        Stream duration; packets that would not finish in time are not
        scheduled.
    payload_len:
        Application payload bytes per packet.
    chunk_samples:
        Samples per yielded chunk.
    noise_power:
        AWGN power (1.0 makes ``snr_db`` literal, as in
        :class:`repro.channel.CollisionChannel`); 0 disables noise for
        deterministic unit tests.
    rng:
        Seed for everything: schedule phases, payload bytes, radio
        imperfections, and noise are all derived sub-streams, so one seed
        reproduces the stream bit-for-bit (for a fixed chunk size -- the
        rendered signal is chunk-invariant, but noise is drawn per chunk).
    """

    def __init__(
        self,
        params: LoRaParams,
        nodes: List[NodeConfig],
        duration_s: float,
        payload_len: int = 8,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
        noise_power: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        self.params = params
        self.payload_len = payload_len
        self.chunk_samples = int(chunk_samples)
        self.noise_power = noise_power
        self.duration_samples = int(round(duration_s * params.sample_rate))
        framer = LoRaFramer(params)
        self.n_data_symbols = framer.n_symbols_for_payload(payload_len)
        seq = as_seed_sequence(rng)
        schedule_rng = derive_rng(seq, 0)
        self._noise_rng = derive_rng(seq, 1)
        self._radios: Dict[int, LoRaRadio] = {
            cfg.node_id: LoRaRadio(
                params, node_id=cfg.node_id, rng=derive_rng(seq, 2, cfg.node_id)
            )
            for cfg in nodes
        }
        n = params.samples_per_symbol
        frame_samples = (params.preamble_len + self.n_data_symbols) * n
        arrivals: List[tuple[int, NodeConfig]] = []
        for cfg in nodes:
            if cfg.period_s is None:
                # Saturated: back-to-back frames separated by one guard
                # symbol (the beacon-slot overhead the MAC model charges).
                slot = frame_samples + n
                phase = int(schedule_rng.integers(0, slot))
                starts = range(phase, self.duration_samples, slot)
            else:
                period = max(int(round(cfg.period_s * params.sample_rate)), 1)
                phase = int(schedule_rng.integers(0, period))
                starts = range(phase, self.duration_samples, period)
            arrivals.extend(
                (start, cfg)
                for start in starts
                if start + frame_samples + n <= self.duration_samples
            )
        arrivals.sort(key=lambda item: (item[0], item[1].node_id))
        self.transmitted: List[TransmittedPacket] = [
            TransmittedPacket(
                node_id=cfg.node_id,
                payload=bytes(
                    schedule_rng.integers(0, 256, payload_len, dtype=np.uint8)
                ),
                start_sample=start,
                n_data_symbols=self.n_data_symbols,
                snr_db=cfg.snr_db,
            )
            for start, cfg in arrivals
        ]
        self._rendered: Dict[int, np.ndarray] = {}
        self._next_to_render = 0

    # ------------------------------------------------------------------
    def _render_upto(self, end_sample: int) -> None:
        """Render (in schedule order) every packet starting before ``end``.

        Rendering order is fixed by the schedule, not by chunk geometry,
        so per-radio random phase draws are reproducible for any chunk
        size.
        """
        while (
            self._next_to_render < len(self.transmitted)
            and self.transmitted[self._next_to_render].start_sample < end_sample
        ):
            packet = self.transmitted[self._next_to_render]
            radio = self._radios[packet.node_id]
            amplitude = float(np.sqrt(db_to_linear(packet.snr_db) * max(self.noise_power, 1e-30)))
            waveform, _, _ = radio.transmit_payload(packet.payload, amplitude=amplitude)
            self._rendered[self._next_to_render] = waveform
            self._next_to_render += 1

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the noisy stream chunk by chunk."""
        for a in range(0, self.duration_samples, self.chunk_samples):
            b = min(a + self.chunk_samples, self.duration_samples)
            self._render_upto(b)
            chunk = np.zeros(b - a, dtype=complex)
            for index, waveform in list(self._rendered.items()):
                start = self.transmitted[index].start_sample
                end = start + waveform.size
                if end <= a:
                    del self._rendered[index]  # fully behind the stream head
                    continue
                if start >= b:
                    continue
                lo, hi = max(start, a), min(end, b)
                chunk[lo - a : hi - a] += waveform[lo - start : hi - start]
            if self.noise_power > 0:
                chunk = awgn(chunk, self.noise_power, rng=self._noise_rng)
            yield chunk


class IqFileSource:
    """Replay a recorded IQ capture from disk in chunks.

    ``.npy`` files are loaded as saved; any other extension is read as raw
    interleaved complex64 (the common SDR capture format).
    """

    def __init__(
        self,
        params: LoRaParams,
        path: str,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> None:
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        self.params = params
        self.path = Path(path)
        self.chunk_samples = int(chunk_samples)
        if self.path.suffix == ".npy":
            data = np.load(self.path)
        else:
            data = np.fromfile(self.path, dtype=np.complex64)
        self.samples = np.asarray(data, dtype=complex).ravel()

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the capture chunk by chunk."""
        for a in range(0, self.samples.size, self.chunk_samples):
            yield self.samples[a : a + self.chunk_samples]
