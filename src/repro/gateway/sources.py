"""Continuous IQ sample sources for the streaming gateway.

Two producers of the chunked baseband stream a base station sees:

* :class:`SyntheticTrafficSource` -- renders a node population's traffic
  into one continuous noisy stream.  Arrivals follow the MAC simulator's
  model (:class:`repro.mac.NodeConfig`: periodic with ``period_s``, or
  saturated back-to-back when ``None``); each node keeps a persistent
  :class:`repro.hardware.LoRaRadio`, so its crystal offset is stable
  across packets exactly as in :class:`repro.mac.waveform_phy.WaveformPhy`.
  Ground truth (payload, start sample, node) is exposed for end-to-end
  verification.
* :class:`IqFileSource` -- replays a capture from disk (``.npy`` complex
  array, or raw interleaved complex64) in chunks, for decoding recorded
  traffic offline through the same pipeline.

Sources yield chunks of a configurable size; the gateway never sees more
than one chunk at a time, which is what makes the runtime streaming
rather than batch.

Two rendering modes share one scheduler and one waveform path:

* ``materialize=True`` (default) -- the whole schedule (payload bytes and
  start samples) is drawn up front and every node's radio is constructed
  eagerly, so ``source.transmitted`` is complete before the first chunk
  is pulled.  Memory scales with the population; right for tests and
  small benchmarks.
* ``materialize=False`` -- *streaming-windowed*: an event heap over the
  per-node frame schedules pops only the frames that overlap the chunk
  being rendered, radios exist only while their node is rendering (board
  state -- oscillator, timing, RNG stream position -- is suspended into a
  few-hundred-byte dormant record between frames), and finished waveforms
  are dropped as the stream head passes them.  Peak memory is
  O(concurrently-airborne frames), not O(population), which is what makes
  10^4-node capacity campaigns and soak runs possible.  The two modes are
  sample-for-sample identical for a fixed seed and chunk size (pinned by
  tests): phases are drawn per node in population order, payloads in
  global ``(start_sample, node_id)`` arrival order, and per-node radio
  streams are position-preserved across suspend/resume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.channel.noise import awgn
from repro.gateway.channelizer import upconvert_to_channel
from repro.gateway.telemetry import Telemetry
from repro.hardware.clock import TimingModel
from repro.hardware.oscillator import OscillatorModel
from repro.hardware.radio import LoRaRadio
from repro.mac.simulator import NodeConfig
from repro.phy.packet import LoRaFramer
from repro.phy.params import ChannelPlan, LoRaParams
from repro.utils import RngLike, as_seed_sequence, db_to_linear, derive_rng

#: Default chunk size in samples (~33 ms at 125 kHz).
DEFAULT_CHUNK_SAMPLES = 4096


class SampleSource(Protocol):
    """Anything that can feed the gateway a chunked IQ stream."""

    params: LoRaParams

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield consecutive complex-baseband chunks until exhausted."""
        ...


@dataclass(frozen=True)
class TransmittedPacket:
    """Ground truth for one synthesized uplink packet.

    ``start_sample`` is in *stream* units: narrowband samples for a
    single-channel source, wideband samples when the source renders onto a
    :class:`repro.phy.params.ChannelPlan`.  ``channel`` and
    ``spreading_factor`` identify the shard a multi-channel run should
    recover the packet on (``spreading_factor`` is ``None`` when the
    shared source params apply).
    """

    node_id: int
    payload: bytes
    start_sample: int
    n_data_symbols: int
    snr_db: float
    channel: int = 0
    spreading_factor: int | None = None

    def frame_samples(self, params: LoRaParams) -> int:
        """Nominal frame length in samples (preamble + data)."""
        return (params.preamble_len + self.n_data_symbols) * params.samples_per_symbol


@dataclass(frozen=True)
class _NodeSchedule:
    """One node's arithmetic-progression frame schedule, in stream units.

    ``tail`` is the fit bound the legacy scheduler charged past the start
    (frame plus one guard symbol, scaled to stream units), so a frame is
    scheduled only while ``start + tail <= duration_samples``.
    """

    index: int
    node_id: int
    snr_db: float
    channel: int
    spreading_factor: Optional[int]
    n_symbols: int
    first_start: int
    step: int
    tail: int


@dataclass
class _DormantRadio:
    """Suspended board state of one node between frames (streaming mode).

    Holds exactly what :class:`repro.hardware.LoRaRadio` cannot re-derive:
    the sampled hardware models and the position of the per-packet draw
    stream, so a resumed radio renders the node's next frame with the
    same draws the persistent radio would have used.
    """

    oscillator: OscillatorModel
    timing: TimingModel
    rng_state: Dict[str, object]


class _TrafficScheduler:
    """Event heap over the per-node schedules, popping frames in air order.

    Payload bytes are drawn *at pop time* from the shared schedule RNG.
    Pops happen in global ``(start_sample, node_id, population_index)``
    order -- exactly the order the materialized path sorts arrivals into
    before drawing payloads -- so lazily- and eagerly-driven schedules
    consume identical draw sequences and emit identical packets.
    """

    def __init__(
        self,
        schedules: List[_NodeSchedule],
        duration_samples: int,
        schedule_rng: np.random.Generator,
        payload_len: int,
        payload_fn: Optional[Callable[[int, int], bytes]],
    ) -> None:
        self._schedules = schedules
        self._duration = duration_samples
        self._rng = schedule_rng
        self._payload_len = payload_len
        self._payload_fn = payload_fn
        self._seq_by_node: Dict[int, int] = {}
        self.n_scheduled = 0
        self._heap: List[Tuple[int, int, int]] = []
        for sched in schedules:
            if sched.first_start + sched.tail <= duration_samples:
                heapq.heappush(
                    self._heap, (sched.first_start, sched.node_id, sched.index)
                )

    def _payload(self, node_id: int) -> bytes:
        """One packet's payload: the custom function, or the random draw."""
        if self._payload_fn is None:
            return bytes(
                self._rng.integers(0, 256, self._payload_len, dtype=np.uint8)
            )
        seq = self._seq_by_node.get(node_id, 0)
        self._seq_by_node[node_id] = seq + 1
        payload = self._payload_fn(node_id, seq)
        if len(payload) != self._payload_len:
            raise ValueError(
                f"payload_fn returned {len(payload)} bytes for node "
                f"{node_id}, expected payload_len={self._payload_len}"
            )
        return payload

    @property
    def exhausted(self) -> bool:
        """True once every fitting frame has been popped."""
        return not self._heap

    def pop_until(self, end_sample: int) -> Iterator[TransmittedPacket]:
        """Yield (in air order) every scheduled frame starting before ``end``."""
        while self._heap and self._heap[0][0] < end_sample:
            start, node_id, index = heapq.heappop(self._heap)
            sched = self._schedules[index]
            nxt = start + sched.step
            if nxt + sched.tail <= self._duration:
                heapq.heappush(self._heap, (nxt, node_id, index))
            self.n_scheduled += 1
            yield TransmittedPacket(
                node_id=node_id,
                payload=self._payload(node_id),
                start_sample=start,
                n_data_symbols=sched.n_symbols,
                snr_db=sched.snr_db,
                channel=sched.channel,
                spreading_factor=sched.spreading_factor,
            )


class SyntheticTrafficSource:
    """Continuous base-station stream synthesized from a node population.

    Parameters
    ----------
    params:
        Shared PHY configuration.
    nodes:
        Traffic/link configuration per node (``period_s=None`` means
        saturated: the node transmits back-to-back frames).  Payload
        geometry comes from ``payload_len``, which supersedes
        ``NodeConfig.payload_bits`` -- the streaming gateway decodes a
        fixed frame length, as the paper's deployments do.
    duration_s:
        Stream duration; packets that would not finish in time are not
        scheduled.
    payload_len:
        Application payload bytes per packet.
    chunk_samples:
        Samples per yielded chunk.
    noise_power:
        AWGN power (1.0 makes ``snr_db`` literal, as in
        :class:`repro.channel.CollisionChannel`); 0 disables noise for
        deterministic unit tests.  In multi-channel mode the noise is
        added at the wideband rate and per-node amplitudes are scaled so
        ``snr_db`` stays literal *per channel* after the analysis bank.
    plan:
        ``None`` (the default) renders the legacy single-channel
        narrowband stream.  With a :class:`repro.phy.params.ChannelPlan`
        the source becomes *wideband*: each node's frames are rendered at
        its own spreading factor (``NodeConfig.spreading_factor``, falling
        back to ``params``) and upconverted onto its
        ``NodeConfig.channel``, and chunks stream at
        ``plan.wideband_rate``.
    rng:
        Seed for everything: schedule phases, payload bytes, radio
        imperfections, and noise are all derived sub-streams, so one seed
        reproduces the stream bit-for-bit (for a fixed chunk size -- the
        rendered signal is chunk-invariant, but noise is drawn per chunk).
    payload_fn:
        Optional ``(node_id, packet_seq) -> bytes`` supplying each
        packet's payload instead of the random draw (``packet_seq``
        counts that node's packets from 0 in schedule order).  This is
        how the network-server integration stamps LoRaWAN-style
        devaddr/fcnt headers onto synthesized uplinks.  Returned bytes
        must be exactly ``payload_len`` long.  The default (``None``)
        leaves the legacy random-payload draw sequence untouched.
    materialize:
        ``True`` (default) drains the scheduler at construction --
        ``transmitted`` is complete immediately and every radio persists
        for the whole run, the legacy population-scale memory profile.
        ``False`` streams: frames are scheduled, rendered and discarded
        as the chunk cursor passes them, radios live only while rendering
        (suspended to :class:`_DormantRadio` records between frames), and
        memory stays O(concurrently-airborne frames).  The emitted stream
        is identical either way.
    record_ground_truth:
        Streaming mode only: ``False`` stops ``transmitted`` from
        accumulating per-packet truth rows (``packets_scheduled`` still
        counts), for soak runs where even metadata must stay bounded.
    max_active_nodes:
        Streaming-mode memory guard: hard cap on concurrently resident
        rendered frames.  Exceeding it raises ``RuntimeError`` instead of
        quietly growing -- a saturated mis-configuration (thousands of
        overlapping frames) fails fast rather than OOMing the host.
    telemetry:
        Optional :class:`repro.gateway.telemetry.Telemetry` registry;
        the source publishes ``source.active_frames`` (current resident
        rendered frames), ``source.active_peak`` (its high-water mark)
        and the ``source.packets`` counter into it.
    """

    def __init__(
        self,
        params: LoRaParams,
        nodes: List[NodeConfig],
        duration_s: float,
        payload_len: int = 8,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
        noise_power: float = 1.0,
        plan: ChannelPlan | None = None,
        rng: RngLike = None,
        payload_fn: Optional[Callable[[int, int], bytes]] = None,
        materialize: bool = True,
        record_ground_truth: bool = True,
        max_active_nodes: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        if max_active_nodes is not None and max_active_nodes < 1:
            raise ValueError(
                f"max_active_nodes must be positive, got {max_active_nodes}"
            )
        self.params = params
        self.plan = plan
        self.payload_len = payload_len
        self.payload_fn = payload_fn
        self.chunk_samples = int(chunk_samples)
        self.noise_power = noise_power
        self.materialize = materialize
        self._record_ground_truth = record_ground_truth
        self._max_active = max_active_nodes
        self._telemetry = telemetry
        framer = LoRaFramer(params)
        self.n_data_symbols = framer.n_symbols_for_payload(payload_len)
        seq = as_seed_sequence(rng)
        self._seed_seq = seq
        schedule_rng = derive_rng(seq, 0)
        self._noise_rng = derive_rng(seq, 1)
        if plan is None:
            for cfg in nodes:
                if cfg.channel != 0 or cfg.spreading_factor is not None:
                    raise ValueError(
                        "node channel/spreading_factor overrides require a "
                        f"ChannelPlan (node {cfg.node_id})"
                    )
            self.duration_samples = int(round(duration_s * params.sample_rate))
            schedules = self._schedules_single(params, nodes, schedule_rng)
        else:
            for cfg in nodes:
                plan.validate_channel(cfg.channel)
            self.duration_samples = int(round(duration_s * plan.wideband_rate))
            schedules = self._schedules_wideband(plan, nodes, schedule_rng)
        self._scheduler = _TrafficScheduler(
            schedules, self.duration_samples, schedule_rng, payload_len, payload_fn
        )
        #: Rendered frames currently overlapping the stream head, keyed by
        #: admission order: ``{seq: (start_sample, waveform)}``.
        self._rendered: Dict[int, Tuple[int, np.ndarray]] = {}
        self._render_seq = 0
        self._next_to_render = 0
        self._radios: Dict[int, LoRaRadio] = {}
        self._dormant: Dict[int, _DormantRadio] = {}
        #: High-water mark of concurrently resident rendered frames.
        self.active_peak = 0
        if materialize:
            self.transmitted: List[TransmittedPacket] = list(
                self._scheduler.pop_until(self.duration_samples)
            )
            for cfg in nodes:
                if cfg.node_id not in self._radios:
                    self._radios[cfg.node_id] = self._build_radio(cfg.node_id)
        else:
            self.transmitted = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedules_single(
        self,
        params: LoRaParams,
        nodes: List[NodeConfig],
        schedule_rng: np.random.Generator,
    ) -> List[_NodeSchedule]:
        """Legacy narrowband schedule; RNG draw order is frozen (see tests)."""
        self._node_params: Dict[int, LoRaParams] = {
            cfg.node_id: params for cfg in nodes
        }
        self._node_symbols: Dict[int, int] = {
            cfg.node_id: self.n_data_symbols for cfg in nodes
        }
        n = params.samples_per_symbol
        frame_samples = (params.preamble_len + self.n_data_symbols) * n
        schedules: List[_NodeSchedule] = []
        for index, cfg in enumerate(nodes):
            if cfg.period_s is None:
                # Saturated: back-to-back frames separated by one guard
                # symbol (the beacon-slot overhead the MAC model charges).
                step = frame_samples + n
                phase = int(schedule_rng.integers(0, step))
            else:
                step = max(int(round(cfg.period_s * params.sample_rate)), 1)
                phase = int(schedule_rng.integers(0, step))
            schedules.append(
                _NodeSchedule(
                    index=index,
                    node_id=cfg.node_id,
                    snr_db=cfg.snr_db,
                    channel=0,
                    spreading_factor=None,
                    n_symbols=self.n_data_symbols,
                    first_start=phase,
                    step=step,
                    tail=frame_samples + n,
                )
            )
        return schedules

    def _schedules_wideband(
        self,
        plan: ChannelPlan,
        nodes: List[NodeConfig],
        schedule_rng: np.random.Generator,
    ) -> List[_NodeSchedule]:
        """Multi-channel schedule: narrowband frames placed on the plan.

        Scheduling runs in narrowband units and scales by the oversample
        factor, so every start lands on the channelizer's decimation grid
        and the through-bank signal is a pure integer delay of the
        narrowband render.
        """
        m = plan.oversample_factor
        self._node_params = {}
        self._node_symbols = {}
        node_frames: Dict[int, int] = {}
        for cfg in nodes:
            sf = (
                cfg.spreading_factor
                if cfg.spreading_factor is not None
                else self.params.spreading_factor
            )
            node_params = plan.channel_params(sf, preamble_len=self.params.preamble_len)
            self._node_params[cfg.node_id] = node_params
            n_symbols = LoRaFramer(node_params).n_symbols_for_payload(self.payload_len)
            self._node_symbols[cfg.node_id] = n_symbols
            node_frames[cfg.node_id] = (
                node_params.preamble_len + n_symbols
            ) * node_params.samples_per_symbol
        schedules: List[_NodeSchedule] = []
        for index, cfg in enumerate(nodes):
            node_params = self._node_params[cfg.node_id]
            n = node_params.samples_per_symbol
            frame_nb = node_frames[cfg.node_id]
            if cfg.period_s is None:
                step_nb = frame_nb + n
                phase = int(schedule_rng.integers(0, step_nb))
            else:
                step_nb = max(int(round(cfg.period_s * node_params.sample_rate)), 1)
                phase = int(schedule_rng.integers(0, step_nb))
            schedules.append(
                _NodeSchedule(
                    index=index,
                    node_id=cfg.node_id,
                    snr_db=cfg.snr_db,
                    channel=cfg.channel,
                    spreading_factor=node_params.spreading_factor,
                    n_symbols=self._node_symbols[cfg.node_id],
                    first_start=phase * m,
                    step=step_nb * m,
                    tail=(frame_nb + n) * m,
                )
            )
        return schedules

    # ------------------------------------------------------------------
    # Radio lifecycle
    # ------------------------------------------------------------------
    def _build_radio(self, node_id: int) -> LoRaRadio:
        """A node's persistent radio, with its dedicated derived RNG stream."""
        return LoRaRadio(
            self._node_params[node_id],
            node_id=node_id,
            rng=derive_rng(self._seed_seq, 2, node_id),
        )

    def _acquire_radio(self, node_id: int) -> LoRaRadio:
        """The node's radio: persistent, resumed from dormancy, or fresh."""
        radio = self._radios.get(node_id)
        if radio is not None:
            return radio
        dormant = self._dormant.pop(node_id, None)
        if dormant is None:
            radio = self._build_radio(node_id)
        else:
            # ensure_rng cannot restore a saved bit-generator state; the
            # seed below is discarded the moment .state is assigned
            resumed = np.random.Generator(np.random.PCG64(0))  # noqa: R001
            resumed.bit_generator.state = dormant.rng_state
            radio = LoRaRadio(
                self._node_params[node_id],
                oscillator=dormant.oscillator,
                timing=dormant.timing,
                node_id=node_id,
                rng=resumed,
            )
        self._radios[node_id] = radio
        return radio

    def _suspend_radio(self, node_id: int) -> None:
        """Park a streaming-mode radio: keep only the resumable board state."""
        radio = self._radios.pop(node_id)
        self._dormant[node_id] = _DormantRadio(
            oscillator=radio.oscillator,
            timing=radio.timing,
            rng_state=radio.rng_state,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _waveform_for(self, packet: TransmittedPacket) -> np.ndarray:
        """Render one frame through the node's (possibly resumed) radio."""
        radio = self._acquire_radio(packet.node_id)
        snr_lin = db_to_linear(packet.snr_db) * max(self.noise_power, 1e-30)
        if self.plan is None:
            amplitude = float(np.sqrt(snr_lin))
            waveform, _, _ = radio.transmit_payload(
                packet.payload, amplitude=amplitude
            )
        else:
            # Per-channel noise after the analysis bank is roughly
            # noise_power / M, so scale the narrowband amplitude to
            # keep snr_db literal on the channelized stream.
            amplitude = float(np.sqrt(snr_lin / self.plan.oversample_factor))
            narrowband, _, _ = radio.transmit_payload(
                packet.payload, amplitude=amplitude
            )
            waveform = upconvert_to_channel(
                narrowband,
                self.plan,
                packet.channel,
                start_sample=packet.start_sample,
            )
        if not self.materialize:
            self._suspend_radio(packet.node_id)
        return waveform

    def _admit(self, packet: TransmittedPacket) -> None:
        """Render ``packet`` into the resident set, guarding its size."""
        if self._max_active is not None and len(self._rendered) >= self._max_active:
            raise RuntimeError(
                f"source active-set overflow: admitting a frame for node "
                f"{packet.node_id} would exceed max_active_nodes="
                f"{self._max_active} concurrently rendered frames "
                f"({len(self._rendered)} resident); the offered load is "
                "far past the configured concurrency bound"
            )
        self._rendered[self._render_seq] = (
            packet.start_sample,
            self._waveform_for(packet),
        )
        self._render_seq += 1
        active = len(self._rendered)
        if active > self.active_peak:
            self.active_peak = active
        if self._telemetry is not None:
            self._telemetry.counter("source.packets").inc()
            self._telemetry.gauge("source.active_frames").set(active)
            self._telemetry.gauge("source.active_peak").set(self.active_peak)

    def _render_upto(self, end_sample: int) -> None:
        """Render (in schedule order) every packet starting before ``end``.

        Rendering order is fixed by the schedule, not by chunk geometry,
        so per-radio random phase draws are reproducible for any chunk
        size.
        """
        if self.materialize:
            while (
                self._next_to_render < len(self.transmitted)
                and self.transmitted[self._next_to_render].start_sample < end_sample
            ):
                packet = self.transmitted[self._next_to_render]
                self._next_to_render += 1
                self._admit(packet)
        else:
            for packet in self._scheduler.pop_until(end_sample):
                if self._record_ground_truth:
                    self.transmitted.append(packet)
                self._admit(packet)

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the noisy stream chunk by chunk."""
        for a in range(0, self.duration_samples, self.chunk_samples):
            b = min(a + self.chunk_samples, self.duration_samples)
            # Retire frames fully behind the stream head *before* admitting
            # new ones, so the active set (and its guard) reflects live
            # overlap, not chunk-boundary bookkeeping.
            for key, (start, waveform) in list(self._rendered.items()):
                if start + waveform.size <= a:
                    del self._rendered[key]
            self._render_upto(b)
            if self._telemetry is not None:
                self._telemetry.gauge("source.active_frames").set(
                    len(self._rendered)
                )
            chunk = np.zeros(b - a, dtype=complex)
            for start, waveform in self._rendered.values():
                end = start + waveform.size
                if start >= b:
                    continue
                lo, hi = max(start, a), min(end, b)
                chunk[lo - a : hi - a] += waveform[lo - start : hi - start]
            if self.noise_power > 0:
                chunk = awgn(chunk, self.noise_power, rng=self._noise_rng)
            yield chunk

    # ------------------------------------------------------------------
    @property
    def packets_scheduled(self) -> int:
        """Frames scheduled so far (total offered load once exhausted)."""
        if self.materialize:
            return len(self.transmitted)
        return self._scheduler.n_scheduled

    def ground_truth(self) -> List[Dict[str, object]]:
        """Per-packet truth rows for the trace/forensics layer.

        ``start_sample`` is converted to the units the *detector* sees:
        narrowband samples (a wideband plan's starts divide exactly by
        its oversample factor, since scheduling runs on the decimation
        grid), so forensics can match detections to transmissions
        without knowing the channelizer geometry.  In streaming mode the
        rows cover only the frames scheduled so far -- complete once the
        stream has been consumed, empty before it starts.
        """
        m = 1 if self.plan is None else self.plan.oversample_factor
        rows: List[Dict[str, object]] = []
        for packet in self.transmitted:
            node_params = self._node_params[packet.node_id]
            rows.append(
                {
                    "node_id": packet.node_id,
                    "payload": packet.payload.hex(),
                    "start_sample": packet.start_sample // m,
                    "channel": packet.channel,
                    "spreading_factor": node_params.spreading_factor,
                    "frame_samples": packet.frame_samples(node_params),
                    "snr_db": packet.snr_db,
                }
            )
        return rows


class IqFileSource:
    """Replay a recorded IQ capture from disk in chunks.

    ``.npy`` files are loaded as saved; any other extension is read as raw
    interleaved complex64 (the common SDR capture format).
    """

    def __init__(
        self,
        params: LoRaParams,
        path: str,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> None:
        if chunk_samples <= 0:
            raise ValueError(f"chunk_samples must be positive, got {chunk_samples}")
        self.params = params
        self.path = Path(path)
        self.chunk_samples = int(chunk_samples)
        if self.path.suffix == ".npy":
            data = np.load(self.path)
        else:
            data = np.fromfile(self.path, dtype=np.complex64)
        self.samples = np.asarray(data, dtype=complex).ravel()

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the capture chunk by chunk."""
        for a in range(0, self.samples.size, self.chunk_samples):
            yield self.samples[a : a + self.chunk_samples]
