"""Polyphase channelizer: one wideband IQ stream -> per-channel basebands.

A real LoRaWAN base station listens to an 8-channel plan with one wideband
front end; the DSP that splits that stream into per-channel complex
basebands is a critically sampled analysis filterbank (Ghanaatian et al.,
"LoRa Digital Receiver Analysis and Implementation" build their multi-user
receivers the same way).  For ``M`` contiguous channels the bank is the
classic polyphase/FFT structure: one prototype low-pass of length
``M * taps_per_branch`` folded into ``M`` branches, one length-``M`` FFT
per output sample, an ``M``-fold decimation -- ``M`` times cheaper than
``M`` independent digital down-converters.

Channel ``k`` of a :class:`repro.phy.params.ChannelPlan` sits at baseband
offset ``(k - M//2) * BW`` (see :meth:`ChannelPlan.offset_hz`), which is
FFT bin ``(k - M//2) mod M`` of the bank.  The output of each channel is
a critically sampled (``Fs == BW``) complex baseband stream -- exactly
what the existing single-channel detection/decode pipeline consumes.

The module also provides the matching *synthesis* step
(:func:`upconvert_to_channel`): upsample a narrowband LoRa waveform by
``M`` and mix it onto its channel's offset, which is how the wideband
traffic synthesizer renders a node population onto the plan.

Streaming is first-class: :meth:`PolyphaseChannelizer.push` accepts
arbitrary-size chunks (state carries the filter history across chunk
boundaries, so outputs are bit-identical for any chunking) and
:meth:`PolyphaseChannelizer.flush` drains the filter tail at end of
stream.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.phy.params import ChannelPlan
from repro.profile import context as profile_context
from repro.profile.profiler import shape_bucket

#: Prototype filter taps per polyphase branch.  A chirp occupies its full
#: channel including the band edges, so what matters is the width of the
#: prototype's transition band: with 32 taps/branch a neighboring chirp's
#: edge leakage stays far enough below the calibrated detection threshold
#: that it cannot blind a shard's scanner with spurious detections (16
#: taps leaves ~-23 dB of edge leakage, which marginally crosses the
#: threshold at SNRs around 15 dB).
DEFAULT_TAPS_PER_BRANCH = 32


@lru_cache(maxsize=16)
def prototype_filter(n_channels: int, taps_per_branch: int = DEFAULT_TAPS_PER_BRANCH) -> np.ndarray:
    """Hamming-windowed-sinc low-pass prototype for an ``M``-channel bank.

    Cutoff is half a channel width (``Fs / 2M``), DC gain is normalized to
    one so the passband is unity and a channel's signal comes out of the
    bank at the amplitude it went in with.  The returned array is
    read-only (it is cached and shared).
    """
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    if taps_per_branch < 1:
        raise ValueError(f"taps_per_branch must be >= 1, got {taps_per_branch}")
    if n_channels == 1:
        # Degenerate single-channel bank: a pure pass-through.
        taps = np.zeros(1)
        taps[0] = 1.0
    else:
        length = n_channels * taps_per_branch
        n = np.arange(length, dtype=float) - (length - 1) / 2.0
        taps = np.sinc(n / n_channels) * np.hamming(length)
        taps = taps / taps.sum()
    taps.setflags(write=False)
    return taps


def analysis_noise_gain(n_channels: int, taps_per_branch: int = DEFAULT_TAPS_PER_BRANCH) -> float:
    """Noise power gain of one analysis branch: ``sum(h**2)``.

    White noise of variance ``sigma**2`` at the wideband input leaves each
    channel with variance ``sigma**2 * gain``; for a good prototype this
    is close to the ideal ``1 / n_channels`` (each channel sees its share
    of the wideband noise).
    """
    taps = prototype_filter(n_channels, taps_per_branch)
    return float(np.sum(taps * taps))


class PolyphaseChannelizer:
    """Streaming critically sampled analysis filterbank over a channel plan.

    Parameters
    ----------
    plan:
        The channel grid; must be critically stacked
        (``spacing == bandwidth``), which is what decimate-by-``M``
        channelization requires.  Stepped plans (e.g. US915's 200 kHz
        grid) need a fractional resampler in front and are rejected.
    taps_per_branch:
        Prototype filter length per polyphase branch; more taps sharpen
        the band edges at linear cost.

    Feed wideband chunks with :meth:`push`; each call returns an
    ``(n_channels, n_out)`` array of per-channel baseband samples (``n_out``
    varies with buffered remainder).  Call :meth:`flush` once at end of
    stream to drain the filter tail.
    """

    def __init__(
        self,
        plan: ChannelPlan,
        taps_per_branch: int = DEFAULT_TAPS_PER_BRANCH,
    ) -> None:
        if not plan.is_critically_stacked:
            raise ValueError(
                "PolyphaseChannelizer requires a critically stacked plan "
                f"(spacing == bandwidth); got spacing {plan.spacing_hz:.0f} Hz"
                f" over {plan.bandwidth:.0f} Hz channels"
            )
        self.plan = plan
        self.n_channels = plan.n_channels
        self.taps = prototype_filter(plan.n_channels, taps_per_branch)
        self._taps_flipped = self.taps[::-1].copy()
        # Window i spans buffered samples [i*M, i*M + L); priming the
        # buffer with L - M zeros makes output 0 correspond to the first
        # M input samples (constant group delay of (L-1)/2 wideband
        # samples, which the packet detector absorbs like any other
        # propagation delay).
        self._buffer = np.zeros(max(self.taps.size - self.n_channels, 0), dtype=complex)
        self._flushed = False
        # Channel c sits at offset (c - M//2) * BW = FFT bin (c - M//2) mod M.
        m = self.n_channels
        self._bin_of_channel = np.array([(c - m // 2) % m for c in range(m)])

    # ------------------------------------------------------------------
    @property
    def noise_gain(self) -> float:
        """Per-channel noise power gain (``sum(h**2)``) of this bank."""
        return float(np.sum(self.taps * self.taps))

    @property
    def group_delay_wideband(self) -> float:
        """Filter group delay in wideband samples."""
        return (self.taps.size - 1) / 2.0

    def narrowband_position(self, wideband_sample: int) -> float:
        """Map a wideband sample index into per-channel output positions.

        Accounts for the analysis filter's group delay; useful when
        relating ground-truth packet starts to channelized streams.
        """
        m = self.n_channels
        return (wideband_sample + self.group_delay_wideband - (m - 1)) / m

    # ------------------------------------------------------------------
    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Channelize the next wideband chunk.

        Returns an ``(n_channels, n_out)`` array; ``n_out`` is however many
        complete decimated outputs the buffered stream now affords (zero is
        possible for chunks smaller than the decimation factor).
        """
        if self._flushed:
            raise RuntimeError("channelizer already flushed")
        chunk = np.asarray(chunk, dtype=complex).ravel()
        m = self.n_channels
        if m == 1:
            return chunk.reshape(1, -1)
        buffer = np.concatenate([self._buffer, chunk])
        length = self.taps.size
        n_out = (buffer.size - (length - m)) // m
        if n_out <= 0:
            self._buffer = buffer
            return np.zeros((m, 0), dtype=complex)
        with profile_context.kernel(
            "channelizer.push",
            f"M{m}.C{shape_bucket(n_out)}",
            fft_count=n_out,
            fft_points=n_out * m,
            bytes_touched=16 * n_out * (length + 2 * m),
        ):
            # Window i = buffer[i*M : i*M + L]; u[i, p] = sum_t h[tM+p] x[end - (tM+p)]
            # is the reversed-window dot product folded into M branches.
            windows = np.lib.stride_tricks.sliding_window_view(buffer, length)[:: m][:n_out]
            weighted = windows[:, ::-1] * self.taps
            branches = weighted.reshape(n_out, -1, m).sum(axis=1)
            spectra = m * np.fft.ifft(branches, axis=1)  # column j = offset j*BW
            self._buffer = buffer[n_out * m :]
            return spectra[:, self._bin_of_channel].T.copy()

    def flush(self) -> np.ndarray:
        """Drain the filter tail; the channelizer accepts no further input."""
        if self._flushed:
            raise RuntimeError("channelizer already flushed")
        m = self.n_channels
        tail_in = max(self.taps.size - m, 0)
        out = self.push(np.zeros(tail_in, dtype=complex))
        self._flushed = True
        return out


def upconvert_to_channel(
    waveform: np.ndarray,
    plan: ChannelPlan,
    channel: int,
    start_sample: int = 0,
    taps_per_branch: int = DEFAULT_TAPS_PER_BRANCH,
    taps: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Place a narrowband channel waveform into the wideband stream.

    Upsamples ``waveform`` (critically sampled at ``plan.bandwidth``) by
    the plan's oversample factor with the same windowed-sinc prototype the
    analysis bank uses (scaled by ``M`` to preserve amplitude through
    zero-stuffing), then mixes it to ``plan.offset_hz(channel)``.  The mix
    phase is referenced to the *absolute* wideband index ``start_sample``,
    so rendering is chunk-invariant and phase-continuous no matter how the
    stream is later sliced.

    Returns the wideband waveform whose first sample belongs at absolute
    wideband index ``start_sample``; its length is
    ``M * len(waveform) + L - 1`` (the interpolation filter tail rings
    past the nominal end).
    """
    plan.validate_channel(channel)
    waveform = np.asarray(waveform, dtype=complex).ravel()
    m = plan.oversample_factor
    if m == 1:
        return waveform.copy()
    if taps is None:
        taps = prototype_filter(m, taps_per_branch)
    stuffed = np.zeros(waveform.size * m, dtype=complex)
    stuffed[::m] = waveform
    wide = np.convolve(stuffed, m * taps)
    offset_cycles = plan.offset_hz(channel) / plan.wideband_rate
    indices = start_sample + np.arange(wide.size)
    return wide * np.exp(2j * np.pi * offset_cycles * indices)
