"""Lightweight per-stage telemetry for the streaming gateway.

Three instrument kinds, all thread-safe and allocation-light so they can
sit on the hot path of every chunk and every decode job:

* :class:`Counter` -- monotonic event counts (samples ingested, packets
  detected, jobs dropped).
* :class:`Gauge` -- a sampled level with its running peak (queue depth).
* :class:`DurationHistogram` -- per-stage latencies with percentile
  queries (detect time per chunk, queue wait, decode time).  Memory is
  bounded: past ``max_samples`` recordings the histogram switches to
  reservoir sampling (count / total / max stay exact).

:class:`Telemetry` is the registry tying them together: stages create
instruments by name on demand, the runtime snapshots everything into a
plain dict, exports JSON-lines and Prometheus text exposition for
machines, and renders a human summary table for the CLI.  Registries
also support a portable ``state()`` / ``merge()`` round trip, which is
how per-job telemetry recorded inside process-executor workers flows
back into the parent's registry.

This module (plus ``repro/trace/``) owns the gateway's stopwatch:
everything else under ``gateway/`` times itself through :func:`clock`
(repro-lint rule R008 enforces this).
"""

from __future__ import annotations

import json
import random
import re
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

#: Percentiles reported for every duration histogram.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)

#: Raw samples a duration histogram keeps before reservoir sampling
#: kicks in (64k float64 = 512 KiB per instrument, worst case).
DEFAULT_HISTOGRAM_CAP = 65536


def clock() -> float:
    """The gateway's monotonic stopwatch (seconds, arbitrary epoch).

    Single timing authority for every duration measured under
    ``gateway/``: stages call this instead of ``time.perf_counter`` so
    the clock can be reasoned about (and faked) in one place.
    """
    return time.perf_counter()


def shard_label(channel: int, spreading_factor: int) -> str:
    """Metric-name prefix for one (channel, SF) shard: ``ch{c}.sf{s}``.

    The sharded gateway prefixes every per-shard instrument with this
    label (for example ``ch3.sf8.decode.crc_ok``), which keeps shard
    metrics greppable alongside the shared dotted ``stage.metric`` names.
    """
    return f"ch{channel}.sf{spreading_factor}"


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (``n`` must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of this instrument."""
        return {"metric": self.name, "type": "counter", "value": self.value}

    def state(self) -> Dict[str, Any]:
        """Portable state for cross-process merging."""
        return {"type": "counter", "value": self.value}

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another counter's state into this one (sums)."""
        self.inc(int(state["value"]))


class Gauge:
    """A sampled level that also remembers its peak."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)
            if value > self._peak:
                self._peak = float(value)

    @property
    def value(self) -> float:
        """Most recently recorded level."""
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        """Highest level ever recorded."""
        with self._lock:
            return self._peak

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of this instrument."""
        with self._lock:
            return {
                "metric": self.name,
                "type": "gauge",
                "value": self._value,
                "peak": self._peak,
            }

    def state(self) -> Dict[str, Any]:
        """Portable state for cross-process merging."""
        with self._lock:
            return {"type": "gauge", "value": self._value, "peak": self._peak}

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another gauge's state in: last value wins, peaks max."""
        with self._lock:
            self._value = float(state["value"])
            self._peak = max(self._peak, float(state.get("peak", 0.0)))


class DurationHistogram:
    """Recorded durations (seconds) with percentile queries.

    Keeps raw samples up to ``max_samples`` -- gateway runs are short
    enough that exact percentiles beat bucketing error -- then degrades
    gracefully to uniform reservoir sampling (Algorithm R), so memory is
    bounded however long the gateway streams.  Count, total and max are
    tracked exactly regardless; only percentiles become estimates past
    the cap.  The reservoir RNG is seeded from the metric name, keeping
    runs with a fixed stream reproducible.
    """

    def __init__(
        self, name: str, max_samples: int = DEFAULT_HISTOGRAM_CAP
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._offered = 0
        # Reservoir sampling needs cheap stdlib randomness, not the decode
        # seed tree; seeding from the metric name keeps it reproducible.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))  # noqa: R010
        self._lock = threading.Lock()

    def _offer(self, value: float) -> None:
        """Reservoir insert (Algorithm R); caller holds the lock."""
        self._offered += 1
        if len(self._values) < self.max_samples:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self._offered)
            if slot < self.max_samples:
                self._values[slot] = value

    def record(self, seconds: float) -> None:
        """Record one duration."""
        value = float(seconds)
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            self._offer(value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the wrapped block's wall time."""
        start = clock()
        try:
            yield
        finally:
            self.record(clock() - start)

    @property
    def count(self) -> int:
        """Number of recorded durations (exact, even past the cap)."""
        with self._lock:
            return self._count

    @property
    def n_retained(self) -> int:
        """Samples currently held (== count until the reservoir caps)."""
        with self._lock:
            return len(self._values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile duration, or 0.0 when empty.

        Exact below ``max_samples`` recordings, a uniform-reservoir
        estimate above.
        """
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.percentile(self._values, p))

    def mean(self) -> float:
        """Mean duration (exact), or 0.0 when empty."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def total(self) -> float:
        """Sum of all recorded durations (exact)."""
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state: count, mean, max and summary percentiles."""
        with self._lock:
            values = list(self._values)
            count, total, peak = self._count, self._total, self._max
        out: Dict[str, Any] = {
            "metric": self.name,
            "type": "histogram",
            "count": count,
            "mean_s": total / count if count else 0.0,
            "max_s": peak,
            "total_s": total,
        }
        for p in SUMMARY_PERCENTILES:
            key = f"p{p:g}_s"
            out[key] = float(np.percentile(values, p)) if values else 0.0
        return out

    def state(self) -> Dict[str, Any]:
        """Portable state for cross-process merging."""
        with self._lock:
            return {
                "type": "histogram",
                "values": list(self._values),
                "count": self._count,
                "total_s": self._total,
                "max_s": self._max,
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's state in.

        Exact scalars add exactly; the other side's (possibly sampled)
        values feed this reservoir one by one.  Below the cap on both
        sides the merge is lossless.
        """
        values = [float(v) for v in state.get("values", [])]
        with self._lock:
            self._count += int(state["count"])
            self._total += float(state["total_s"])
            self._max = max(self._max, float(state.get("max_s", 0.0)))
            for value in values:
                self._offer(value)


#: Instrument classes by the ``type`` tag used in portable state dicts.
_STATE_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": DurationHistogram,
}


class Telemetry:
    """Registry of named instruments shared by all gateway stages.

    Instrument names are dotted ``stage.metric`` strings (for example
    ``detect.chunk_s`` or ``dispatch.dropped``); creation is idempotent,
    so stages do not coordinate beyond agreeing on names.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"telemetry metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        instrument = self._get(name, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        instrument = self._get(name, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str) -> DurationHistogram:
        """The duration histogram named ``name``, created on first use."""
        instrument = self._get(name, DurationHistogram)
        assert isinstance(instrument, DurationHistogram)
        return instrument

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into the histogram named ``name``."""
        with self.histogram(name).time():
            yield

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Dict[str, Any]]:
        """Portable (picklable, JSON-able) state of every instrument.

        The worker side of the process executor ships this back with
        each decode outcome; :meth:`merge` folds it into the parent.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.state() for inst in instruments}

    def merge(
        self, state: Dict[str, Dict[str, Any]], prefix: str = ""
    ) -> None:
        """Fold a :meth:`state` dict from another registry into this one.

        Counters and histogram scalars add exactly, so serial and
        process executors agree on every total.

        ``prefix`` namespaces every merged instrument (for example
        ``"gw1."``), which is how the network server absorbs N gateways'
        registries without their identically-named shard metrics
        colliding: ``gw1.ch3.sf8.decode.crc_ok`` and
        ``gw2.ch3.sf8.decode.crc_ok`` stay distinct and export with
        ``gateway="1"`` / ``gateway="2"`` labels.
        """
        for name, inst_state in state.items():
            kind = _STATE_KINDS.get(inst_state.get("type", ""))
            if kind is None:
                raise ValueError(
                    f"unknown instrument type in state for {name!r}: "
                    f"{inst_state.get('type')!r}"
                )
            self._get(prefix + name, kind).merge_state(inst_state)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments' states, keyed by metric name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.snapshot() for inst in instruments}

    def jsonl(self) -> str:
        """One JSON object per line per instrument (machine export)."""
        rows = [
            json.dumps(state, sort_keys=True)
            for _, state in sorted(self.snapshot().items())
        ]
        return "\n".join(rows) + ("\n" if rows else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`jsonl` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.jsonl())

    def prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Dotted names map to sanitized metric families with shard parts
        extracted as labels: ``ch3.sf8.decode.crc_ok`` becomes
        ``repro_decode_crc_ok_total{channel="3",sf="8"}``.  Counters get
        ``_total``; gauges export the level plus a ``_peak`` family;
        duration histograms export as summaries in seconds (quantiles
        from :data:`SUMMARY_PERCENTILES`, the observed max as
        ``quantile="1"``, plus ``_count`` and ``_sum``).
        """
        families: Dict[str, Tuple[str, List[str]]] = {}

        def sample(
            family: str,
            prom_type: str,
            labels: Dict[str, str],
            value: float,
        ) -> None:
            kind, lines = families.setdefault(family, (prom_type, []))
            if kind != prom_type:
                raise ValueError(
                    f"metric family {family!r} exported as both "
                    f"{kind} and {prom_type}"
                )
            rendered = ",".join(
                f'{key}="{labels[key]}"' for key in sorted(labels)
            )
            label_part = f"{{{rendered}}}" if rendered else ""
            lines.append(f"{family}{label_part} {value:g}")

        for name, state in sorted(self.snapshot().items()):
            base, labels = _prometheus_name(name)
            if state["type"] == "counter":
                sample(f"{base}_total", "counter", labels, state["value"])
            elif state["type"] == "gauge":
                sample(base, "gauge", labels, state["value"])
                sample(f"{base}_peak", "gauge", labels, state["peak"])
            else:
                family = _seconds_family(base)
                for p in SUMMARY_PERCENTILES:
                    quantile = {"quantile": f"{p / 100.0:g}", **labels}
                    sample(family, "summary", quantile, state[f"p{p:g}_s"])
                # The exact observed max is the phi=1 quantile.
                sample(
                    family,
                    "summary",
                    {"quantile": "1", **labels},
                    state["max_s"],
                )
                sample(f"{family}_count", "summary", labels, state["count"])
                sample(f"{family}_sum", "summary", labels, state["total_s"])
        out: List[str] = []
        typed: set = set()
        for family in sorted(families):
            prom_type, lines = families[family]
            # _count/_sum belong to their summary family's TYPE line.
            root = re.sub(r"_(count|sum)$", "", family)
            if prom_type == "summary" and root in families:
                family_type_key = root
            else:
                family_type_key = family
            if family_type_key not in typed:
                typed.add(family_type_key)
                out.append(f"# TYPE {family_type_key} {prom_type}")
            out.extend(lines)
        return "\n".join(out) + ("\n" if out else "")

    def write_prometheus(self, path: str) -> None:
        """Write :meth:`prometheus` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.prometheus())

    def summary(self) -> str:
        """Human-readable table of every instrument."""
        states = sorted(self.snapshot().items())
        if not states:
            return "(no telemetry recorded)"
        lines = []
        width = max(len(name) for name, _ in states)
        for name, state in states:
            label = name.ljust(width)
            if state["type"] == "counter":
                lines.append(f"{label}  {state['value']}")
            elif state["type"] == "gauge":
                lines.append(
                    f"{label}  {state['value']:g} (peak {state['peak']:g})"
                )
            else:
                lines.append(
                    f"{label}  n={state['count']}"
                    f"  p50={1e3 * state['p50_s']:.2f}ms"
                    f"  p95={1e3 * state['p95_s']:.2f}ms"
                    f"  max={1e3 * state['max_s']:.2f}ms"
                )
        return "\n".join(lines)


_SHARD_PART = re.compile(r"(ch|sf|gw)(\d+)$")
_SHARD_LABELS = {"ch": "channel", "sf": "sf", "gw": "gateway"}


def _prometheus_name(name: str) -> Tuple[str, Dict[str, str]]:
    """Map a dotted instrument name to (family base, labels).

    ``ch{c}`` / ``sf{s}`` / ``gw{g}`` dotted parts become ``channel`` /
    ``sf`` / ``gateway`` labels; the remaining parts join with
    underscores under the ``repro_`` namespace, sanitized to the
    Prometheus charset.
    """
    labels: Dict[str, str] = {}
    rest: List[str] = []
    for part in name.split("."):
        match = _SHARD_PART.match(part)
        if match is not None and match.group(0) == part:
            labels[_SHARD_LABELS[match.group(1)]] = match.group(2)
        else:
            rest.append(re.sub(r"[^a-zA-Z0-9_]", "_", part))
    base = "_".join(part for part in rest if part) or "metric"
    if not re.match(r"[a-zA-Z_]", base):
        base = f"_{base}"
    return f"repro_{base}", labels


def _seconds_family(base: str) -> str:
    """Duration-family name: strip the ``_s`` suffix, append ``_seconds``."""
    if base.endswith("_s"):
        base = base[: -len("_s")]
    return f"{base}_seconds"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{sample-name: value}``.

    The inverse of :meth:`Telemetry.prometheus` for round-trip tests and
    quick scripting; keys keep their label part verbatim
    (``repro_decode_crc_ok_total{channel="3",sf="8"}``).
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed exposition line: {line!r}")
        samples[key] = float(value)
    return samples
