"""Lightweight per-stage telemetry for the streaming gateway.

Three instrument kinds, all thread-safe and allocation-light so they can
sit on the hot path of every chunk and every decode job:

* :class:`Counter` -- monotonic event counts (samples ingested, packets
  detected, jobs dropped).
* :class:`Gauge` -- a sampled level with its running peak (queue depth).
* :class:`DurationHistogram` -- per-stage latencies with percentile
  queries (detect time per chunk, queue wait, decode time).

:class:`Telemetry` is the registry tying them together: stages create
instruments by name on demand, the runtime snapshots everything into a
plain dict, exports JSON-lines for machines, and renders a human summary
table for the CLI.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

import numpy as np

#: Percentiles reported for every duration histogram.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def shard_label(channel: int, spreading_factor: int) -> str:
    """Metric-name prefix for one (channel, SF) shard: ``ch{c}.sf{s}``.

    The sharded gateway prefixes every per-shard instrument with this
    label (for example ``ch3.sf8.decode.crc_ok``), which keeps shard
    metrics greppable alongside the shared dotted ``stage.metric`` names.
    """
    return f"ch{channel}.sf{spreading_factor}"


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (``n`` must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of this instrument."""
        return {"metric": self.name, "type": "counter", "value": self.value}


class Gauge:
    """A sampled level that also remembers its peak."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)
            if value > self._peak:
                self._peak = float(value)

    @property
    def value(self) -> float:
        """Most recently recorded level."""
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        """Highest level ever recorded."""
        with self._lock:
            return self._peak

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of this instrument."""
        with self._lock:
            return {
                "metric": self.name,
                "type": "gauge",
                "value": self._value,
                "peak": self._peak,
            }


class DurationHistogram:
    """Recorded durations (seconds) with percentile queries.

    Stores raw samples; gateway runs are short enough (thousands of
    packets) that exact percentiles beat bucketing error, and the memory
    is a few float64 per event.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one duration."""
        with self._lock:
            self._values.append(float(seconds))

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording the wrapped block's wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)

    @property
    def count(self) -> int:
        """Number of recorded durations."""
        with self._lock:
            return len(self._values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile duration, or 0.0 when empty."""
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.percentile(self._values, p))

    def mean(self) -> float:
        """Mean duration, or 0.0 when empty."""
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.mean(self._values))

    def total(self) -> float:
        """Sum of all recorded durations."""
        with self._lock:
            return float(np.sum(self._values)) if self._values else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state: count, mean, max and summary percentiles."""
        with self._lock:
            values = list(self._values)
        out: Dict[str, Any] = {
            "metric": self.name,
            "type": "histogram",
            "count": len(values),
            "mean_s": float(np.mean(values)) if values else 0.0,
            "max_s": float(np.max(values)) if values else 0.0,
            "total_s": float(np.sum(values)) if values else 0.0,
        }
        for p in SUMMARY_PERCENTILES:
            key = f"p{p:g}_s"
            out[key] = float(np.percentile(values, p)) if values else 0.0
        return out


class Telemetry:
    """Registry of named instruments shared by all gateway stages.

    Instrument names are dotted ``stage.metric`` strings (for example
    ``detect.chunk_s`` or ``dispatch.dropped``); creation is idempotent,
    so stages do not coordinate beyond agreeing on names.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"telemetry metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        instrument = self._get(name, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        instrument = self._get(name, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str) -> DurationHistogram:
        """The duration histogram named ``name``, created on first use."""
        instrument = self._get(name, DurationHistogram)
        assert isinstance(instrument, DurationHistogram)
        return instrument

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into the histogram named ``name``."""
        with self.histogram(name).time():
            yield

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments' states, keyed by metric name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.snapshot() for inst in instruments}

    def jsonl(self) -> str:
        """One JSON object per line per instrument (machine export)."""
        rows = [
            json.dumps(state, sort_keys=True)
            for _, state in sorted(self.snapshot().items())
        ]
        return "\n".join(rows) + ("\n" if rows else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`jsonl` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.jsonl())

    def summary(self) -> str:
        """Human-readable table of every instrument."""
        states = sorted(self.snapshot().items())
        if not states:
            return "(no telemetry recorded)"
        lines = []
        width = max(len(name) for name, _ in states)
        for name, state in states:
            label = name.ljust(width)
            if state["type"] == "counter":
                lines.append(f"{label}  {state['value']}")
            elif state["type"] == "gauge":
                lines.append(
                    f"{label}  {state['value']:g} (peak {state['peak']:g})"
                )
            else:
                lines.append(
                    f"{label}  n={state['count']}"
                    f"  p50={1e3 * state['p50_s']:.2f}ms"
                    f"  p95={1e3 * state['p95_s']:.2f}ms"
                    f"  max={1e3 * state['max_s']:.2f}ms"
                )
        return "\n".join(lines)
