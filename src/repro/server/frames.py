"""Uplink/downlink frame records exchanged between gateways and the server.

The network server never sees IQ samples: gateways decode frames and
forward per-packet records upstream.  :class:`UplinkFrame` is that
record -- one gateway's reception of one device uplink, identified by
``(device_addr, fcnt)`` exactly as LoRaWAN network servers deduplicate.
:class:`DownlinkCommand` travels the other way: the ADR loop's
LinkADRReq-style data-rate/power assignment for one device.

The repo's waveform pipeline carries opaque payload bytes, so the bridge
between the two worlds is a tiny header convention:
:func:`encode_uplink_payload` packs ``device_addr`` and ``fcnt`` into the
first four payload bytes (little-endian u16 each) and
:func:`decode_uplink_payload` recovers them -- which is how a real
:class:`repro.gateway.Gateway` run feeds the server
(:func:`uplinks_from_report` / :func:`uplink_from_outcome`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.gateway.runtime import GatewayReport
from repro.gateway.workers import DecodeOutcome

#: The uplink frame counter is transmitted truncated to 16 bits
#: (LoRaWAN 1.0.x FCntUp); the session layer re-extends it to 32 bits.
FCNT_PERIOD = 1 << 16

#: Bytes of payload the ``(device_addr, fcnt)`` header occupies.
UPLINK_HEADER_LEN = 4


@dataclass(frozen=True)
class UplinkFrame:
    """One gateway's reception of one device uplink.

    Parameters
    ----------
    gateway_id:
        Which gateway heard the frame.
    device_addr:
        The transmitting device (the MAC simulator's ``node_id``).
    fcnt:
        Uplink frame counter as transmitted -- truncated modulo
        :data:`FCNT_PERIOD`; sessions re-extend it.
    snr_db:
        Link quality of *this* reception (differs per gateway; the
        deduplicator keeps the best copy and the ADR loop smooths it).
    received_s:
        Reception timestamp in stream/simulation time (seconds); drives
        the dedup window's watermark, so it must be monotone per gateway.
    payload:
        Application payload bytes (may embed the header; see
        :func:`encode_uplink_payload`).
    channel, spreading_factor:
        The shard that decoded the frame, when known.
    seq:
        Per-gateway monotone arrival sequence number -- the final
        deterministic tie-break for merging and best-copy selection.
    """

    gateway_id: int
    device_addr: int
    fcnt: int
    snr_db: float
    received_s: float
    payload: bytes = b""
    channel: int = 0
    spreading_factor: Optional[int] = None
    seq: int = 0

    def __post_init__(self) -> None:
        if self.gateway_id < 0:
            raise ValueError(f"gateway_id must be >= 0, got {self.gateway_id}")
        if not 0 <= self.device_addr < FCNT_PERIOD:
            raise ValueError(
                f"device_addr must be 0..{FCNT_PERIOD - 1}, got {self.device_addr}"
            )
        if not 0 <= self.fcnt < FCNT_PERIOD:
            raise ValueError(
                f"fcnt must be 0..{FCNT_PERIOD - 1} (as transmitted), "
                f"got {self.fcnt}"
            )

    @property
    def key(self) -> Tuple[int, int]:
        """The LoRaWAN dedup identity: ``(device_addr, fcnt)``."""
        return (self.device_addr, self.fcnt)


@dataclass(frozen=True)
class DownlinkCommand:
    """One ADR assignment for one device (LinkADRReq emulation)."""

    device_addr: int
    spreading_factor: int
    tx_power_dbm: float = 14.0
    issued_s: float = 0.0
    reason: str = "adr"

    def __post_init__(self) -> None:
        if not 7 <= self.spreading_factor <= 12:
            raise ValueError(
                f"spreading_factor must be 7..12, got {self.spreading_factor}"
            )


def encode_uplink_payload(
    device_addr: int, fcnt: int, payload_len: int = UPLINK_HEADER_LEN
) -> bytes:
    """Pack ``(device_addr, fcnt)`` into the first four payload bytes.

    ``fcnt`` is truncated modulo :data:`FCNT_PERIOD` exactly as the air
    interface truncates it; remaining bytes (past the header) are zero
    filler so any gateway ``payload_len`` >= 4 works.
    """
    if payload_len < UPLINK_HEADER_LEN:
        raise ValueError(
            f"payload_len must be >= {UPLINK_HEADER_LEN}, got {payload_len}"
        )
    if not 0 <= device_addr < FCNT_PERIOD:
        raise ValueError(
            f"device_addr must be 0..{FCNT_PERIOD - 1}, got {device_addr}"
        )
    fcnt16 = fcnt % FCNT_PERIOD
    header = bytes(
        (
            device_addr & 0xFF,
            (device_addr >> 8) & 0xFF,
            fcnt16 & 0xFF,
            (fcnt16 >> 8) & 0xFF,
        )
    )
    return header + bytes(payload_len - UPLINK_HEADER_LEN)


def decode_uplink_payload(payload: bytes) -> Tuple[int, int]:
    """Recover ``(device_addr, fcnt)`` from an encoded payload."""
    if len(payload) < UPLINK_HEADER_LEN:
        raise ValueError(
            f"payload too short for uplink header: {len(payload)} bytes"
        )
    device_addr = payload[0] | (payload[1] << 8)
    fcnt = payload[2] | (payload[3] << 8)
    return device_addr, fcnt


def uplink_from_outcome(
    outcome: DecodeOutcome,
    gateway_id: int,
    sample_rate: float,
    snr_db: Optional[float] = None,
    seq: int = 0,
) -> Optional[UplinkFrame]:
    """Convert one CRC-verified decode outcome into an uplink record.

    Returns ``None`` for failed/undecodable outcomes.  ``sample_rate``
    is the *narrowband* rate the outcome's ``start_sample`` counts in
    (``params.sample_rate`` of the decoding shard).  When the gateway
    has no calibrated SNR estimator, ``snr_db=None`` falls back to the
    detection score -- a monotone link-quality proxy that preserves
    best-gateway ordering even though its unit is not dB.
    """
    if not outcome.crc_ok or outcome.payload is None:
        return None
    if len(outcome.payload) < UPLINK_HEADER_LEN:
        return None
    device_addr, fcnt = decode_uplink_payload(outcome.payload)
    return UplinkFrame(
        gateway_id=gateway_id,
        device_addr=device_addr,
        fcnt=fcnt,
        snr_db=float(snr_db if snr_db is not None else outcome.detection_score),
        received_s=outcome.start_sample / sample_rate,
        payload=outcome.payload,
        channel=outcome.channel,
        spreading_factor=outcome.spreading_factor,
        seq=seq,
    )


def uplinks_from_report(
    report: GatewayReport,
    gateway_id: int,
    sample_rate: float,
    snr_db: Optional[Callable[[DecodeOutcome], float]] = None,
) -> List[UplinkFrame]:
    """Every uplink record one gateway's run produced, in stream order.

    The post-hoc counterpart of the live ``on_outcome`` hook: replays a
    finished :class:`repro.gateway.GatewayReport` into the records a
    server ingests.  ``snr_db`` optionally maps each outcome to a
    calibrated SNR estimate.
    """
    frames: List[UplinkFrame] = []
    for outcome in sorted(report.outcomes, key=lambda o: (o.start_sample, o.job_id)):
        frame = uplink_from_outcome(
            outcome,
            gateway_id,
            sample_rate,
            snr_db=None if snr_db is None else snr_db(outcome),
            seq=len(frames),
        )
        if frame is not None:
            frames.append(frame)
    return frames
