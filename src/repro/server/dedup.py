"""Multi-gateway frame deduplication with a bounded sliding window.

Every gateway in range hears (and independently decodes) the same device
uplink, so the server receives up to one copy per gateway for each
``(device_addr, fcnt)``.  :class:`FrameDeduplicator` collapses those
copies into exactly one :class:`DeliveredFrame`, keeping the *best* copy
(highest SNR; ties broken deterministically) -- LoRaWAN network servers
do the same to pick the downlink gateway and to feed ADR with the best
observed link margin.

Timing uses a **watermark**: the deduplicator trusts each gateway feed to
be time-ordered, tracks the latest ``received_s`` seen across all feeds,
and emits a pending frame once the watermark has advanced ``window_s``
past the frame's first reception -- at that point no in-order feed can
still produce a copy.  This makes emission a pure function of the merged
frame sequence, so the serial, thread and asyncio ingest paths produce
byte-identical deliveries (the E2E determinism guarantee).

Memory is bounded by construction: at most ``max_pending`` in-window
entries (oldest evicted first, counted) and a ``done_window`` ring of
already-emitted keys so straggler copies arriving after emission are
suppressed and counted rather than re-delivered.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gateway.telemetry import Telemetry
from repro.server.frames import UplinkFrame

#: Default dedup window: how far the watermark must pass a frame's first
#: reception before it is emitted.  Real gateway backhauls jitter by tens
#: of milliseconds; simulation feeds are near-synchronous.
DEFAULT_WINDOW_S = 0.2


@dataclass(frozen=True)
class DeliveredFrame:
    """One deduplicated uplink: the best copy plus reception diversity."""

    frame: UplinkFrame
    n_copies: int
    gateways: Tuple[int, ...]
    first_seen_s: float

    @property
    def best_gateway(self) -> int:
        """The gateway whose copy won best-SNR selection."""
        return self.frame.gateway_id


@dataclass
class _Pending:
    """In-window aggregation state for one ``(device_addr, fcnt)`` key."""

    best: UplinkFrame
    first_seen_s: float
    n_copies: int = 1
    gateways: Set[int] = field(default_factory=set)


def _better(a: UplinkFrame, b: UplinkFrame) -> bool:
    """True when copy ``a`` beats copy ``b``.

    Higher SNR wins; ties fall to the lower gateway id, then the lower
    per-gateway sequence number -- total and deterministic, so best-copy
    selection never depends on arrival interleaving.
    """
    return (-a.snr_db, a.gateway_id, a.seq) < (-b.snr_db, b.gateway_id, b.seq)


class FrameDeduplicator:
    """Collapse per-gateway uplink copies into single deliveries.

    Not internally locked: :class:`repro.server.NetworkServer` serializes
    access under its own lock (mirroring how the gateway's pool guards
    its aggregation state).

    Parameters
    ----------
    window_s:
        Watermark lag before a pending frame matures (see module docs).
    max_pending:
        Hard cap on concurrently pending keys; the oldest entry is
        force-emitted when a new key would exceed it (counted as
        ``dedup.evicted``).
    done_window:
        How many recently-emitted keys to remember for late-duplicate
        suppression.
    telemetry:
        Optional registry receiving ``dedup.*`` counters/gauges.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        max_pending: int = 4096,
        done_window: int = 8192,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if done_window < 0:
            raise ValueError(f"done_window must be >= 0, got {done_window}")
        self.window_s = window_s
        self.max_pending = max_pending
        self.done_window = done_window
        self._telemetry = telemetry
        self._pending: Dict[Tuple[int, int], _Pending] = {}
        self._done: OrderedDict[Tuple[int, int], None] = OrderedDict()
        self._watermark_s = float("-inf")

    # ------------------------------------------------------------------
    @property
    def watermark_s(self) -> float:
        """Latest reception time observed across all feeds."""
        return self._watermark_s

    @property
    def n_pending(self) -> int:
        """Keys currently aggregating inside the window."""
        return len(self._pending)

    @property
    def n_done(self) -> int:
        """Emitted keys currently remembered for late-dup suppression."""
        return len(self._done)

    def _count(self, metric: str, n: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(f"dedup.{metric}").inc(n)

    def _mark_done(self, key: Tuple[int, int]) -> None:
        if self.done_window == 0:
            return
        self._done[key] = None
        self._done.move_to_end(key)
        while len(self._done) > self.done_window:
            self._done.popitem(last=False)

    def _emit(self, key: Tuple[int, int]) -> DeliveredFrame:
        entry = self._pending.pop(key)
        self._mark_done(key)
        self._count("delivered")
        if self._telemetry is not None:
            self._telemetry.gauge("dedup.pending").set(len(self._pending))
        return DeliveredFrame(
            frame=entry.best,
            n_copies=entry.n_copies,
            gateways=tuple(sorted(entry.gateways)),
            first_seen_s=entry.first_seen_s,
        )

    def _mature(self) -> List[DeliveredFrame]:
        """Emit every pending entry the watermark has passed.

        Emission order is sorted by ``(first_seen_s, device_addr, fcnt)``
        -- a deterministic function of frame content, never of dict
        insertion interleaving.
        """
        ripe = sorted(
            (
                key
                for key, entry in self._pending.items()
                if entry.first_seen_s + self.window_s <= self._watermark_s
            ),
            key=lambda key: (self._pending[key].first_seen_s, key),
        )
        return [self._emit(key) for key in ripe]

    # ------------------------------------------------------------------
    def offer(self, frame: UplinkFrame) -> List[DeliveredFrame]:
        """Ingest one gateway copy; return any frames that matured.

        The returned list holds frames whose window *closed* because this
        frame advanced the watermark -- usually earlier frames, not this
        one.  Call :meth:`flush` at end of stream for the remainder.
        """
        key = frame.key
        if key in self._done:
            self._count("late_duplicates")
            self._count("duplicates")
        elif key in self._pending:
            entry = self._pending[key]
            entry.n_copies += 1
            entry.gateways.add(frame.gateway_id)
            entry.first_seen_s = min(entry.first_seen_s, frame.received_s)
            if _better(frame, entry.best):
                entry.best = frame
            self._count("duplicates")
        else:
            if len(self._pending) >= self.max_pending:
                # Force-emit the oldest entry to stay bounded.
                oldest = min(
                    self._pending,
                    key=lambda k: (self._pending[k].first_seen_s, k),
                )
                self._count("evicted")
                forced = [self._emit(oldest)]
            else:
                forced = []
            self._pending[key] = _Pending(
                best=frame,
                first_seen_s=frame.received_s,
                gateways={frame.gateway_id},
            )
            if self._telemetry is not None:
                self._telemetry.gauge("dedup.pending").set(len(self._pending))
            if frame.received_s > self._watermark_s:
                self._watermark_s = frame.received_s
            return forced + self._mature()
        if frame.received_s > self._watermark_s:
            self._watermark_s = frame.received_s
        return self._mature()

    def flush(self) -> List[DeliveredFrame]:
        """Emit everything still pending (end of stream)."""
        ripe = sorted(
            self._pending,
            key=lambda key: (self._pending[key].first_seen_s, key),
        )
        return [self._emit(key) for key in ripe]
