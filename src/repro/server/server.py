"""The network server: dedup + sessions + ADR behind one lock.

:class:`NetworkServer` is the deployment-wide coordinator sitting above
N gateways.  Per uplink record it (1) deduplicates gateway copies
(:class:`repro.server.dedup.FrameDeduplicator`), (2) validates the frame
counter against the device's session
(:class:`repro.server.sessions.DeviceRegistry`) and (3) feeds accepted
uplinks' SNR into the ADR loop
(:class:`repro.server.adr.AdrEngine`), queueing any resulting downlink
commands for the caller to drain.

Thread safety: every public method serializes on one server lock -- the
sub-components are deliberately lock-free and documented as externally
synchronized, mirroring the decode pool's single-aggregation-lock
design.  That makes the server safe to drive from the threaded ingest
path and keeps the race-witness story simple (one lock to hold, one set
of shared attributes to watch).

Telemetry reuses the gateway registry unchanged, so
``Telemetry.prometheus()`` exposition works on server metrics too; the
server's own instruments live under ``ingest.* / dedup.* / session.* /
adr.*`` and absorbed per-gateway registries are namespaced ``gw{g}.*``
(exported with a ``gateway`` label).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cascade import DECODE_TIERS
from repro.gateway.telemetry import Telemetry
from repro.mac.adr import DEFAULT_ASSIGNMENT_MARGIN_DB
from repro.server.adr import AdrEngine
from repro.server.dedup import DEFAULT_WINDOW_S, DeliveredFrame, FrameDeduplicator
from repro.server.frames import DownlinkCommand, UplinkFrame
from repro.server.sessions import (
    DEFAULT_MAX_FCNT_GAP,
    DEFAULT_RESET_THRESHOLD,
    DeviceRegistry,
)

#: Ingest-queue overflow policies (enforced by the async/threaded feeds).
DROP_POLICIES = ("newest", "oldest", "block")


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one :class:`NetworkServer` deployment.

    ``queue_capacity`` / ``drop_policy`` govern the per-gateway ingest
    feeds (bounded queues; ``"newest"`` drops the arriving frame when
    full, ``"oldest"`` drops the queue head to admit it, ``"block"``
    applies backpressure to the producer).  ``max_delivered_log`` caps
    the in-memory delivered-uplink log (``None`` keeps everything --
    fine for tests, unsuitable for soak runs).  ``decode_tier`` records
    which decode pipeline the IQ gateways fronting this server run
    (``"full"``, ``"cascade"`` or ``"fast"``; see
    :mod:`repro.core.cascade`) -- the protocol scenario itself decodes
    at packet level, so the field is deployment metadata the server
    validates and reports, not a switch it acts on.
    """

    dedup_window_s: float = DEFAULT_WINDOW_S
    max_pending: int = 4096
    done_window: int = 8192
    max_devices: int = 10000
    max_fcnt_gap: int = DEFAULT_MAX_FCNT_GAP
    reset_threshold: int = DEFAULT_RESET_THRESHOLD
    adr_margin_db: float = DEFAULT_ASSIGNMENT_MARGIN_DB
    adr_hysteresis_db: float = 3.0
    adr_smoothing: float = 0.25
    adr_initial_sf: int = 12
    adjust_power: bool = True
    queue_capacity: int = 64
    drop_policy: str = "newest"
    decode_tier: str = "full"
    max_delivered_log: Optional[int] = None

    def __post_init__(self) -> None:
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, "
                f"got {self.drop_policy!r}"
            )
        if self.decode_tier not in DECODE_TIERS:
            raise ValueError(
                f"decode_tier must be one of {DECODE_TIERS}, "
                f"got {self.decode_tier!r}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not 7 <= self.adr_initial_sf <= 12:
            raise ValueError(
                f"adr_initial_sf must be 7..12, got {self.adr_initial_sf}"
            )


@dataclass(frozen=True)
class DeliveredUplink:
    """One application-visible uplink: dedup result + session verdict."""

    delivered: DeliveredFrame
    verdict: str
    fcnt32: int

    @property
    def frame(self) -> UplinkFrame:
        """The winning (best-SNR) gateway copy."""
        return self.delivered.frame


@dataclass(frozen=True)
class ServerReport:
    """End-of-run summary returned by :meth:`NetworkServer.finish`."""

    n_ingested: int
    n_delivered: int
    n_duplicates: int
    n_replays: int
    n_resets: int
    n_devices: int
    delivered: Tuple[DeliveredUplink, ...]
    final_sf: Dict[int, int]
    sessions_jsonl: str


class NetworkServer:
    """Deployment-wide uplink processing; see module docs."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.telemetry = telemetry or Telemetry()
        self._lock = threading.Lock()
        self._dedup = FrameDeduplicator(
            window_s=self.config.dedup_window_s,
            max_pending=self.config.max_pending,
            done_window=self.config.done_window,
            telemetry=self.telemetry,
        )
        self._registry = DeviceRegistry(
            max_devices=self.config.max_devices,
            max_fcnt_gap=self.config.max_fcnt_gap,
            reset_threshold=self.config.reset_threshold,
            adr_margin_db=self.config.adr_margin_db,
            adr_hysteresis_db=self.config.adr_hysteresis_db,
            adr_smoothing=self.config.adr_smoothing,
            adr_initial_sf=self.config.adr_initial_sf,
        )
        self._adr = AdrEngine(
            adjust_power=self.config.adjust_power, telemetry=self.telemetry
        )
        self._commands: List[DownlinkCommand] = []
        self._delivered: List[DeliveredUplink] = []
        self._n_ingested = 0
        self._n_delivered = 0
        self._finished = False

    # ------------------------------------------------------------------
    # Uplink path
    # ------------------------------------------------------------------
    def _process_delivered(
        self, delivered: DeliveredFrame
    ) -> DeliveredUplink:
        """Session + ADR handling for one deduplicated frame.

        Caller holds ``self._lock``.
        """
        session, verdict = self._registry.observe(delivered)
        self.telemetry.counter(f"session.{verdict}").inc()
        self.telemetry.gauge("session.devices").set(len(self._registry))
        uplink = DeliveredUplink(
            delivered=delivered, verdict=verdict, fcnt32=session.fcnt32
        )
        if verdict != "replay":
            self._n_delivered += 1
            self._commands.extend(
                self._adr.observe(
                    session, delivered.frame.snr_db, delivered.frame.received_s
                )
            )
            self._delivered.append(uplink)
            cap = self.config.max_delivered_log
            if cap is not None and len(self._delivered) > cap:
                del self._delivered[: len(self._delivered) - cap]
        return uplink

    def handle_uplink(self, frame: UplinkFrame) -> List[DeliveredUplink]:
        """Ingest one gateway copy; return uplinks whose window closed.

        The returned uplinks include replays (verdict ``"replay"``) so
        callers can observe rejections; only accepted/reset uplinks are
        logged and fed to ADR.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError("server already finished")
            self._n_ingested += 1
            self.telemetry.counter("ingest.frames").inc()
            self.telemetry.counter(f"gw{frame.gateway_id}.ingest.frames").inc()
            return [
                self._process_delivered(d) for d in self._dedup.offer(frame)
            ]

    def drain_commands(self) -> List[DownlinkCommand]:
        """Take (and clear) all queued downlink commands."""
        with self._lock:
            commands = self._commands
            self._commands = []
            return commands

    # ------------------------------------------------------------------
    # Gateway telemetry absorption
    # ------------------------------------------------------------------
    def absorb_gateway_telemetry(
        self, gateway_id: int, state: Dict[str, Dict[str, Any]]
    ) -> None:
        """Fold one gateway's ``Telemetry.state()`` into the server's.

        Instruments are namespaced ``gw{gateway_id}.`` so N gateways'
        identically-named metrics stay distinct (and pick up a
        ``gateway`` label in Prometheus exposition).
        """
        self.telemetry.merge(state, prefix=f"gw{gateway_id}.")

    def record_feed_drop(self, gateway_id: int, n: int = 1) -> None:
        """Account frames an ingest feed dropped under overflow."""
        self.telemetry.counter(f"gw{gateway_id}.ingest.dropped").inc(n)

    def record_queue_depth(self, depth: int) -> None:
        """Sample the merged ingest-queue depth."""
        self.telemetry.gauge("ingest.queue_depth").set(depth)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def n_ingested(self) -> int:
        """Gateway copies ingested so far."""
        with self._lock:
            return self._n_ingested

    def delivered(self) -> List[DeliveredUplink]:
        """Accepted uplinks logged so far (bounded by config)."""
        with self._lock:
            return list(self._delivered)

    def session_state(self, device_addr: int) -> Optional[Dict[str, Any]]:
        """Snapshot of one device's session, or ``None`` if unknown."""
        with self._lock:
            session = self._registry.get(device_addr)
            return None if session is None else session.to_state()

    def restore_sessions(self, text: str) -> int:
        """Load a JSONL session snapshot; returns sessions loaded."""
        with self._lock:
            return self._registry.restore_jsonl(text)

    def finish(self) -> ServerReport:
        """Flush the dedup window and summarize the run.

        Idempotent-unsafe by design: further :meth:`handle_uplink` calls
        raise, since the dedup window is gone.
        """
        with self._lock:
            if not self._finished:
                self._finished = True
                for delivered in self._dedup.flush():
                    self._process_delivered(delivered)
            sessions = self._registry.sessions()
            return ServerReport(
                n_ingested=self._n_ingested,
                n_delivered=self._n_delivered,
                n_duplicates=self.telemetry.counter("dedup.duplicates").value,
                n_replays=sum(s.n_replays for s in sessions),
                n_resets=sum(s.n_resets for s in sessions),
                n_devices=len(sessions),
                delivered=tuple(self._delivered),
                final_sf={
                    s.device_addr: s.adr.spreading_factor for s in sessions
                },
                sessions_jsonl=self._registry.snapshot_jsonl(),
            )
