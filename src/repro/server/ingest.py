"""Multi-gateway ingestion plane: bounded feeds, deterministic merge.

Three transports deliver gateway uplink streams into one
:class:`repro.server.NetworkServer`, all funneling through the same
**deterministic k-way merge**: frames are consumed in ascending
``(received_s, gateway_id, seq)`` order regardless of how producer
threads or coroutines interleave.  Because the deduplicator's output is
a pure function of that merged order, the serial, threaded and asyncio
paths produce byte-identical deliveries -- the subsystem's determinism
guarantee, checked end-to-end by the scenario tests.

* :func:`merge_streams` + :func:`run_streams` -- synchronous reference
  path over plain iterables (heap-based merge).
* :class:`ThreadedIngestor` -- one bounded :class:`queue.Queue` per
  gateway fed by producer threads, drained by a merging consumer that
  only commits the globally-smallest head.  Queue bounds provide real
  backpressure (``block``) or accounted dropping (``newest`` /
  ``oldest``).
* :class:`GatewayFeed` / :class:`IngestPlane` -- the asyncio equivalent:
  per-gateway ``asyncio.Queue`` feeds with the same overflow policies,
  merged by an async consumer awaiting every open feed's head.

The merge requires each per-gateway feed to be time-ordered (gateways
emit decode outcomes in stream order), which is also what the dedup
watermark assumes.
"""

from __future__ import annotations

import asyncio
import heapq
import queue
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.server.frames import UplinkFrame
from repro.server.server import NetworkServer

#: Sentinel closing a feed (queues can't carry ``None`` ambiguity-free).
_CLOSE = object()


def _order_key(frame: UplinkFrame) -> Tuple[float, int, int]:
    """The global ingestion order: time, then gateway, then arrival."""
    return (frame.received_s, frame.gateway_id, frame.seq)


# ----------------------------------------------------------------------
# Serial reference path
# ----------------------------------------------------------------------
def merge_streams(
    streams: Sequence[Iterable[UplinkFrame]],
) -> Iterable[UplinkFrame]:
    """Merge per-gateway time-ordered streams into the global order."""
    return heapq.merge(*streams, key=_order_key)


def run_streams(
    server: NetworkServer, streams: Sequence[Iterable[UplinkFrame]]
) -> int:
    """Feed merged streams through the server; returns frames ingested."""
    n = 0
    for frame in merge_streams(streams):
        server.handle_uplink(frame)
        n += 1
    return n


# ----------------------------------------------------------------------
# Threaded path
# ----------------------------------------------------------------------
class ThreadedIngestor:
    """Producer threads -> bounded per-gateway queues -> merging drain.

    One producer thread per gateway stream pushes into that gateway's
    bounded queue; :meth:`run` (the caller's thread) pops exclusively in
    merge order, never committing a frame while another open feed might
    still yield an earlier one.  Overflow follows the server config's
    ``drop_policy``; drops are accounted via
    :meth:`NetworkServer.record_feed_drop`.
    """

    def __init__(
        self,
        server: NetworkServer,
        streams: Dict[int, Iterable[UplinkFrame]],
    ) -> None:
        self.server = server
        capacity = server.config.queue_capacity
        self.drop_policy = server.config.drop_policy
        self._streams = dict(streams)
        self._queues: Dict[int, "queue.Queue"] = {
            gw: queue.Queue(maxsize=capacity) for gw in streams
        }
        # Producer threads and the draining thread share the counters.
        self._lock = threading.Lock()
        self.n_ingested = 0
        self.n_dropped = 0

    def _produce(self, gateway_id: int) -> None:
        q = self._queues[gateway_id]
        for frame in self._streams[gateway_id]:
            if self.drop_policy == "block":
                q.put(frame)
                continue
            try:
                q.put_nowait(frame)
            except queue.Full:
                if self.drop_policy == "oldest":
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        pass
                    else:
                        self.server.record_feed_drop(gateway_id)
                        with self._lock:
                            self.n_dropped += 1
                    q.put(frame)
                else:  # "newest": shed the arriving frame
                    self.server.record_feed_drop(gateway_id)
                    with self._lock:
                        self.n_dropped += 1
        q.put(_CLOSE)

    def run(self) -> int:
        """Start producers, drain to the server; returns frames ingested.

        Blocks until every stream is exhausted.
        """
        producers = [
            threading.Thread(
                target=self._produce,
                args=(gw,),
                name=f"ingest-gw{gw}",
                daemon=True,
            )
            for gw in sorted(self._queues)
        ]
        for thread in producers:
            thread.start()
        # heads[gw] is the gateway's next frame; a feed with no entry is
        # exhausted.  Block on one queue at a time: every open feed must
        # show its head before the global minimum can be committed.
        heads: Dict[int, UplinkFrame] = {}
        open_feeds = set(self._queues)
        while open_feeds or heads:
            for gw in sorted(open_feeds):
                if gw in heads:
                    continue
                item = self._queues[gw].get()
                if item is _CLOSE:
                    open_feeds.discard(gw)
                else:
                    heads[gw] = item
            if not heads:
                break
            gw_min = min(heads, key=lambda gw: _order_key(heads[gw]))
            self.server.record_queue_depth(
                sum(q.qsize() for q in self._queues.values())
            )
            self.server.handle_uplink(heads.pop(gw_min))
            with self._lock:
                self.n_ingested += 1
        for thread in producers:
            thread.join()
        with self._lock:
            return self.n_ingested


# ----------------------------------------------------------------------
# Asyncio path
# ----------------------------------------------------------------------
class GatewayFeed:
    """One gateway's bounded async uplink queue.

    Producers (gateway adapters) call :meth:`publish` per decoded frame
    and :meth:`close` at end of stream; :class:`IngestPlane` consumes.
    ``drop_policy`` mirrors the threaded path: ``"block"`` awaits space
    (true backpressure), ``"newest"`` sheds the arriving frame,
    ``"oldest"`` sheds the queue head.
    """

    def __init__(
        self,
        gateway_id: int,
        capacity: int = 64,
        drop_policy: str = "newest",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.gateway_id = gateway_id
        self.capacity = capacity
        self.drop_policy = drop_policy
        # The queue itself is unbounded so the close sentinel can always
        # enter; frame capacity is enforced explicitly (a semaphore for
        # the blocking policy, a level check for the shedding ones).
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._slots = asyncio.Semaphore(capacity)
        self._buffered = 0
        self.n_published = 0
        self.n_dropped = 0
        self._closed = False

    async def publish(self, frame: UplinkFrame) -> bool:
        """Offer one frame; returns False when overflow shed it."""
        if self._closed:
            raise RuntimeError(f"feed gw{self.gateway_id} already closed")
        self.n_published += 1
        if self.drop_policy == "block":
            await self._slots.acquire()  # backpressure: wait for a slot
        elif self._buffered >= self.capacity:
            if self.drop_policy == "oldest":
                self._queue.get_nowait()
                self._buffered -= 1
                self.n_dropped += 1
            else:  # "newest": shed the arriving frame
                self.n_dropped += 1
                return False
        self._queue.put_nowait(frame)
        self._buffered += 1
        return True

    async def close(self) -> None:
        """Signal end of stream (idempotent; never blocks)."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(_CLOSE)

    async def get(self) -> object:
        """Next frame or the close sentinel (consumer side)."""
        item = await self._queue.get()
        if item is not _CLOSE:
            self._buffered -= 1
            if self.drop_policy == "block":
                self._slots.release()
        return item

    def qsize(self) -> int:
        """Frames currently buffered."""
        return self._buffered


class IngestPlane:
    """Async consumer merging N :class:`GatewayFeed` s into the server."""

    def __init__(self, server: NetworkServer, feeds: Sequence[GatewayFeed]) -> None:
        ids = [feed.gateway_id for feed in feeds]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate gateway ids in feeds: {ids}")
        self.server = server
        self.feeds = {feed.gateway_id: feed for feed in feeds}
        self.n_ingested = 0

    async def run(self) -> int:
        """Drain all feeds in deterministic merge order; see module docs."""
        heads: Dict[int, UplinkFrame] = {}
        open_feeds = set(self.feeds)
        while open_feeds or heads:
            for gw in sorted(open_feeds):
                if gw in heads:
                    continue
                item = await self.feeds[gw].get()
                if item is _CLOSE:
                    open_feeds.discard(gw)
                else:
                    assert isinstance(item, UplinkFrame)
                    heads[gw] = item
            if not heads:
                break
            gw_min = min(heads, key=lambda gw: _order_key(heads[gw]))
            self.server.record_queue_depth(
                sum(feed.qsize() for feed in self.feeds.values())
            )
            self.server.handle_uplink(heads.pop(gw_min))
            self.n_ingested += 1
        for gw in sorted(self.feeds):
            if self.feeds[gw].n_dropped:
                self.server.record_feed_drop(gw, self.feeds[gw].n_dropped)
        return self.n_ingested


async def ingest_async(
    server: NetworkServer,
    streams: Dict[int, Iterable[UplinkFrame]],
    capacity: Optional[int] = None,
    drop_policy: Optional[str] = None,
) -> int:
    """Convenience: pump iterables through feeds + plane concurrently."""
    feeds = [
        GatewayFeed(
            gw,
            capacity=capacity or server.config.queue_capacity,
            drop_policy=drop_policy or server.config.drop_policy,
        )
        for gw in sorted(streams)
    ]
    plane = IngestPlane(server, feeds)

    async def pump(feed: GatewayFeed) -> None:
        for frame in streams[feed.gateway_id]:
            await feed.publish(frame)
        await feed.close()

    results = await asyncio.gather(
        plane.run(), *(pump(feed) for feed in feeds)
    )
    return int(results[0])


def run_streams_threaded(
    server: NetworkServer, streams: Dict[int, Iterable[UplinkFrame]]
) -> int:
    """Synchronous facade over :class:`ThreadedIngestor`."""
    return ThreadedIngestor(server, streams).run()


def run_streams_async(
    server: NetworkServer, streams: Dict[int, Iterable[UplinkFrame]]
) -> int:
    """Synchronous facade over :func:`ingest_async` (fresh event loop)."""
    return asyncio.run(ingest_async(server, streams))


__all__ = [
    "GatewayFeed",
    "IngestPlane",
    "ThreadedIngestor",
    "ingest_async",
    "merge_streams",
    "run_streams",
    "run_streams_async",
    "run_streams_threaded",
]
