"""Join/session state: the server's per-device registry.

Each device the deployment hears gets a :class:`DeviceSession` tracking
its extended 32-bit frame counter, reception history and a dedicated
:class:`repro.mac.adr.AdrController`.  The registry implements the
LoRaWAN 1.0.x counter rules the deduplicator cannot (it only sees 16-bit
values within a short time window):

* **extension** -- the transmitted ``FCntUp`` is the low 16 bits of a
  32-bit counter; the server picks the smallest 32-bit candidate ahead of
  the last validated value, which carries sessions across the 2^16
  rollover;
* **replay rejection** -- a candidate more than ``max_fcnt_gap`` ahead is
  treated as a stale/replayed frame and rejected;
* **reset detection** -- rejected frames whose raw counter is tiny
  (``<= reset_threshold``) are instead interpreted as a device reboot
  (counters restart at 0 after a rejoin) and the session restarts.

Sessions round-trip through JSONL (:meth:`DeviceRegistry.snapshot_jsonl`
/ :meth:`DeviceRegistry.restore_jsonl`), so a server can be stopped and
resumed without re-learning counters or ADR state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.mac.adr import DEFAULT_ASSIGNMENT_MARGIN_DB, AdrController
from repro.server.dedup import DeliveredFrame
from repro.server.frames import FCNT_PERIOD

#: Largest forward jump in the extended counter the server accepts
#: (LoRaWAN's MAX_FCNT_GAP).
DEFAULT_MAX_FCNT_GAP = 16384

#: Raw (16-bit) counters at or below this are read as a device reset
#: when they fail gap validation.
DEFAULT_RESET_THRESHOLD = 16


@dataclass
class DeviceSession:
    """Mutable per-device server state."""

    device_addr: int
    adr: AdrController
    fcnt32: int = -1
    n_uplinks: int = 0
    n_replays: int = 0
    n_resets: int = 0
    last_seen_s: float = 0.0
    last_snr_db: float = 0.0
    gateways_seen: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Frame-counter validation
    # ------------------------------------------------------------------
    def classify_fcnt(
        self, fcnt16: int, max_fcnt_gap: int, reset_threshold: int
    ) -> Tuple[str, int]:
        """Validate a raw counter against session state.

        Returns ``(verdict, fcnt32)`` where verdict is ``"accepted"``
        (fcnt32 is the new extended counter), ``"reset"`` (device
        rebooted; fcnt32 restarts at the raw value) or ``"replay"``
        (frame rejected; fcnt32 is the unchanged session counter).
        """
        if self.fcnt32 < 0:
            return "accepted", fcnt16
        candidate = (self.fcnt32 & ~(FCNT_PERIOD - 1)) | fcnt16
        if candidate <= self.fcnt32:
            candidate += FCNT_PERIOD
        if candidate - self.fcnt32 <= max_fcnt_gap:
            return "accepted", candidate
        if fcnt16 <= reset_threshold:
            return "reset", fcnt16
        return "replay", self.fcnt32

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """JSON-ready session state (including the ADR controller's)."""
        return {
            "device_addr": self.device_addr,
            "fcnt32": self.fcnt32,
            "n_uplinks": self.n_uplinks,
            "n_replays": self.n_replays,
            "n_resets": self.n_resets,
            "last_seen_s": self.last_seen_s,
            "last_snr_db": self.last_snr_db,
            "gateways_seen": {str(g): n for g, n in self.gateways_seen.items()},
            "adr": {
                "margin_db": self.adr.margin_db,
                "hysteresis_db": self.adr.hysteresis_db,
                "smoothing": self.adr.smoothing,
                "initial_sf": self.adr.initial_sf,
                "snr_ewma_db": self.adr.smoothed_snr_db,
                "current_sf": self.adr.spreading_factor,
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "DeviceSession":
        """Rebuild a session from :meth:`to_state` output."""
        adr_state = state["adr"]
        adr = AdrController(
            margin_db=float(adr_state["margin_db"]),
            hysteresis_db=float(adr_state["hysteresis_db"]),
            smoothing=float(adr_state["smoothing"]),
            initial_sf=int(adr_state["initial_sf"]),
        )
        # Restore the controller mid-flight: __post_init__ reset the
        # assignment to initial_sf, so re-apply the snapshot's dynamics.
        adr._snr_ewma_db = (
            None
            if adr_state["snr_ewma_db"] is None
            else float(adr_state["snr_ewma_db"])
        )
        adr._current_sf = int(adr_state["current_sf"])
        return cls(
            device_addr=int(state["device_addr"]),
            adr=adr,
            fcnt32=int(state["fcnt32"]),
            n_uplinks=int(state["n_uplinks"]),
            n_replays=int(state["n_replays"]),
            n_resets=int(state["n_resets"]),
            last_seen_s=float(state["last_seen_s"]),
            last_snr_db=float(state["last_snr_db"]),
            gateways_seen={
                int(g): int(n) for g, n in state["gateways_seen"].items()
            },
        )


class DeviceRegistry:
    """Auto-joining device table with bounded size and JSONL persistence.

    Not internally locked: :class:`repro.server.NetworkServer` serializes
    access under its own lock.

    Parameters
    ----------
    max_devices:
        Hard cap on tracked sessions; when a new device joins past the
        cap, the session idle longest (smallest ``last_seen_s``, ties to
        the lowest address) is evicted -- counted by the server.
    max_fcnt_gap / reset_threshold:
        Counter-validation knobs (see module docs).
    adr_margin_db / adr_hysteresis_db / adr_smoothing / adr_initial_sf:
        Passed to each new session's :class:`AdrController`.
    """

    def __init__(
        self,
        max_devices: int = 10000,
        max_fcnt_gap: int = DEFAULT_MAX_FCNT_GAP,
        reset_threshold: int = DEFAULT_RESET_THRESHOLD,
        adr_margin_db: float = DEFAULT_ASSIGNMENT_MARGIN_DB,
        adr_hysteresis_db: float = 3.0,
        adr_smoothing: float = 0.25,
        adr_initial_sf: int = 12,
    ) -> None:
        if max_devices < 1:
            raise ValueError(f"max_devices must be >= 1, got {max_devices}")
        self.max_devices = max_devices
        self.max_fcnt_gap = max_fcnt_gap
        self.reset_threshold = reset_threshold
        self.adr_margin_db = adr_margin_db
        self.adr_hysteresis_db = adr_hysteresis_db
        self.adr_smoothing = adr_smoothing
        self.adr_initial_sf = adr_initial_sf
        self._sessions: Dict[int, DeviceSession] = {}
        self.n_joins = 0
        self.n_evicted = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, device_addr: int) -> Optional[DeviceSession]:
        """The session for ``device_addr``, or ``None`` if unknown."""
        return self._sessions.get(device_addr)

    def sessions(self) -> List[DeviceSession]:
        """All sessions, ordered by device address."""
        return [self._sessions[addr] for addr in sorted(self._sessions)]

    def _new_session(self, device_addr: int) -> DeviceSession:
        if len(self._sessions) >= self.max_devices:
            idle = min(
                self._sessions.values(),
                key=lambda s: (s.last_seen_s, s.device_addr),
            )
            del self._sessions[idle.device_addr]
            self.n_evicted += 1
        session = DeviceSession(
            device_addr=device_addr,
            adr=AdrController(
                margin_db=self.adr_margin_db,
                hysteresis_db=self.adr_hysteresis_db,
                smoothing=self.adr_smoothing,
                initial_sf=self.adr_initial_sf,
            ),
        )
        self._sessions[device_addr] = session
        self.n_joins += 1
        return session

    # ------------------------------------------------------------------
    def observe(self, delivered: DeliveredFrame) -> Tuple[DeviceSession, str]:
        """Account one deduplicated uplink; returns (session, verdict).

        Verdicts: ``"accepted"`` / ``"reset"`` (both update the session's
        counters and reception stats) or ``"replay"`` (only the replay
        count moves; callers should drop the frame and must not feed it
        to ADR).
        """
        frame = delivered.frame
        session = self._sessions.get(frame.device_addr)
        if session is None:
            session = self._new_session(frame.device_addr)
        verdict, fcnt32 = session.classify_fcnt(
            frame.fcnt, self.max_fcnt_gap, self.reset_threshold
        )
        if verdict == "replay":
            session.n_replays += 1
            return session, verdict
        if verdict == "reset":
            session.n_resets += 1
        session.fcnt32 = fcnt32
        session.n_uplinks += 1
        session.last_seen_s = frame.received_s
        session.last_snr_db = frame.snr_db
        for gateway_id in delivered.gateways:
            session.gateways_seen[gateway_id] = (
                session.gateways_seen.get(gateway_id, 0) + 1
            )
        return session, verdict

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot_jsonl(self) -> str:
        """One JSON object per session, ordered by device address."""
        rows = [
            json.dumps(session.to_state(), sort_keys=True)
            for session in self.sessions()
        ]
        return "\n".join(rows) + ("\n" if rows else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`snapshot_jsonl` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.snapshot_jsonl())

    def restore_jsonl(self, text: str) -> int:
        """Load sessions from snapshot text; returns how many loaded.

        Restored sessions replace same-address entries; the registry cap
        applies (idle sessions evict as usual).
        """
        n_loaded = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            session = DeviceSession.from_state(json.loads(line))
            if (
                session.device_addr not in self._sessions
                and len(self._sessions) >= self.max_devices
            ):
                idle = min(
                    self._sessions.values(),
                    key=lambda s: (s.last_seen_s, s.device_addr),
                )
                del self._sessions[idle.device_addr]
                self.n_evicted += 1
            self._sessions[session.device_addr] = session
            n_loaded += 1
        return n_loaded

    def read_jsonl(self, path: str) -> int:
        """Load sessions from a snapshot file; returns how many loaded."""
        with open(path) as handle:
            return self.restore_jsonl(handle.read())
