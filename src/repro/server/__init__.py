"""LoRaWAN-style network server above N gateways.

The deployment-wide layer the paper's Sec. 3 rate-adaptation story
implies: gateways decode, the network server coordinates.  Uplink
records from every gateway in range flow through bounded ingest feeds
(:mod:`repro.server.ingest`), get deduplicated to the best-SNR copy
(:mod:`repro.server.dedup`), validated against per-device sessions
(:mod:`repro.server.sessions`) and fed to the ADR control loop
(:mod:`repro.server.adr`), which emits the downlink data-rate commands
the MAC simulator's nodes consume -- closing the loop end to end
(:mod:`repro.server.scenario`).

Quickstart::

    from repro.server import run_scenario

    report = run_scenario(n_gateways=2, duration_s=120.0)
    print(report.final_sf)           # per-device converged SFs
    print(report.moved_faster())     # high-SNR devices sped up
"""

from repro.server.adr import AdrEngine, power_for_headroom
from repro.server.dedup import DeliveredFrame, FrameDeduplicator
from repro.server.frames import (
    FCNT_PERIOD,
    DownlinkCommand,
    UplinkFrame,
    decode_uplink_payload,
    encode_uplink_payload,
    uplink_from_outcome,
    uplinks_from_report,
)
from repro.server.ingest import (
    GatewayFeed,
    IngestPlane,
    ThreadedIngestor,
    ingest_async,
    merge_streams,
    run_streams,
    run_streams_async,
    run_streams_threaded,
)
from repro.server.scenario import (
    GatewayProfile,
    MultiGatewayPhy,
    ScenarioReport,
    build_scenario,
    overlapping_profiles,
    run_closed_loop,
    run_scenario,
)
from repro.server.server import (
    DeliveredUplink,
    NetworkServer,
    ServerConfig,
    ServerReport,
)
from repro.server.sessions import DeviceRegistry, DeviceSession

__all__ = [
    "AdrEngine",
    "DeliveredFrame",
    "DeliveredUplink",
    "DeviceRegistry",
    "DeviceSession",
    "DownlinkCommand",
    "FCNT_PERIOD",
    "FrameDeduplicator",
    "GatewayFeed",
    "GatewayProfile",
    "IngestPlane",
    "MultiGatewayPhy",
    "NetworkServer",
    "ScenarioReport",
    "ServerConfig",
    "ServerReport",
    "ThreadedIngestor",
    "UplinkFrame",
    "build_scenario",
    "decode_uplink_payload",
    "encode_uplink_payload",
    "ingest_async",
    "merge_streams",
    "overlapping_profiles",
    "power_for_headroom",
    "run_closed_loop",
    "run_scenario",
    "run_streams",
    "run_streams_async",
    "run_streams_threaded",
    "uplink_from_outcome",
    "uplinks_from_report",
]
