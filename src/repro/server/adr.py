"""The server-side ADR loop: link measurements in, downlinks out.

The paper's Sec. 3: "base stations program each client to operate on a
suitable data rate based on its received signal-quality."  The per-device
ladder/hysteresis machinery lives in :class:`repro.mac.adr.AdrController`
(one per :class:`repro.server.sessions.DeviceSession`); this engine is
the thin network-side shim that (i) feeds each accepted, deduplicated
uplink's best-copy SNR into the device's controller and (ii) turns
*assignment changes* into :class:`repro.server.frames.DownlinkCommand`
records -- the LinkADRReq emulation the MAC simulator consumes via
:meth:`repro.mac.NetworkSimulator.apply_downlink`.

A command is emitted only when the assignment actually moves, so a
converged deployment goes quiet instead of re-programming every device on
every uplink.  At the fastest SF, remaining headroom above the assignment
requirement is translated into a TX-power step-down (LoRaWAN ADR spends
leftover margin on power before it runs out of data rates).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gateway.telemetry import Telemetry
from repro.mac.adr import ASSIGNMENT_SNR_DB, DEFAULT_ASSIGNMENT_MARGIN_DB
from repro.server.frames import DownlinkCommand
from repro.server.sessions import DeviceSession

#: TX-power ladder (dBm), strongest first -- EU868-style 2 dB steps.
POWER_LADDER_DBM = (14.0, 12.0, 10.0, 8.0, 6.0, 4.0, 2.0)


def power_for_headroom(headroom_db: float) -> float:
    """Largest power step-down the measured headroom supports.

    ``headroom_db`` is how far the smoothed SNR clears the assignment
    requirement at the current SF; each 2 dB of it buys one rung down the
    ladder (never below the floor).
    """
    steps = max(int(headroom_db // 2.0), 0)
    return POWER_LADDER_DBM[min(steps, len(POWER_LADDER_DBM) - 1)]


class AdrEngine:
    """Per-uplink ADR evaluation over device sessions.

    Not internally locked: :class:`repro.server.NetworkServer` serializes
    access under its own lock.
    """

    def __init__(
        self,
        adjust_power: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.adjust_power = adjust_power
        self._telemetry = telemetry
        self._last_power_dbm: Dict[int, float] = {}
        self.n_commands = 0
        self.n_upgrades = 0
        self.n_downgrades = 0

    def _count(self, metric: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(f"adr.{metric}").inc()

    def observe(
        self, session: DeviceSession, snr_db: float, now_s: float
    ) -> List[DownlinkCommand]:
        """Feed one accepted uplink's SNR; return any downlink commands.

        At most one command per call: emitted when the device's assigned
        SF changes, or (at the fastest SF) when the power assignment
        moves.
        """
        before_sf = session.adr.spreading_factor
        after_sf = session.adr.report_snr(snr_db)
        smoothed = session.adr.smoothed_snr_db
        power_dbm = POWER_LADDER_DBM[0]
        if (
            self.adjust_power
            and after_sf in ASSIGNMENT_SNR_DB
            and smoothed is not None
        ):
            requirement = ASSIGNMENT_SNR_DB[after_sf] + (
                session.adr.margin_db - DEFAULT_ASSIGNMENT_MARGIN_DB
            )
            # Spend only headroom beyond the upgrade hysteresis band,
            # else power cuts would block the next SF upgrade.
            power_dbm = power_for_headroom(
                smoothed - requirement - session.adr.hysteresis_db
            )
        sf_changed = after_sf != before_sf
        power_changed = (
            self._last_power_dbm.get(session.device_addr, POWER_LADDER_DBM[0])
            != power_dbm
        )
        if not sf_changed and not power_changed:
            return []
        self._last_power_dbm[session.device_addr] = power_dbm
        self.n_commands += 1
        self._count("commands")
        if sf_changed:
            if after_sf < before_sf:
                self.n_upgrades += 1
                self._count("upgrades")
            else:
                self.n_downgrades += 1
                self._count("downgrades")
            reason = "adr-sf"
        else:
            reason = "adr-power"
        return [
            DownlinkCommand(
                device_addr=session.device_addr,
                spreading_factor=after_sf,
                tx_power_dbm=power_dbm,
                issued_s=now_s,
                reason=reason,
            )
        ]
