"""Closed-loop multi-gateway scenarios: simulator -> server -> simulator.

This module wires the whole subsystem into one measurable experiment --
the E2E the issue demands: N gateways with *different* per-node link
quality all hear the same MAC-simulator deployment, their receptions
stream into a :class:`repro.server.NetworkServer` (any ingest transport),
and the server's ADR downlinks are applied back onto the simulator's
nodes mid-run.  A device with strong links converges to a fast SF, a
weak one to a slow SF -- the Fig. 8(a) regime separation, now produced
by the closed loop instead of an offline controller.

Geometry is expressed as per-gateway SNR offsets
(:class:`GatewayProfile`): gateway ``g`` hears node ``n`` at
``node_snr + offset``.  :class:`MultiGatewayPhy` resolves each slot once
per gateway (union of decodes delivers to the MAC -- uplink macro
diversity) while recording which gateways decoded whom at what SNR, the
ground truth the dedup/best-gateway assertions compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.mac.phy import PhyModel, SingleUserPhy, Transmission
from repro.mac.protocols import OracleMac
from repro.mac.simulator import NetworkSimulator, NodeConfig, SlotResult
from repro.phy.params import LoRaParams
from repro.server.frames import UplinkFrame, encode_uplink_payload
from repro.server.ingest import run_streams_async, run_streams_threaded
from repro.server.server import NetworkServer, ServerConfig, ServerReport
from repro.utils import RngLike

#: Ingest transports a scenario can exercise.
INGEST_MODES = ("serial", "thread", "async")


@dataclass(frozen=True)
class GatewayProfile:
    """One gateway's link geometry: per-node SNR offsets in dB.

    ``default_offset_db`` applies to nodes absent from ``offsets_db`` --
    the "far" attenuation; per-node entries model proximity.
    """

    gateway_id: int
    offsets_db: Dict[int, float] = field(default_factory=dict)
    default_offset_db: float = -4.0

    def offset_for(self, node_id: int) -> float:
        """SNR offset this gateway applies to ``node_id``'s link."""
        return self.offsets_db.get(node_id, self.default_offset_db)


def overlapping_profiles(
    n_gateways: int,
    node_ids: Sequence[int],
    near_offset_db: float = 0.0,
    far_offset_db: float = -4.0,
) -> List[GatewayProfile]:
    """Round-robin geometry: node ``n`` is near gateway ``n % N``.

    Every gateway still hears every node (``far_offset_db`` attenuation,
    not erasure), so each uplink is received by multiple gateways -- the
    overlap that makes dedup and best-gateway selection non-trivial.
    With distinct offsets the max-SNR gateway for node ``n`` is exactly
    ``n % N``: the scenario's ground truth.
    """
    return [
        GatewayProfile(
            gateway_id=g,
            offsets_db={
                n: near_offset_db for n in node_ids if n % n_gateways == g
            },
            default_offset_db=far_offset_db,
        )
        for g in range(n_gateways)
    ]


@dataclass(frozen=True)
class Reception:
    """One gateway's successful decode of one slot transmission."""

    gateway_id: int
    node_id: int
    snr_db: float
    spreading_factor: int


class MultiGatewayPhy(PhyModel):
    """Resolve each slot once per gateway; deliver the union.

    Wraps a single-gateway outcome model and replays every slot through
    it per gateway with that gateway's SNR offsets applied (ascending
    gateway id, for a deterministic RNG draw sequence).  The union of
    per-gateway decodes is what the MAC sees delivered (macro
    diversity); :attr:`last_receptions` records the per-gateway detail
    for the uplink feed and the ground-truth assertions.
    """

    def __init__(self, inner: PhyModel, profiles: Sequence[GatewayProfile]) -> None:
        ids = [p.gateway_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate gateway ids: {ids}")
        if not profiles:
            raise ValueError("need at least one gateway profile")
        self.inner = inner
        self.profiles = {p.gateway_id: p for p in profiles}
        self.last_receptions: List[Reception] = []

    def resolve(
        self, transmissions: List[Transmission], rng: RngLike = None
    ) -> Set[int]:
        """See :meth:`repro.mac.phy.PhyModel.resolve`."""
        self.last_receptions = []
        decoded: Set[int] = set()
        for gateway_id in sorted(self.profiles):
            profile = self.profiles[gateway_id]
            shifted = [
                Transmission(
                    node_id=t.node_id,
                    snr_db=t.snr_db + profile.offset_for(t.node_id),
                    n_payload_bits=t.n_payload_bits,
                    channel=t.channel,
                    spreading_factor=t.spreading_factor,
                )
                for t in transmissions
            ]
            local = self.inner.resolve(shifted, rng=rng)
            decoded |= local
            for t in shifted:
                if t.node_id in local:
                    self.last_receptions.append(
                        Reception(
                            gateway_id=gateway_id,
                            node_id=t.node_id,
                            snr_db=t.snr_db,
                            spreading_factor=(
                                t.spreading_factor
                                if t.spreading_factor is not None
                                else 0
                            ),
                        )
                    )
        return decoded


@dataclass(frozen=True)
class ScenarioReport:
    """Everything a closed-loop run produced."""

    server: ServerReport
    initial_sf: Dict[int, int]
    final_sf: Dict[int, int]
    sf_trajectory: Dict[int, Tuple[int, ...]]
    n_receptions: int
    n_commands: int
    best_gateway_truth: Dict[int, int]

    def moved_faster(self) -> List[int]:
        """Nodes whose final SF is faster (smaller) than their initial."""
        return sorted(
            n
            for n, sf in self.final_sf.items()
            if sf < self.initial_sf.get(n, sf)
        )

    def moved_slower(self) -> List[int]:
        """Nodes whose final SF is slower (larger) than their initial."""
        return sorted(
            n
            for n, sf in self.final_sf.items()
            if sf > self.initial_sf.get(n, sf)
        )


def run_closed_loop(
    sim: NetworkSimulator,
    phy: MultiGatewayPhy,
    server: NetworkServer,
    duration_s: float,
    ingest: str = "serial",
    payload_len: int = 8,
) -> ScenarioReport:
    """Drive the simulator with the server's ADR loop closed over it.

    Per transmission-carrying slot: every gateway reception becomes an
    :class:`UplinkFrame` (``fcnt`` counts the device's transmission
    attempts, payload carries the devaddr/fcnt header), the slot's
    frames flow into the server through the chosen ``ingest`` transport,
    and drained downlink commands are applied to the simulator so they
    bind from the next slot.  All three transports produce identical
    reports (the merge discipline; see :mod:`repro.server.ingest`).
    """
    if ingest not in INGEST_MODES:
        raise ValueError(f"ingest must be one of {INGEST_MODES}, got {ingest!r}")
    fcnt: Dict[int, int] = {}
    seq: Dict[int, int] = {}
    initial_sf = {nid: sim.node_sf(nid) for nid in sim.nodes}
    trajectory: Dict[int, List[int]] = {nid: [sf] for nid, sf in initial_sf.items()}
    n_receptions = 0
    n_commands = 0
    best_truth: Dict[int, Tuple[float, int]] = {}

    def feed_server(streams: Dict[int, List[UplinkFrame]]) -> None:
        if ingest == "serial":
            for frame in sorted(
                (f for frames in streams.values() for f in frames),
                key=lambda f: (f.received_s, f.gateway_id, f.seq),
            ):
                server.handle_uplink(frame)
        elif ingest == "thread":
            run_streams_threaded(server, dict(streams))
        else:
            run_streams_async(server, dict(streams))

    def on_slot(result: SlotResult) -> None:
        nonlocal n_receptions, n_commands
        # The device increments FCntUp per transmission *attempt*
        # (retransmissions carry fresh counters in this model, keeping
        # counters strictly monotone).
        slot_fcnt = {}
        for tx in result.transmissions:
            slot_fcnt[tx.node_id] = fcnt.get(tx.node_id, -1) + 1
            fcnt[tx.node_id] = slot_fcnt[tx.node_id]
        streams: Dict[int, List[UplinkFrame]] = {
            gw: [] for gw in phy.profiles
        }
        for rec in phy.last_receptions:
            n_receptions += 1
            frame_fcnt = slot_fcnt[rec.node_id] % (1 << 16)
            streams[rec.gateway_id].append(
                UplinkFrame(
                    gateway_id=rec.gateway_id,
                    device_addr=rec.node_id,
                    fcnt=frame_fcnt,
                    snr_db=rec.snr_db,
                    received_s=result.delivery_s,
                    payload=encode_uplink_payload(
                        rec.node_id, frame_fcnt, payload_len
                    ),
                    spreading_factor=rec.spreading_factor or None,
                    seq=seq.get(rec.gateway_id, 0),
                )
            )
            seq[rec.gateway_id] = seq.get(rec.gateway_id, 0) + 1
            truth = best_truth.get(rec.node_id)
            key = (rec.snr_db, -rec.gateway_id)
            if truth is None or key > (truth[0], -truth[1]):
                best_truth[rec.node_id] = (rec.snr_db, rec.gateway_id)
        feed_server({gw: frames for gw, frames in streams.items() if frames})
        for command in server.drain_commands():
            n_commands += 1
            sim.apply_downlink(command.device_addr, command.spreading_factor)
        for nid in sim.nodes:
            current = sim.node_sf(nid)
            if trajectory[nid][-1] != current:
                trajectory[nid].append(current)

    sim.run(duration_s, on_slot=on_slot)
    report = server.finish()
    return ScenarioReport(
        server=report,
        initial_sf=initial_sf,
        final_sf={nid: sim.node_sf(nid) for nid in sim.nodes},
        sf_trajectory={nid: tuple(t) for nid, t in trajectory.items()},
        n_receptions=n_receptions,
        n_commands=n_commands,
        best_gateway_truth={
            nid: gw for nid, (_, gw) in sorted(best_truth.items())
        },
    )


def build_scenario(
    n_gateways: int = 2,
    node_snrs_db: Sequence[float] = (20.0, 20.0, -4.0, -4.0),
    initial_sf: int = 10,
    period_s: Optional[float] = None,
    payload_bits: int = 64,
    params: Optional[LoRaParams] = None,
    server_config: Optional[ServerConfig] = None,
    near_offset_db: float = 0.0,
    far_offset_db: float = -4.0,
    seed: int = 0,
    decode_tier: str = "full",
) -> Tuple[NetworkSimulator, MultiGatewayPhy, NetworkServer]:
    """Assemble a canonical overlapping 2+-gateway deployment.

    Nodes all start at ``initial_sf`` (mid-ladder by default, so ADR has
    room to move in both directions); an :class:`OracleMac` serializes
    transmissions so convergence depends on link quality, not collision
    luck.  ``node_snrs_db[i]`` is node ``i``'s baseline SNR before
    gateway offsets.  ``decode_tier`` stamps the default
    :class:`ServerConfig` with the decode pipeline the fronting IQ
    gateways run (ignored when ``server_config`` is supplied -- that
    config's own field wins).
    """
    params = params or LoRaParams(spreading_factor=initial_sf)
    node_ids = list(range(len(node_snrs_db)))
    nodes = [
        NodeConfig(
            node_id=nid,
            snr_db=float(node_snrs_db[nid]),
            payload_bits=payload_bits,
            period_s=period_s,
            spreading_factor=initial_sf,
        )
        for nid in node_ids
    ]
    profiles = overlapping_profiles(
        n_gateways, node_ids, near_offset_db, far_offset_db
    )
    phy = MultiGatewayPhy(SingleUserPhy(params=params), profiles)
    sim = NetworkSimulator(
        params=params, phy=phy, mac=OracleMac(), nodes=nodes, rng=seed
    )
    config = server_config or ServerConfig(
        dedup_window_s=2.0 * sim.slot_s,
        adr_initial_sf=initial_sf,
        decode_tier=decode_tier,
    )
    return sim, phy, NetworkServer(config=config)


def run_scenario(
    n_gateways: int = 2,
    duration_s: float = 200.0,
    ingest: str = "serial",
    **kwargs: object,
) -> ScenarioReport:
    """One-call canonical scenario: build, run closed-loop, report."""
    sim, phy, server = build_scenario(n_gateways=n_gateways, **kwargs)  # type: ignore[arg-type]
    return run_closed_loop(sim, phy, server, duration_s, ingest=ingest)


__all__ = [
    "GatewayProfile",
    "INGEST_MODES",
    "MultiGatewayPhy",
    "Reception",
    "ScenarioReport",
    "build_scenario",
    "overlapping_profiles",
    "run_closed_loop",
    "run_scenario",
]
