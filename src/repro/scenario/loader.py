"""Scenario file loading: YAML/JSON on disk -> validated ScenarioSpec.

The loader is deliberately thin: parse the file into a plain dict, hand
it to :meth:`ScenarioSpec.from_dict`, and stamp every resulting
:class:`ScenarioError` with the file path so CI logs read
``scenarios/eu868_urban.yaml: traffic.period_s: expected a number``.
YAML support rides on PyYAML when present; ``.json`` scenarios always
work, so the harness degrades gracefully on minimal installs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.scenario.spec import ScenarioError, ScenarioSpec

try:  # pragma: no cover - exercised implicitly by every YAML test
    import yaml as _yaml
except ImportError:  # pragma: no cover - YAML-less installs fall back to JSON
    _yaml = None

YAML_SUFFIXES = (".yaml", ".yml")


def parse_scenario_text(text: str, *, source: str = "<string>") -> ScenarioSpec:
    """Parse scenario YAML/JSON source text into a validated spec.

    JSON is a YAML subset, so with PyYAML available one parser covers
    both; without it, JSON alone is attempted.  Errors -- syntax or
    schema -- come back as :class:`ScenarioError` tagged with ``source``.
    """
    data: Any
    if _yaml is not None:
        try:
            data = _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ScenarioError(f"invalid YAML: {exc}", source=source) from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"invalid JSON (install PyYAML for YAML scenarios): {exc}",
                source=source,
            ) from exc
    if data is None:
        raise ScenarioError("scenario document is empty", source=source)
    try:
        return ScenarioSpec.from_dict(data)
    except ScenarioError as exc:
        raise exc.with_source(source) from None


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate the scenario file at ``path``.

    ``.yaml``/``.yml`` requires PyYAML; ``.json`` never does.  Missing
    files and schema violations both surface as :class:`ScenarioError`
    carrying the path.
    """
    path = Path(path)
    if not path.is_file():
        raise ScenarioError("scenario file not found", source=str(path))
    if path.suffix.lower() in YAML_SUFFIXES and _yaml is None:
        raise ScenarioError(
            "PyYAML is not installed; convert the scenario to .json",
            source=str(path),
        )
    return parse_scenario_text(path.read_text(), source=str(path))
