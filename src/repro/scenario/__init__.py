"""Declarative scenarios and the city-scale capacity campaign.

``repro.scenario`` is the harness layer above the simulation stack: a
scenario file (YAML/JSON) describes one urban deployment -- geometry,
population, traffic, channel plan, gateway shape, decode tiers -- and the
campaign runner sweeps it across node counts to produce the paper's
Sec. 8 capacity-vs-offered-load comparison between Choir and standard
LoRa.  See DESIGN.md Sec. 17.
"""

from repro.scenario.build import (
    build_gateway,
    build_gateway_config,
    build_nodes,
    build_plan,
    build_source,
    node_snrs,
    offered_load_erlangs,
    report_digest,
    source_seed,
)
from repro.scenario.campaign import (
    CapacityCurve,
    SweepPoint,
    VariantResult,
    delivered_count,
    run_campaign,
    run_point,
    run_variant,
)
from repro.scenario.loader import load_scenario, parse_scenario_text
from repro.scenario.spec import (
    BaselineSpec,
    GatewaySpec,
    GeometrySpec,
    PlanSpec,
    ScenarioError,
    ScenarioSpec,
    SweepSpec,
    TrafficSpec,
)

__all__ = [
    "BaselineSpec",
    "CapacityCurve",
    "GatewaySpec",
    "GeometrySpec",
    "PlanSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SweepPoint",
    "SweepSpec",
    "TrafficSpec",
    "VariantResult",
    "build_gateway",
    "build_gateway_config",
    "build_nodes",
    "build_plan",
    "build_source",
    "delivered_count",
    "load_scenario",
    "node_snrs",
    "offered_load_erlangs",
    "parse_scenario_text",
    "report_digest",
    "run_campaign",
    "run_point",
    "run_variant",
    "source_seed",
]
