"""Validated declarative scenario model for city-scale campaigns.

A scenario file (YAML or JSON, see :mod:`repro.scenario.loader`) describes
one deployment end to end -- geometry, node population and traffic model,
channel plan, gateway shape, decode tiers -- and parses into a frozen
:class:`ScenarioSpec`.  Validation is strict and located: every error is a
:class:`ScenarioError` carrying the dotted key path (``traffic.period_s``)
and, once the loader has stamped it, the file it came from; unknown keys
are rejected rather than ignored, so a typo'd ``perriod_s`` fails loudly
instead of silently running the default.

``ScenarioSpec.to_dict()`` / ``ScenarioSpec.from_dict()`` round-trip
exactly, which is what lets a campaign report embed the spec it ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.cascade import DECODE_TIERS
from repro.phy.params import VALID_SPREADING_FACTORS

#: Geometry layouts the node builder understands.
GEOMETRY_LAYOUTS = ("uniform-disc", "fixed-snr")

#: Channel-plan regions the sharded gateway can serve (US915's 200 kHz
#: spacing is not critically stacked, so the channelizer rejects it).
PLAN_REGIONS = ("eu868",)

_MISSING = object()


class ScenarioError(ValueError):
    """A scenario file (or dict) failed validation.

    Carries the dotted ``key`` path of the offending entry and, when the
    loader raised it, the ``source`` file -- both baked into ``str(err)``
    so a CI log locates the mistake without a traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        key: Optional[str] = None,
        source: Optional[str] = None,
    ) -> None:
        self.message = message
        self.key = key
        self.source = source
        located = message
        if key:
            located = f"{key}: {located}"
        if source:
            located = f"{source}: {located}"
        super().__init__(located)

    def with_source(self, source: str) -> "ScenarioError":
        """The same error, stamped with the file it was loaded from."""
        return ScenarioError(self.message, key=self.key, source=source)


class _Fields:
    """One mapping level of a scenario dict: typed takes, unknown-key audit."""

    def __init__(self, data: object, keypath: str) -> None:
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"expected a mapping, got {type(data).__name__}",
                key=keypath or None,
            )
        self._data: Dict[str, Any] = dict(data)
        self._keypath = keypath
        self._taken: set[str] = set()

    def _key(self, name: str) -> str:
        return f"{self._keypath}.{name}" if self._keypath else name

    def take(self, name: str, kind: str, default: object = _MISSING) -> Any:
        """Fetch and type-check one key; ``default`` marks it optional."""
        if name not in self._data:
            if default is _MISSING:
                raise ScenarioError("required key is missing", key=self._key(name))
            return default
        self._taken.add(name)
        return _coerce(self._data[name], kind, self._key(name))

    def section(self, name: str) -> "_Fields":
        """A nested mapping section (missing section = empty mapping)."""
        self._taken.add(name)
        return _Fields(self._data.get(name, {}), self._key(name))

    def finish(self) -> None:
        """Reject any key no ``take``/``section`` claimed."""
        unknown = sorted(set(self._data) - self._taken)
        if unknown:
            where = self._keypath or "top level"
            raise ScenarioError(
                f"unknown key(s) in {where}: {', '.join(unknown)}",
                key=self._key(unknown[0]),
            )


def _coerce(value: Any, kind: str, key: str) -> Any:
    """Check ``value`` against the simple type named by ``kind``."""
    if kind == "str":
        if not isinstance(value, str):
            raise ScenarioError(
                f"expected a string, got {type(value).__name__}", key=key
            )
        return value
    if kind == "bool":
        if not isinstance(value, bool):
            raise ScenarioError(
                f"expected a boolean, got {type(value).__name__}", key=key
            )
        return value
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(
                f"expected an integer, got {type(value).__name__}", key=key
            )
        return value
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"expected a number, got {type(value).__name__}", key=key
            )
        return float(value)
    if kind == "float-or-null":
        if value is None:
            return None
        return _coerce(value, "float", key)
    if kind == "int-or-null":
        if value is None:
            return None
        return _coerce(value, "int", key)
    if kind == "int-list":
        if not isinstance(value, (list, tuple)) or not value:
            raise ScenarioError("expected a non-empty list of integers", key=key)
        return tuple(
            _coerce(item, "int", f"{key}[{i}]") for i, item in enumerate(value)
        )
    raise AssertionError(f"unhandled coercion kind {kind!r}")


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeometrySpec:
    """Where nodes sit relative to the gateway, and what SNR that buys.

    ``uniform-disc`` places nodes area-uniformly in the annulus
    ``[min_distance_m, cell_radius_m]`` around the gateway and maps
    distance to mean SNR through the urban log-distance model
    (:class:`repro.channel.pathloss.UrbanPathLoss` with ``path_exponent``)
    and the paper's link budget (:class:`repro.channel.link.LinkBudget`
    with ``tx_power_dbm`` / ``penetration_loss_db``); optional log-normal
    shadowing adds per-node variation.  ``fixed-snr`` gives every node
    ``snr_db`` -- the degenerate geometry unit tests and byte-identity
    checks want.
    """

    layout: str = "uniform-disc"
    cell_radius_m: float = 130.0
    min_distance_m: float = 35.0
    snr_db: float = 15.0
    tx_power_dbm: float = 14.0
    penetration_loss_db: float = 22.5
    path_exponent: float = 3.5
    shadowing_sigma_db: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        if self.layout not in GEOMETRY_LAYOUTS:
            raise ScenarioError(
                f"layout must be one of {GEOMETRY_LAYOUTS}, got {self.layout!r}",
                key="geometry.layout",
            )
        if self.cell_radius_m <= 0:
            raise ScenarioError(
                f"cell_radius_m must be positive, got {self.cell_radius_m}",
                key="geometry.cell_radius_m",
            )
        if not 0 < self.min_distance_m <= self.cell_radius_m:
            raise ScenarioError(
                f"min_distance_m must be in (0, cell_radius_m], got "
                f"{self.min_distance_m}",
                key="geometry.min_distance_m",
            )
        if self.shadowing_sigma_db < 0:
            raise ScenarioError(
                f"shadowing_sigma_db must be >= 0, got {self.shadowing_sigma_db}",
                key="geometry.shadowing_sigma_db",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "GeometrySpec":
        spec = cls(
            layout=fields.take("layout", "str", cls.layout),
            cell_radius_m=fields.take("cell_radius_m", "float", cls.cell_radius_m),
            min_distance_m=fields.take(
                "min_distance_m", "float", cls.min_distance_m
            ),
            snr_db=fields.take("snr_db", "float", cls.snr_db),
            tx_power_dbm=fields.take("tx_power_dbm", "float", cls.tx_power_dbm),
            penetration_loss_db=fields.take(
                "penetration_loss_db", "float", cls.penetration_loss_db
            ),
            path_exponent=fields.take(
                "path_exponent", "float", cls.path_exponent
            ),
            shadowing_sigma_db=fields.take(
                "shadowing_sigma_db", "float", cls.shadowing_sigma_db
            ),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {
            "layout": self.layout,
            "cell_radius_m": self.cell_radius_m,
            "min_distance_m": self.min_distance_m,
            "snr_db": self.snr_db,
            "tx_power_dbm": self.tx_power_dbm,
            "penetration_loss_db": self.penetration_loss_db,
            "path_exponent": self.path_exponent,
            "shadowing_sigma_db": self.shadowing_sigma_db,
        }


@dataclass(frozen=True)
class TrafficSpec:
    """The node population's traffic model and PHY assignment policy."""

    period_s: Optional[float] = 60.0
    payload_len: int = 8
    spreading_factors: Tuple[int, ...] = (7,)
    channel_policy: str = "round-robin"

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        if self.period_s is not None and self.period_s <= 0:
            raise ScenarioError(
                f"period_s must be positive or null (saturated), got "
                f"{self.period_s}",
                key="traffic.period_s",
            )
        if self.payload_len <= 0:
            raise ScenarioError(
                f"payload_len must be positive, got {self.payload_len}",
                key="traffic.payload_len",
            )
        for sf in self.spreading_factors:
            if sf not in VALID_SPREADING_FACTORS:
                raise ScenarioError(
                    f"spreading factor must be one of "
                    f"{VALID_SPREADING_FACTORS}, got {sf}",
                    key="traffic.spreading_factors",
                )
        if self.channel_policy not in ("round-robin", "uniform"):
            raise ScenarioError(
                f"channel_policy must be 'round-robin' or 'uniform', got "
                f"{self.channel_policy!r}",
                key="traffic.channel_policy",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "TrafficSpec":
        spec = cls(
            period_s=fields.take("period_s", "float-or-null", cls.period_s),
            payload_len=fields.take("payload_len", "int", cls.payload_len),
            spreading_factors=fields.take(
                "spreading_factors", "int-list", cls.spreading_factors
            ),
            channel_policy=fields.take(
                "channel_policy", "str", cls.channel_policy
            ),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {
            "period_s": self.period_s,
            "payload_len": self.payload_len,
            "spreading_factors": list(self.spreading_factors),
            "channel_policy": self.channel_policy,
        }


@dataclass(frozen=True)
class PlanSpec:
    """The uplink channel grid the wideband front end serves."""

    region: str = "eu868"
    n_channels: int = 8

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        if self.region not in PLAN_REGIONS:
            raise ScenarioError(
                f"region must be one of {PLAN_REGIONS}, got {self.region!r}",
                key="plan.region",
            )
        if self.n_channels < 1:
            raise ScenarioError(
                f"n_channels must be >= 1, got {self.n_channels}",
                key="plan.n_channels",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "PlanSpec":
        spec = cls(
            region=fields.take("region", "str", cls.region),
            n_channels=fields.take("n_channels", "int", cls.n_channels),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {"region": self.region, "n_channels": self.n_channels}


@dataclass(frozen=True)
class GatewaySpec:
    """The Choir gateway's runtime shape and decode configuration."""

    executor: str = "thread"
    workers: int = 2
    queue_capacity: int = 64
    drop_policy: str = "block"
    detection_pfa: float = 1e-3
    chunk_samples: int = 4096
    decode_tier: str = "cascade"
    max_users: Optional[int] = 4
    use_engine: bool = True

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        if self.executor not in ("serial", "thread", "process"):
            raise ScenarioError(
                f"executor must be serial/thread/process, got {self.executor!r}",
                key="gateway.executor",
            )
        if self.workers < 1:
            raise ScenarioError(
                f"workers must be >= 1, got {self.workers}", key="gateway.workers"
            )
        if self.queue_capacity < 1:
            raise ScenarioError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}",
                key="gateway.queue_capacity",
            )
        if self.drop_policy not in ("newest", "oldest", "block"):
            raise ScenarioError(
                f"drop_policy must be newest/oldest/block, got "
                f"{self.drop_policy!r}",
                key="gateway.drop_policy",
            )
        if not 0 < self.detection_pfa < 1:
            raise ScenarioError(
                f"detection_pfa must be in (0, 1), got {self.detection_pfa}",
                key="gateway.detection_pfa",
            )
        if self.chunk_samples < 1:
            raise ScenarioError(
                f"chunk_samples must be >= 1, got {self.chunk_samples}",
                key="gateway.chunk_samples",
            )
        if self.decode_tier not in DECODE_TIERS:
            raise ScenarioError(
                f"decode_tier must be one of {DECODE_TIERS}, got "
                f"{self.decode_tier!r}",
                key="gateway.decode_tier",
            )
        if self.max_users is not None and self.max_users < 1:
            raise ScenarioError(
                f"max_users must be >= 1 or null, got {self.max_users}",
                key="gateway.max_users",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "GatewaySpec":
        spec = cls(
            executor=fields.take("executor", "str", cls.executor),
            workers=fields.take("workers", "int", cls.workers),
            queue_capacity=fields.take(
                "queue_capacity", "int", cls.queue_capacity
            ),
            drop_policy=fields.take("drop_policy", "str", cls.drop_policy),
            detection_pfa=fields.take(
                "detection_pfa", "float", cls.detection_pfa
            ),
            chunk_samples=fields.take(
                "chunk_samples", "int", cls.chunk_samples
            ),
            decode_tier=fields.take("decode_tier", "str", cls.decode_tier),
            max_users=fields.take("max_users", "int-or-null", cls.max_users),
            use_engine=fields.take("use_engine", "bool", cls.use_engine),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {
            "executor": self.executor,
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "drop_policy": self.drop_policy,
            "detection_pfa": self.detection_pfa,
            "chunk_samples": self.chunk_samples,
            "decode_tier": self.decode_tier,
            "max_users": self.max_users,
            "use_engine": self.use_engine,
        }


@dataclass(frozen=True)
class BaselineSpec:
    """The standard-LoRa comparison point: one user per window, no SIC.

    ``decode_tier="fast"`` is the Tier-0 dechirp-argmax decoder -- exactly
    what a commodity LoRa chipset does -- and ``max_users=1`` removes the
    collision-resolution headroom even if the tier is overridden to a
    Choir pipeline.
    """

    decode_tier: str = "fast"
    max_users: Optional[int] = 1

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        if self.decode_tier not in DECODE_TIERS:
            raise ScenarioError(
                f"decode_tier must be one of {DECODE_TIERS}, got "
                f"{self.decode_tier!r}",
                key="baseline.decode_tier",
            )
        if self.max_users is not None and self.max_users < 1:
            raise ScenarioError(
                f"max_users must be >= 1 or null, got {self.max_users}",
                key="baseline.max_users",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "BaselineSpec":
        spec = cls(
            decode_tier=fields.take("decode_tier", "str", cls.decode_tier),
            max_users=fields.take("max_users", "int-or-null", cls.max_users),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {"decode_tier": self.decode_tier, "max_users": self.max_users}


@dataclass(frozen=True)
class SweepSpec:
    """The campaign axis: node counts, simulated air time, seed, guard."""

    node_counts: Tuple[int, ...] = (100, 300, 1000)
    duration_s: float = 60.0
    seed: int = 0
    max_active_frames: int = 1024

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-domain fields."""
        for count in self.node_counts:
            if count < 1:
                raise ScenarioError(
                    f"node counts must be >= 1, got {count}",
                    key="sweep.node_counts",
                )
        if self.duration_s <= 0:
            raise ScenarioError(
                f"duration_s must be positive, got {self.duration_s}",
                key="sweep.duration_s",
            )
        if self.max_active_frames < 1:
            raise ScenarioError(
                f"max_active_frames must be >= 1, got {self.max_active_frames}",
                key="sweep.max_active_frames",
            )

    @classmethod
    def from_fields(cls, fields: _Fields) -> "SweepSpec":
        spec = cls(
            node_counts=fields.take(
                "node_counts", "int-list", cls.node_counts
            ),
            duration_s=fields.take("duration_s", "float", cls.duration_s),
            seed=fields.take("seed", "int", cls.seed),
            max_active_frames=fields.take(
                "max_active_frames", "int", cls.max_active_frames
            ),
        )
        fields.finish()
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form that :meth:`from_fields` parses back exactly."""
        return {
            "node_counts": list(self.node_counts),
            "duration_s": self.duration_s,
            "seed": self.seed,
            "max_active_frames": self.max_active_frames,
        }


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative deployment: everything a campaign run needs."""

    name: str
    description: str = ""
    geometry: GeometrySpec = GeometrySpec()
    traffic: TrafficSpec = TrafficSpec()
    plan: PlanSpec = PlanSpec()
    gateway: GatewaySpec = GatewaySpec()
    baseline: BaselineSpec = BaselineSpec()
    sweep: SweepSpec = SweepSpec()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse and validate a scenario dict (what the loader read)."""
        fields = _Fields(data, "")
        name = fields.take("name", "str")
        description = fields.take("description", "str", "")
        spec = cls(
            name=name,
            description=description,
            geometry=GeometrySpec.from_fields(fields.section("geometry")),
            traffic=TrafficSpec.from_fields(fields.section("traffic")),
            plan=PlanSpec.from_fields(fields.section("plan")),
            gateway=GatewaySpec.from_fields(fields.section("gateway")),
            baseline=BaselineSpec.from_fields(fields.section("baseline")),
            sweep=SweepSpec.from_fields(fields.section("sweep")),
        )
        fields.finish()
        if not spec.name:
            raise ScenarioError("name must not be empty", key="name")
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``from_dict(to_dict())`` round-trips exactly."""
        return {
            "name": self.name,
            "description": self.description,
            "geometry": self.geometry.to_dict(),
            "traffic": self.traffic.to_dict(),
            "plan": self.plan.to_dict(),
            "gateway": self.gateway.to_dict(),
            "baseline": self.baseline.to_dict(),
            "sweep": self.sweep.to_dict(),
        }
