"""Turn a validated ScenarioSpec into the live objects a run needs.

The builders here are the *only* bridge between the declarative layer and
the simulation stack -- node populations, traffic sources, and sharded
gateways all come out of pure functions of ``(spec, n_nodes, variant)``,
so a campaign point is reproducible from the scenario file and a seed
alone, and a test can hand-construct the equivalent config and demand a
byte-identical gateway report (see ``report_digest``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.channel.link import LinkBudget
from repro.channel.pathloss import UrbanPathLoss
from repro.gateway.sharded import ShardedGateway, ShardedGatewayConfig
from repro.gateway.sources import SyntheticTrafficSource
from repro.gateway.telemetry import Telemetry
from repro.mac.simulator import NodeConfig
from repro.phy.packet import LoRaFramer
from repro.phy.params import ChannelPlan
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.utils import as_seed_sequence, derive_rng

#: Sub-stream keys under the sweep seed.  Placement gets its own derived
#: stream per (seed, n_nodes) so adding a sweep point never reshuffles
#: the geometry of the others; the source seed is shared across both
#: gateway variants of a point so Choir and the baseline see the *same*
#: air -- the comparison is decoder-only by construction.
GEOMETRY_KEY = 100
SOURCE_KEY = 200


def build_plan(spec: ScenarioSpec) -> ChannelPlan:
    """The channel grid named by the scenario's ``plan`` section."""
    return ChannelPlan.eu868_style(spec.plan.n_channels)


def node_snrs(spec: ScenarioSpec, n_nodes: int, seed: int) -> np.ndarray:
    """Per-node mean SNRs implied by the deployment geometry.

    ``uniform-disc`` draws area-uniform positions in the annulus
    ``[min_distance_m, cell_radius_m]`` (radius via the inverse-CDF
    ``r = sqrt(u * (R^2 - r0^2) + r0^2)``), runs each distance through
    the urban log-distance model and the link budget, and optionally
    adds log-normal shadowing.  ``fixed-snr`` returns a constant array.
    """
    geo = spec.geometry
    if geo.layout == "fixed-snr":
        return np.full(n_nodes, geo.snr_db, dtype=float)
    rng = derive_rng(seed, GEOMETRY_KEY, n_nodes)
    r0sq = geo.min_distance_m**2
    rsq = geo.cell_radius_m**2
    distances = np.sqrt(rng.uniform(0.0, 1.0, n_nodes) * (rsq - r0sq) + r0sq)
    pathloss = UrbanPathLoss(exponent=geo.path_exponent)
    budget = LinkBudget(
        tx_power_dbm=geo.tx_power_dbm,
        penetration_loss_db=geo.penetration_loss_db,
    )
    losses = np.asarray(pathloss.loss_db(distances), dtype=float)
    snrs = np.array([budget.snr_db(loss) for loss in losses])
    if geo.shadowing_sigma_db > 0.0:
        snrs = snrs + rng.normal(0.0, geo.shadowing_sigma_db, n_nodes)
    return snrs


def build_nodes(spec: ScenarioSpec, n_nodes: int, seed: int) -> List[NodeConfig]:
    """The node population for one sweep point.

    Channels and spreading factors are dealt round-robin (or channel
    drawn uniformly under ``channel_policy: uniform``) so offered load
    spreads evenly across the plan's shards -- the deployment-planning
    assignment a real network server's ADR would converge to.
    """
    if n_nodes < 1:
        raise ScenarioError(f"n_nodes must be >= 1, got {n_nodes}")
    snrs = node_snrs(spec, n_nodes, seed)
    traffic = spec.traffic
    n_channels = spec.plan.n_channels
    sfs = traffic.spreading_factors
    if traffic.channel_policy == "uniform":
        chan_rng = derive_rng(seed, GEOMETRY_KEY + 1, n_nodes)
        channels = chan_rng.integers(0, n_channels, n_nodes)
    else:
        channels = np.arange(n_nodes) % n_channels
    return [
        NodeConfig(
            node_id=i,
            snr_db=float(snrs[i]),
            payload_bits=8 * traffic.payload_len,
            period_s=traffic.period_s,
            channel=int(channels[i]),
            spreading_factor=sfs[i % len(sfs)],
        )
        for i in range(n_nodes)
    ]


def source_seed(spec: ScenarioSpec, n_nodes: int, seed: int) -> np.random.SeedSequence:
    """The traffic-source seed for one sweep point (shared by variants).

    Derived by key exactly as :func:`repro.utils.derive_rng` derives
    generators, but returned as the spawnable :class:`SeedSequence` the
    source wants -- so a test can rebuild the identical source by hand.
    """
    base = as_seed_sequence(seed)
    spawn_key = tuple(base.spawn_key) + (SOURCE_KEY, int(n_nodes))
    # keyed derivation needs the raw SeedSequence, not a Generator
    return np.random.SeedSequence(base.entropy, spawn_key=spawn_key)  # noqa: R001


def build_source(
    spec: ScenarioSpec,
    n_nodes: int,
    seed: Optional[int] = None,
    duration_s: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    record_ground_truth: bool = True,
) -> SyntheticTrafficSource:
    """The streaming traffic source for one sweep point.

    Always ``materialize=False``: campaigns exist to sweep populations
    whose IQ must never be resident all at once, and
    ``sweep.max_active_frames`` guards the promise.
    """
    effective_seed = spec.sweep.seed if seed is None else seed
    return SyntheticTrafficSource(
        params=build_plan(spec).channel_params(min(spec.traffic.spreading_factors)),
        nodes=build_nodes(spec, n_nodes, effective_seed),
        duration_s=spec.sweep.duration_s if duration_s is None else duration_s,
        payload_len=spec.traffic.payload_len,
        chunk_samples=spec.gateway.chunk_samples,
        plan=build_plan(spec),
        rng=source_seed(spec, n_nodes, effective_seed),
        materialize=False,
        record_ground_truth=record_ground_truth,
        max_active_nodes=spec.sweep.max_active_frames,
        telemetry=telemetry,
    )


def build_gateway_config(
    spec: ScenarioSpec, variant: str = "choir"
) -> ShardedGatewayConfig:
    """The sharded gateway for one variant of the comparison.

    ``"choir"`` runs the scenario's ``gateway`` section as written;
    ``"baseline"`` overlays the ``baseline`` section's decode tier and
    user cap on the same runtime shape, so the two variants differ only
    in the decoder -- never in channelization, pooling, or detection.
    """
    if variant not in ("choir", "baseline"):
        raise ScenarioError(
            f"gateway variant must be 'choir' or 'baseline', got {variant!r}"
        )
    gw = spec.gateway
    decode_tier = gw.decode_tier
    max_users: Optional[int] = gw.max_users
    if variant == "baseline":
        decode_tier = spec.baseline.decode_tier
        max_users = spec.baseline.max_users
    return ShardedGatewayConfig(
        plan=build_plan(spec),
        sf_set=spec.traffic.spreading_factors,
        payload_len=spec.traffic.payload_len,
        n_workers=gw.workers,
        executor=gw.executor,
        queue_capacity=gw.queue_capacity,
        drop_policy=gw.drop_policy,
        detection_pfa=gw.detection_pfa,
        max_users=max_users,
        use_engine=gw.use_engine,
        decode_tier=decode_tier,
        seed=spec.sweep.seed,
    )


def build_gateway(
    spec: ScenarioSpec,
    variant: str = "choir",
    telemetry: Optional[Telemetry] = None,
    profiler: Optional[Any] = None,
) -> ShardedGateway:
    """A ready-to-run gateway for one variant of the comparison.

    ``profiler`` is an optional :class:`repro.profile.KernelProfiler`
    shared across points, so a campaign accumulates one kernel table for
    the whole sweep.
    """
    return ShardedGateway(
        build_gateway_config(spec, variant),
        telemetry=telemetry,
        profiler=profiler,
    )


def report_digest(report: Any) -> Dict[str, Any]:
    """A deterministic projection of a gateway report.

    Strips everything wall-clock (timings, latency histograms) and keeps
    everything the decode math determines: ingest counts, per-shard
    counters, and the exact CRC-verified payload bytes in stream order.
    Two runs built from the same scenario -- whether via the loader or a
    hand-constructed config -- must produce *equal* digests; the
    byte-identity test serializes both to JSON and compares the bytes.
    """
    digest: Dict[str, Any] = {
        "samples_in": int(report.samples_in),
        "chunks_in": int(report.chunks_in),
        "samples_evicted": int(report.samples_evicted),
        "packets_detected": int(report.packets_detected),
        "packets_dropped": int(report.packets_dropped),
        "packets_decoded": int(report.packets_decoded),
        "crc_failures": int(report.crc_failures),
        "decode_errors": int(report.decode_errors),
        "decoded_payloads": [p.hex() for p in report.decoded_payloads],
    }
    if report.shards is not None:
        digest["shards"] = {
            label: dict(sorted(counters.items()))
            for label, counters in sorted(report.shards.items())
        }
    return digest


def offered_load_erlangs(spec: ScenarioSpec, n_nodes: int) -> float:
    """Normalized offered load G (frame airtimes per frame time, ALOHA).

    Computed per channel: total frame airtime per second across the
    population, divided across the plan's channels.  The classic pure-
    ALOHA collision-free probability is ``exp(-2G)`` -- printed alongside
    each sweep point so the curve is readable against textbook load.
    """
    plan = build_plan(spec)
    traffic = spec.traffic
    total = 0.0
    for i in range(n_nodes):
        sf = traffic.spreading_factors[i % len(traffic.spreading_factors)]
        params = plan.channel_params(sf)
        n_symbols = LoRaFramer(params).n_symbols_for_payload(traffic.payload_len)
        airtime = (params.preamble_len + n_symbols) * params.symbol_duration
        if traffic.period_s is None:
            rate = 1.0 / airtime
        else:
            rate = 1.0 / traffic.period_s
        total += rate * airtime
    if math.isinf(total):
        return float("inf")
    return total / plan.n_channels
