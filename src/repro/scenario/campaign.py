"""The capacity campaign: sweep node counts, compare Choir vs standard LoRa.

Each sweep point synthesizes one population's air (the *same* IQ stream,
seed-for-seed, for both variants), runs it through two sharded gateways --
the scenario's Choir configuration and the ``max_users=1`` standard-LoRa
baseline -- and scores delivery against the source's ground truth.  The
axis is offered load: as the population grows past the point where frames
start overlapping, a single-user decoder's delivery rate collapses along
the ALOHA curve while the collision-resolving cascade holds on, which is
the paper's Sec. 8 capacity claim in miniature.

Delivery is scored as a *multiset* intersection of decoded payload bytes
against transmitted payload bytes: a decode only counts while transmitted
copies of that exact payload remain unmatched, so duplicated decodes
can't inflate the rate past what was actually offered.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from collections import Counter

from repro.gateway.telemetry import Telemetry
from repro.profile.profiler import KernelProfiler
from repro.profile.resources import ResourceAccountant
from repro.scenario.build import (
    build_gateway,
    build_source,
    offered_load_erlangs,
)
from repro.scenario.spec import ScenarioSpec

#: Sweep points at or above this node count must show Choir *strictly*
#: above the baseline; below it collisions can be too rare to separate
#: the decoders and ties are allowed.
DEFAULT_STRICT_ABOVE = 200


@dataclass(frozen=True)
class VariantResult:
    """One decoder variant's outcome at one sweep point.

    ``cpu_s`` and ``max_rss_kb`` are the point's resource curve sample:
    process CPU spent on the variant's run and the process peak RSS as
    of its end (monotone across a campaign -- the *growth* between
    points is what a leak would show).
    """

    variant: str
    packets_offered: int
    packets_decoded: int
    packets_delivered: int
    crc_failures: int
    wall_s: float
    stream_s: float
    cpu_s: float = 0.0
    max_rss_kb: int = 0

    @property
    def delivery_rate(self) -> float:
        """Fraction of offered packets recovered (the capacity metric)."""
        if self.packets_offered == 0:
            return 0.0
        return self.packets_delivered / self.packets_offered

    @property
    def realtime_factor(self) -> float:
        """Stream seconds processed per wall second."""
        return self.stream_s / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form of this record."""
        return {
            "variant": self.variant,
            "packets_offered": self.packets_offered,
            "packets_decoded": self.packets_decoded,
            "packets_delivered": self.packets_delivered,
            "crc_failures": self.crc_failures,
            "delivery_rate": self.delivery_rate,
            "wall_s": self.wall_s,
            "stream_s": self.stream_s,
            "realtime_factor": self.realtime_factor,
            "cpu_s": self.cpu_s,
            "max_rss_kb": self.max_rss_kb,
        }


@dataclass(frozen=True)
class SweepPoint:
    """One node count's full comparison."""

    n_nodes: int
    duration_s: float
    offered_load_erlangs: float
    choir: VariantResult
    baseline: VariantResult
    source_active_peak: int

    @property
    def capacity_gain(self) -> float:
        """Choir delivery over baseline delivery (>1 means Choir wins)."""
        if self.baseline.delivery_rate == 0.0:
            return float("inf") if self.choir.delivery_rate > 0 else 1.0
        return self.choir.delivery_rate / self.baseline.delivery_rate

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form of this record."""
        return {
            "n_nodes": self.n_nodes,
            "duration_s": self.duration_s,
            "offered_load_erlangs": self.offered_load_erlangs,
            "source_active_peak": self.source_active_peak,
            "capacity_gain": self.capacity_gain,
            "choir": self.choir.to_dict(),
            "baseline": self.baseline.to_dict(),
        }


def delivered_count(transmitted_payloads: List[str], decoded_payloads: List[str]) -> int:
    """Multiset intersection size of hex payload lists (inflation-proof)."""
    offered = Counter(transmitted_payloads)
    decoded = Counter(decoded_payloads)
    return sum((offered & decoded).values())


def run_variant(
    spec: ScenarioSpec,
    n_nodes: int,
    variant: str,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    profiler: Optional[KernelProfiler] = None,
) -> Tuple[VariantResult, int]:
    """Run one decoder variant over one freshly synthesized sweep point.

    Both variants rebuild the source from the same derived seed, so they
    consume bit-identical air; returns the result and the source's peak
    resident frame count (the streaming-memory evidence).  ``profiler``
    (optional, shared across points) accumulates the campaign's kernel
    table; resource accounting (CPU, peak RSS) is always on -- it costs
    two clock reads per variant.
    """
    telemetry = Telemetry()
    source = build_source(
        spec, n_nodes, seed=seed, duration_s=duration_s, telemetry=telemetry
    )
    gateway = build_gateway(
        spec, variant=variant, telemetry=telemetry, profiler=profiler
    )
    with ResourceAccountant() as accountant:
        report = gateway.run(source)
    resources = accountant.summary
    transmitted = [p.payload.hex() for p in source.transmitted]
    decoded = [p.hex() for p in report.decoded_payloads]
    result = VariantResult(
        variant=variant,
        packets_offered=source.packets_scheduled,
        packets_decoded=report.packets_decoded,
        packets_delivered=delivered_count(transmitted, decoded),
        crc_failures=report.crc_failures,
        wall_s=report.wall_s,
        stream_s=report.stream_s,
        cpu_s=resources.cpu_s,
        max_rss_kb=int(resources.peak_rss_kb),
    )
    return result, source.active_peak


def run_point(
    spec: ScenarioSpec,
    n_nodes: int,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    profiler: Optional[KernelProfiler] = None,
) -> SweepPoint:
    """One sweep point: same air, two decoders, one comparison."""
    choir, peak_choir = run_variant(
        spec, n_nodes, "choir", duration_s=duration_s, seed=seed,
        profiler=profiler,
    )
    baseline, peak_baseline = run_variant(
        spec, n_nodes, "baseline", duration_s=duration_s, seed=seed,
        profiler=profiler,
    )
    effective_duration = spec.sweep.duration_s if duration_s is None else duration_s
    return SweepPoint(
        n_nodes=n_nodes,
        duration_s=effective_duration,
        offered_load_erlangs=offered_load_erlangs(spec, n_nodes),
        choir=choir,
        baseline=baseline,
        source_active_peak=max(peak_choir, peak_baseline),
    )


@dataclass(frozen=True)
class CapacityCurve:
    """A full campaign: the scenario and its sweep points, in axis order."""

    scenario: ScenarioSpec
    points: Tuple[SweepPoint, ...]

    def ordering_violations(
        self, strict_above: int = DEFAULT_STRICT_ABOVE
    ) -> List[str]:
        """Where the Choir-vs-standard capacity ordering fails.

        Choir's delivery rate must be >= the baseline's at *every* point,
        and strictly above it once the population reaches ``strict_above``
        nodes (below that, collisions can be too rare to separate the
        decoders).  Empty list = the curve has the paper's shape.
        """
        problems: List[str] = []
        for point in self.points:
            c = point.choir.delivery_rate
            b = point.baseline.delivery_rate
            if c < b:
                problems.append(
                    f"n={point.n_nodes}: choir delivery {c:.3f} below "
                    f"baseline {b:.3f}"
                )
            elif point.n_nodes >= strict_above and c <= b:
                problems.append(
                    f"n={point.n_nodes}: choir delivery {c:.3f} not strictly "
                    f"above baseline {b:.3f} (required for n >= {strict_above})"
                )
        return problems

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form of this record."""
        return {
            "scenario": self.scenario.to_dict(),
            "points": [point.to_dict() for point in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the curve (scenario + points) as pretty JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """Plot-ready CSV: one row per sweep point, both variants inline."""
        buf = io.StringIO()
        buf.write(
            "n_nodes,offered_load_erlangs,duration_s,"
            "choir_delivery_rate,baseline_delivery_rate,capacity_gain,"
            "choir_packets_offered,choir_packets_delivered,"
            "baseline_packets_delivered,"
            "choir_realtime_factor,baseline_realtime_factor,"
            "source_active_peak\n"
        )
        for p in self.points:
            buf.write(
                f"{p.n_nodes},{p.offered_load_erlangs:.6f},{p.duration_s},"
                f"{p.choir.delivery_rate:.6f},{p.baseline.delivery_rate:.6f},"
                f"{p.capacity_gain:.6f},"
                f"{p.choir.packets_offered},{p.choir.packets_delivered},"
                f"{p.baseline.packets_delivered},"
                f"{p.choir.realtime_factor:.4f},"
                f"{p.baseline.realtime_factor:.4f},"
                f"{p.source_active_peak}\n"
            )
        return buf.getvalue()

    def chart(self, width: int = 50) -> str:
        """ASCII capacity curve: delivery rate vs node count, both variants."""
        lines = [
            f"capacity curve: {self.scenario.name}",
            f"  {'nodes':>7}  {'load G':>7}  {'choir':>6}  {'std':>6}  "
            f"{'gain':>6}  delivery (C=choir, s=standard)",
        ]
        for p in self.points:
            c_col = int(round(p.choir.delivery_rate * width))
            b_col = int(round(p.baseline.delivery_rate * width))
            bar = [" "] * (width + 1)
            bar[min(b_col, width)] = "s"
            bar[min(c_col, width)] = "C" if c_col != b_col else "*"
            gain = (
                f"{p.capacity_gain:6.2f}"
                if p.capacity_gain != float("inf")
                else "   inf"
            )
            lines.append(
                f"  {p.n_nodes:>7}  {p.offered_load_erlangs:>7.3f}  "
                f"{p.choir.delivery_rate:>6.3f}  "
                f"{p.baseline.delivery_rate:>6.3f}  {gain}  |{''.join(bar)}|"
            )
        return "\n".join(lines)


def run_campaign(
    spec: ScenarioSpec,
    node_counts: Optional[List[int]] = None,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
    profiler: Optional[KernelProfiler] = None,
) -> CapacityCurve:
    """Run the full sweep and return the capacity curve.

    ``node_counts``/``duration_s``/``seed`` override the scenario's sweep
    section (the CI job shrinks the committed scenario this way instead of
    maintaining a second file).  ``on_point`` observes each completed
    point -- progress reporting for multi-minute sweeps.  ``profiler``
    (optional) accumulates one kernel table across every variant of
    every point, for the campaign's run manifest.
    """
    counts = list(node_counts) if node_counts is not None else list(
        spec.sweep.node_counts
    )
    points: List[SweepPoint] = []
    for n_nodes in counts:
        point = run_point(
            spec, n_nodes, duration_s=duration_s, seed=seed, profiler=profiler
        )
        points.append(point)
        if on_point is not None:
            on_point(point)
    return CapacityCurve(scenario=spec, points=tuple(points))
