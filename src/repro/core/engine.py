"""Vectorized residual engine: batched Eqn. 3 evaluation without redundant work.

Every sub-bin search in the receiver -- offset refinement (Algm. 1), the
delay search, SIC cluster consolidation, the Fig. 4 surface -- reduces to
"score the reconstruction residual at many trial offsets".  The scalar
reference (:func:`repro.core.residual.residual_power`) rebuilds the full
tone matrix and runs an SVD-based ``np.linalg.lstsq`` per trial, which made
decode the pipeline bottleneck.  :class:`ResidualEngine` owns the preamble
windows once and removes the redundancy:

* **Cached bases** -- the sample-index phasor basis and per-user tone
  columns are memoized on ``(n_samples, position, delay)``, so the fixed
  users' columns are never rebuilt across trials, sweeps, or SIC tiers.
* **Normal equations** -- channel solves use the Gram system
  ``G h = E^H z`` (one ``K x K`` LU solve) instead of a per-call SVD, and
  the residual comes from the fit identity
  ``R = ||z||^2 - Re(b^H h)`` without materializing the reconstruction.
* **Rank-1 candidate scoring** -- during coordinate descent only user
  ``k``'s column changes, so :class:`CandidateView` factors the other
  users' Gram block once and scores a whole *vector* of trial columns via
  the Schur complement: per batch, one ``(N x J) x (N x C)`` GEMM and
  O(J^2 (C + M)) solve work, instead of C full refactorizations.
* **Batched full evaluation** -- :meth:`ResidualEngine.residuals_at`
  scores a stack of complete trial-offset vectors with one batched
  ``np.linalg.solve`` (used by the Fig. 4 surface, where two columns vary
  at once).

Per-trial complexity for M windows, K users, N samples, C candidates:

==============================  ======================================
Path                            Cost per candidate
==============================  ======================================
scalar ``residual_power``       SVD ``O(N K^2)`` + matrix build ``O(NK)``
engine ``residual``             ``O(N K^2)`` GEMM, cached columns
engine ``residuals_at``         ``O(N K^2 + N K M / C)`` batched BLAS
``CandidateView.residuals``     ``O(N (J + M))`` amortized, one GEMM
==============================  ======================================

Agreement with the scalar path is exact up to conditioning: tests assert
``<= 1e-9`` on residual values and ``<= tol_bins`` on refined positions.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.core.dechirp import cached_sample_index
from repro.profile import context as profile_context
from repro.profile.profiler import shape_bucket

#: Relative Schur-complement floor below which a candidate column is
#: treated as linearly dependent on the fixed users' columns (the fit gain
#: is then zero, matching the pseudo-inverse limit of the scalar path).
_SCHUR_FLOOR = 1e-12


@lru_cache(maxsize=4096)
def _cached_column(n_samples: int, mu: float, delta: float) -> np.ndarray:
    """One user's (possibly delay-aware) model column, memoized read-only.

    Reproduces :func:`repro.core.chanest.tone_matrix` column-by-column: a
    pure tone at ``mu`` bins whose first ``delta`` samples carry the
    boundary-glitch phase jump ``exp(2j*pi*(N/2 - delta))``.
    """
    n = cached_sample_index(n_samples)
    column = np.exp(2j * np.pi * np.outer(n, [mu]) / n_samples)[:, 0]
    delta = float(delta % n_samples)
    if delta > 0.0:
        head = n < delta
        column[head] *= np.exp(2j * np.pi * (n_samples / 2.0 - delta))
    column.setflags(write=False)
    return column


def _phasor_columns(n: np.ndarray, mus: np.ndarray, n_samples: int) -> np.ndarray:
    """Pure-tone columns ``exp(2j*pi*n*mu/N)`` for each ``mu``.

    Bracket searches evaluate *uniform* grids, and a uniform grid is a
    geometric progression in the phasor domain: ``col(mu + c*step) =
    col(mu) * ratio**c``.  Detecting that case replaces the dense ``N x C``
    complex exp (the single hottest kernel in coordinate descent) with two
    length-``N`` exps and ``C - 1`` complex multiplies; the accumulated
    round-off over a bracket-sized grid is ~``C * eps``, far below the
    1e-9 agreement bound the tests assert.
    """
    if mus.size >= 3:
        diffs = np.diff(mus)
        step = diffs[0]
        if np.all(np.abs(diffs - step) <= 1e-12):
            first = np.exp(2j * np.pi * n * (mus[0] / n_samples))
            columns = np.empty((n.size, mus.size), dtype=complex)
            columns[:, 0] = first
            if abs(step) <= 1e-15:
                columns[:, 1:] = first[:, None]
                return columns
            ratio = np.exp(2j * np.pi * n * (step / n_samples))
            columns[:, 1:] = ratio[:, None]
            np.cumprod(columns, axis=1, out=columns)
            return columns
        # Batches like repeat(grid, D) (one column per (mu, delta) pair)
        # revisit each mu D times; compute unique columns and fan out.
        unique, inverse = np.unique(mus, return_inverse=True)
        if unique.size <= mus.size // 2:
            return _phasor_columns(n, unique, n_samples)[:, inverse]
    return np.exp(2j * np.pi * np.outer(n, mus) / n_samples)


def _candidate_columns(
    n_samples: int, mus: np.ndarray, deltas: object
) -> np.ndarray:
    """Stack of trial columns, shape ``(n_samples, n_candidates)``.

    ``mus`` and ``deltas`` broadcast against each other; ``deltas=None``
    means the pure-tone model (all delays zero).  A scalar delay shared by
    every candidate takes a prefix-slice fast path (the glitch head
    ``n < delta`` is a prefix of the sorted sample index).
    """
    mus = np.atleast_1d(np.asarray(mus, dtype=float))
    n = cached_sample_index(n_samples)
    columns = _phasor_columns(n, mus, n_samples)
    if deltas is None:
        return columns
    if np.ndim(deltas) == 0:
        delta = float(deltas) % n_samples
        if delta > 0.0:
            head = int(np.ceil(delta))
            columns[:head] *= np.exp(2j * np.pi * (n_samples / 2.0 - delta))
        return columns
    deltas_arr = np.asarray(deltas, dtype=float) % n_samples
    mus_b, deltas_arr = np.broadcast_arrays(mus, deltas_arr)
    if columns.shape[1] != deltas_arr.size:
        columns = np.repeat(columns, deltas_arr.size // columns.shape[1], axis=1)
    if np.any(deltas_arr > 0.0):
        # The glitch head is a prefix of the sorted sample index, so the
        # jump never applies where delta == 0 (n < 0 is empty) and the
        # whole adjustment is one in-place multiply by a selected factor.
        jump = np.exp(2j * np.pi * (n_samples / 2.0 - deltas_arr))
        columns *= np.where(
            n[:, None] < deltas_arr[None, :], jump[None, :], 1.0
        )
    return columns


class CandidateView:
    """Score trial columns against a *fixed* set of other users.

    Built once per coordinate (the fixed users' Gram block and fit are
    cached); each :meth:`residuals` call scores a whole candidate batch via
    the Schur complement of the bordered Gram system -- the incremental
    single-column update that makes coordinate descent O(K^2) per trial
    instead of a refactorization.
    """

    def __init__(
        self,
        engine: "ResidualEngine",
        fixed_positions: np.ndarray,
        fixed_delays: Optional[np.ndarray] = None,
    ) -> None:
        self._engine = engine
        e_o = engine.tone_columns(fixed_positions, fixed_delays)
        self._e_o = e_o
        self._e_o_conj_t = e_o.conj().T
        self._n_fixed = e_o.shape[1]
        if self._n_fixed:
            with profile_context.kernel(
                "engine.view_build",
                f"J{self._n_fixed}.M{engine.n_windows}",
                bytes_touched=e_o.nbytes + engine.windows.nbytes,
            ):
                gram = self._e_o_conj_t @ e_o
                b_o = self._e_o_conj_t @ engine.windows.T  # (J, M)
                try:
                    # The Gram block is factored ONCE per view; every
                    # candidate batch reuses it as a cached K x K inverse
                    # (one small GEMM per batch instead of a LAPACK solve
                    # per trial).
                    self._gram_inv: Optional[np.ndarray] = np.linalg.inv(
                        gram
                    )
                    self._q = self._gram_inv @ b_o
                except np.linalg.LinAlgError:
                    # Degenerate fixed set: fall back to the
                    # pseudo-inverse fit.
                    self._gram_inv = None
                    self._q, *_ = np.linalg.lstsq(
                        e_o, engine.windows.T, rcond=None
                    )
                self._b_o = b_o
                self.base_fit = float(np.sum((np.conj(b_o) * self._q).real))
        else:
            self._gram_inv = None
            self._b_o = np.zeros((0, engine.n_windows), dtype=complex)
            self._q = self._b_o
            self.base_fit = 0.0

    def _schur(
        self, mus: np.ndarray, deltas: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Schur complement ``s`` and innovation ``t`` per candidate.

        ``s[c]`` is the candidate column's energy unexplained by the fixed
        users; ``t[m, c]`` is window ``m``'s correlation against the
        candidate after projecting out the fixed users' fit.
        """
        engine = self._engine
        n_cand = max(np.size(mus), 0 if deltas is None else np.size(deltas))
        with profile_context.kernel(
            "engine.schur_score",
            f"M{engine.n_windows}.J{self._n_fixed}.C{shape_bucket(n_cand)}",
            bytes_touched=16
            * engine.n_samples
            * (n_cand + engine.n_windows + self._n_fixed),
        ):
            correlations = self._correlations(mus, deltas)
            if correlations is not None:
                w, u = correlations
            else:
                columns = _candidate_columns(engine.n_samples, mus, deltas)
                w = np.conj(engine.windows_conj @ columns)  # (M, C)
                if not self._n_fixed:
                    s = np.full(columns.shape[1], float(engine.n_samples))
                    return s, w
                u = self._e_o_conj_t @ columns  # (J, C)
            if not self._n_fixed:
                return np.full(w.shape[1], float(engine.n_samples)), w
            if self._gram_inv is not None:
                p = self._gram_inv @ u
            else:
                columns = _candidate_columns(engine.n_samples, mus, deltas)
                p, *_ = np.linalg.lstsq(self._e_o, columns, rcond=None)
            u_conj = np.conj(u)
            s = engine.n_samples - np.einsum("jc,jc->c", u_conj, p).real
            t = w - (u_conj.T @ self._q).T  # (M, C)
            return s, t

    def _correlations(
        self, mus: np.ndarray, deltas: Optional[np.ndarray]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Candidate correlations ``(w, u)`` without materializing columns.

        Consolidation batches pair few unique tones with many trial delays
        (``repeat(mu_grid, D)``).  A delayed column differs from its pure
        tone only on the glitch head -- a *prefix* of the sample index
        scaled by the unit-magnitude jump -- so every inner product is the
        full-column product plus ``(jump - 1)`` times a prefix partial sum.
        Cumulative sums over the U unique tones give all C candidates by
        table lookup: O((M+J)*N*U + C*(M+J)) instead of O(N*C*(M+J)).
        Returns None when the batch shape does not profit (dense distinct
        tones, scalar/absent delays).
        """
        if deltas is None or np.ndim(deltas) == 0:
            return None
        engine = self._engine
        n_samples = engine.n_samples
        mus_arr = np.atleast_1d(np.asarray(mus, dtype=float))
        deltas_arr = np.asarray(deltas, dtype=float) % n_samples
        mus_b, deltas_b = np.broadcast_arrays(mus_arr, deltas_arr)
        unique, inverse = np.unique(mus_b, return_inverse=True)
        if unique.size * 4 > mus_b.size:
            return None
        n = cached_sample_index(n_samples)
        base = _phasor_columns(n, unique, n_samples)  # (N, U)
        heads = np.ceil(deltas_b).astype(int)  # head = {n : n < delta}
        jump = np.where(
            deltas_b > 0.0,
            np.exp(2j * np.pi * (n_samples / 2.0 - deltas_b)),
            1.0,
        )
        m_idx = np.arange(engine.n_windows)[:, None]
        # w[m, c] = <window_m, col_c>; prefix tables P[m, u, r] hold the
        # partial products over samples n < r.
        prefix = np.zeros(
            (engine.n_windows, unique.size, n_samples + 1), dtype=complex
        )
        np.cumsum(
            engine.windows[:, None, :] * np.conj(base.T)[None, :, :],
            axis=2,
            out=prefix[:, :, 1:],
        )
        w = prefix[:, :, -1][:, inverse] + (np.conj(jump) - 1.0)[None, :] * (
            prefix[m_idx, inverse[None, :], heads[None, :]]
        )
        if not self._n_fixed:
            return w, np.zeros((0, mus_b.size), dtype=complex)
        # u[j, c] = <e_j, col_c> (column NOT conjugated -> jump, not conj).
        j_idx = np.arange(self._n_fixed)[:, None]
        prefix_u = np.zeros(
            (self._n_fixed, unique.size, n_samples + 1), dtype=complex
        )
        np.cumsum(
            self._e_o_conj_t[:, None, :] * base.T[None, :, :],
            axis=2,
            out=prefix_u[:, :, 1:],
        )
        u = prefix_u[:, :, -1][:, inverse] + (jump - 1.0)[None, :] * (
            prefix_u[j_idx, inverse[None, :], heads[None, :]]
        )
        return w, u

    def residuals(
        self, mus: np.ndarray, deltas: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Summed residual power for each candidate column (one BLAS pass)."""
        engine = self._engine
        s, t = self._schur(mus, deltas)
        gain = np.zeros(s.shape)
        usable = s > _SCHUR_FLOOR * engine.n_samples
        if np.any(usable):
            gain[usable] = (
                np.sum(np.abs(t[:, usable]) ** 2, axis=0) / s[usable]
            )
        return np.maximum(engine.energy - self.base_fit - gain, 0.0)

    def candidate_channels(
        self, mus: np.ndarray, deltas: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-window LS amplitude of each candidate column, shape ``(M, C)``.

        This is the candidate's row of the joint fit (fixed users + the
        candidate); its per-window phase slope anchors ``frac(delta)``
        during cluster consolidation.
        """
        s, t = self._schur(mus, deltas)
        s = np.maximum(s, _SCHUR_FLOOR * self._engine.n_samples)
        return t / s[None, :]

    def minimize(
        self,
        lo: float,
        hi: float,
        tol: float = 1e-3,
        n_grid: int = 17,
        vary: str = "position",
        fixed: Optional[float] = None,
    ) -> float:
        """Batched bracketing search for the best candidate in ``[lo, hi]``.

        Evaluates ``n_grid`` equispaced candidates per round in one batch
        and shrinks the bracket around the minimum -- the vectorized
        replacement for the scalar golden-section loop (the bracket shrinks
        by ``2/(n_grid-1)`` per round, so convergence needs a handful of
        GEMM calls instead of dozens of sequential solves).

        ``vary`` selects which model parameter the bracket spans:
        ``"position"`` sweeps ``mu`` with the delay held at ``fixed``;
        ``"delay"`` sweeps the delay (clamped at zero) with ``mu`` held at
        ``fixed``.
        """
        if vary not in ("position", "delay"):
            raise ValueError(f"unknown vary kind: {vary!r}")
        a, b = float(lo), float(hi)
        grid = np.zeros(0)
        values = np.zeros(0)
        best = 0
        # Bracket to ~20x the tolerance, where the locally convex residual
        # (Fig. 4) is well inside its quadratic basin, then land the final
        # sub-tolerance step with one parabolic interpolation -- two or
        # three batched rounds replace ~30 sequential golden-section evals.
        while (b - a) > 20.0 * tol:
            grid = np.linspace(a, b, n_grid)
            if vary == "position":
                values = self.residuals(grid, fixed)
            else:
                values = self.residuals(
                    np.full(n_grid, fixed if fixed is not None else 0.0),
                    np.maximum(grid, 0.0),
                )
            best = int(np.argmin(values))
            a = grid[max(best - 1, 0)]
            b = grid[min(best + 1, n_grid - 1)]
        if grid.size == 0 or best == 0 or best == n_grid - 1:
            # Never sampled (bracket started small) or the minimum sits on
            # the bracket edge: sample once more so the vertex fit has an
            # interior triplet.
            grid = np.linspace(a, b, n_grid)
            if vary == "position":
                values = self.residuals(grid, fixed)
            else:
                values = self.residuals(
                    np.full(n_grid, fixed if fixed is not None else 0.0),
                    np.maximum(grid, 0.0),
                )
            best = int(np.argmin(values))
        if best == 0 or best == n_grid - 1:
            return float(grid[best])
        left, mid, right = values[best - 1], values[best], values[best + 1]
        denom = left - 2.0 * mid + right
        step = grid[1] - grid[0]
        if denom <= 0.0:
            return float(grid[best])
        vertex = grid[best] + 0.5 * (left - right) / denom * step
        return float(np.clip(vertex, grid[best] - step, grid[best] + step))


class ResidualEngine:
    """Owns a stack of dechirped windows; evaluates Eqn. 3 without waste.

    Parameters
    ----------
    windows:
        One dechirped window (1-D) or a stack ``(n_windows, n_samples)``.
        The array is copied defensively only if not already complex.
    """

    def __init__(self, windows: np.ndarray) -> None:
        rows = np.atleast_2d(np.asarray(windows))
        if not np.iscomplexobj(rows):
            rows = rows.astype(complex)
        self.windows = rows
        #: Conjugated windows, precomputed once: candidate scoring needs
        #: ``Z conj(E)`` per batch and ``conj(conj(Z) E)`` avoids the
        #: ``N x C`` conjugate copy of the (much larger) column block.
        self.windows_conj = np.conj(rows)
        self.n_windows = int(rows.shape[0])
        self.n_samples = int(rows.shape[-1])
        #: Total window energy ``||Z||^2`` -- the zero-user residual.
        self.energy = float(np.sum(np.abs(rows) ** 2))

    # ------------------------------------------------------------------
    # Model assembly
    # ------------------------------------------------------------------
    def tone_columns(
        self,
        positions_bins: np.ndarray,
        delays_samples: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Tone matrix ``(n_samples, K)`` assembled from cached columns."""
        positions = np.atleast_1d(np.asarray(positions_bins, dtype=float))
        if positions.size == 0:
            return np.zeros((self.n_samples, 0), dtype=complex)
        if delays_samples is None:
            delays = np.zeros(positions.size)
        else:
            delays = np.atleast_1d(np.asarray(delays_samples, dtype=float))
            if delays.size != positions.size:
                raise ValueError("delays_samples must match positions_bins in length")
        return np.stack(
            [
                _cached_column(self.n_samples, float(mu), float(delta))
                for mu, delta in zip(positions, delays)
            ],
            axis=-1,
        )

    def _fit(self, e: np.ndarray) -> Tuple[np.ndarray, float]:
        """Normal-equations LS fit: per-window channels and total fit power."""
        if e.shape[1] == 0:
            return np.zeros((self.n_windows, 0), dtype=complex), 0.0
        with profile_context.kernel(
            "engine.gram_solve",
            f"K{e.shape[1]}.M{self.n_windows}",
            bytes_touched=e.nbytes + self.windows.nbytes,
        ):
            gram = e.conj().T @ e
            b = e.conj().T @ self.windows.T  # (K, M)
            try:
                h = np.linalg.solve(gram, b)
            except np.linalg.LinAlgError:
                h, *_ = np.linalg.lstsq(e, self.windows.T, rcond=None)
            fit = float(np.sum((np.conj(b) * h).real))
            return h.T, fit

    # ------------------------------------------------------------------
    # Residual evaluation
    # ------------------------------------------------------------------
    def residual(
        self,
        positions_bins: np.ndarray,
        delays_samples: Optional[np.ndarray] = None,
    ) -> float:
        """Summed residual power at one trial offset vector (Eqn. 3)."""
        _, fit = self._fit(self.tone_columns(positions_bins, delays_samples))
        return max(self.energy - fit, 0.0)

    def channels(
        self,
        positions_bins: np.ndarray,
        delays_samples: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-window channel estimates ``(n_windows, K)`` (Eqn. 2)."""
        h, _ = self._fit(self.tone_columns(positions_bins, delays_samples))
        return h

    def residuals_at(
        self,
        candidates: np.ndarray,
        delays_samples: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Score a whole stack of trial offset vectors in one batched solve.

        ``candidates`` has shape ``(C, K)`` (or ``(C,)`` for K=1);
        ``delays_samples`` may be ``None``, per-user ``(K,)``, or
        per-candidate ``(C, K)``.  Returns the ``C`` residual powers.
        """
        candidates = np.asarray(candidates, dtype=float)
        if candidates.ndim == 1:
            candidates = candidates[:, None]
        n_cand, n_users = candidates.shape
        if n_users == 0:
            return np.full(n_cand, self.energy)
        with profile_context.kernel(
            "engine.batched_solve",
            f"C{shape_bucket(n_cand)}.K{n_users}",
            bytes_touched=16 * n_cand * self.n_samples * n_users,
        ):
            return self._residuals_at_batched(
                candidates, delays_samples, n_cand, n_users
            )

    def _residuals_at_batched(
        self,
        candidates: np.ndarray,
        delays_samples: Optional[np.ndarray],
        n_cand: int,
        n_users: int,
    ) -> np.ndarray:
        """The batched-solve body of :meth:`residuals_at`."""
        n = cached_sample_index(self.n_samples)
        e = np.exp(
            2j * np.pi * n[None, :, None] * candidates[:, None, :] / self.n_samples
        )  # (C, N, K)
        if delays_samples is not None:
            deltas = np.asarray(delays_samples, dtype=float)
            if deltas.ndim == 1:
                deltas = np.broadcast_to(deltas, (n_cand, n_users))
            deltas = deltas % self.n_samples
            if np.any(deltas > 0.0):
                jump = np.exp(2j * np.pi * (self.n_samples / 2.0 - deltas))
                head = n[None, :, None] < deltas[:, None, :]
                e = np.where(
                    head & (deltas > 0.0)[:, None, :], e * jump[:, None, :], e
                )
        gram = np.einsum("cnk,cnl->ckl", np.conj(e), e)
        b = np.einsum("cnk,mn->ckm", np.conj(e), self.windows)
        try:
            h = np.linalg.solve(gram, b)
        except np.linalg.LinAlgError:
            # Some candidate's Gram block is singular: score one by one so
            # only the degenerate entries pay the pseudo-inverse path.
            out = np.empty(n_cand)
            deltas_arr = (
                None
                if delays_samples is None
                else np.broadcast_to(
                    np.asarray(delays_samples, dtype=float), (n_cand, n_users)
                )
            )
            for c in range(n_cand):
                out[c] = self.residual(
                    candidates[c], None if deltas_arr is None else deltas_arr[c]
                )
            return out
        fit = np.einsum("ckm,ckm->c", np.conj(b), h).real
        return np.maximum(self.energy - fit, 0.0)

    # ------------------------------------------------------------------
    # Coordinate-descent refinement (Algm. 1, vectorized)
    # ------------------------------------------------------------------
    def view(
        self,
        positions_bins: np.ndarray,
        delays_samples: Optional[np.ndarray],
        k: int,
    ) -> CandidateView:
        """A :class:`CandidateView` with user ``k`` removed from the model."""
        positions = np.atleast_1d(np.asarray(positions_bins, dtype=float))
        keep = np.ones(positions.size, dtype=bool)
        keep[k] = False
        delays = (
            None
            if delays_samples is None
            else np.atleast_1d(np.asarray(delays_samples, dtype=float))[keep]
        )
        return CandidateView(self, positions[keep], delays)

    def refine(
        self,
        coarse_positions: np.ndarray,
        half_width_bins: float = 0.6,
        delays_samples: Optional[np.ndarray] = None,
        n_sweeps: int = 2,
        tol_bins: float = 1e-3,
        n_grid: int = 17,
    ) -> np.ndarray:
        """Cyclic coordinate refinement with batched bracketing (Algm. 1).

        Functionally matches the scalar
        :func:`repro.core.offsets.refine_offsets` coordinate path (tests
        assert agreement within ``tol_bins``) while scoring each bracket
        round as a single batch against a per-coordinate
        :class:`CandidateView`.
        """
        positions = np.atleast_1d(np.asarray(coarse_positions, dtype=float)).copy()
        if positions.size == 0:
            return positions
        delays = (
            None
            if delays_samples is None
            else np.atleast_1d(np.asarray(delays_samples, dtype=float))
        )
        with profile_context.kernel(
            "engine.refine", f"K{positions.size}.M{self.n_windows}"
        ):
            return self._refine_sweeps(
                positions, delays, half_width_bins, n_sweeps, tol_bins, n_grid
            )

    def _refine_sweeps(
        self,
        positions: np.ndarray,
        delays: Optional[np.ndarray],
        half_width_bins: float,
        n_sweeps: int,
        tol_bins: float,
        n_grid: int,
    ) -> np.ndarray:
        """The cyclic sweep body of :meth:`refine`."""
        prev_move = np.full(positions.size, np.inf)
        for sweep in range(n_sweeps):
            moved = np.zeros(positions.size)
            for k in range(positions.size):
                fixed_delta = None if delays is None else float(delays[k])
                view = self.view(positions, delays, k)
                # After the first sweep each coordinate only absorbs the
                # leakage from its neighbors' updates, so the bracket can
                # shrink toward the previous movement -- with a full-width
                # retry if the narrowed bracket clips the minimum.
                if sweep == 0:
                    width = half_width_bins
                else:
                    width = min(
                        half_width_bins,
                        max(40.0 * tol_bins, 4.0 * float(prev_move[k])),
                    )
                updated = view.minimize(
                    positions[k] - width,
                    positions[k] + width,
                    tol=tol_bins,
                    n_grid=n_grid,
                    fixed=fixed_delta,
                )
                if width < half_width_bins and abs(updated - positions[k]) > 0.9 * width:
                    updated = view.minimize(
                        positions[k] - half_width_bins,
                        positions[k] + half_width_bins,
                        tol=tol_bins,
                        n_grid=n_grid,
                        fixed=fixed_delta,
                    )
                moved[k] = abs(updated - positions[k])
                positions[k] = updated
            prev_move = moved
            if float(moved.max()) <= tol_bins:
                # Converged: another sweep could move nothing beyond tol.
                break
        return positions
