"""Frequency-offset estimation: coarse peaks, sub-bin refinement, CFO/TO split.

Implements the paper's Algm. 1 and Secs. 5.1/6:

1. **Coarse**: average the oversampled power spectra of the preamble
   windows, detect peaks -- positions accurate to ~1/oversample of a bin.
2. **Fine**: jointly refine all positions by minimizing the reconstruction
   residual (Eqn. 3-4).  The residual is locally convex around the truth
   (Fig. 4), so cyclic per-coordinate golden-section descent from the
   coarse estimate converges quickly; a Nelder-Mead restart search is also
   available, matching the paper's stochastic descent with random starts.
3. **Delays**: each user's sub-symbol timing offset is recovered by a 1-D
   residual search over the delay-aware window model (the boundary-glitch
   model in :func:`repro.core.chanest.tone_matrix`), realizing Sec. 6.2's
   separate tracking of timing and frequency offsets.  The user's CFO then
   follows as ``cfo = mu + delay`` (Eqn. 5 rearranged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.chanest import estimate_channels
from repro.core.dechirp import DEFAULT_OVERSAMPLE, dechirp_windows, oversampled_spectrum
from repro.core.engine import ResidualEngine
from repro.core.peaks import Peak, find_peaks
from repro.core.residual import residual_power
from repro.phy.params import LoRaParams
from repro.utils import RngLike, ensure_rng

#: Largest sub-symbol delay (in samples) the delay search considers.  The
#: beacon-slotted MAC keeps wake-up offsets well under this (Sec. 7.1).
DEFAULT_MAX_DELAY = 64.0


@dataclass
class UserEstimate:
    """Everything Choir learns about one user from the preamble.

    Attributes
    ----------
    position_bins:
        Refined aggregate offset ``mu = cfo - delay`` in FFT bins, in
        ``[0, N)``; its fractional part is the user's tracking signature.
    channels:
        Per-preamble-window complex channel estimates ``h_m``.
    delay_samples:
        Estimated sub-symbol timing offset (0 when the delay search is
        skipped).
    phase_slope_cycles:
        Average channel rotation per window, i.e. the CFO in cycles/window
        (equivalently the CFO's value modulo one bin).
    snr_db:
        Estimated per-user SNR from ``|h|^2`` against the residual noise.
    """

    position_bins: float
    channels: np.ndarray
    delay_samples: float = 0.0
    phase_slope_cycles: float = 0.0
    snr_db: float = 0.0

    @property
    def fractional(self) -> float:
        """Fractional part of the aggregate offset (tracking signature)."""
        return float(self.position_bins % 1.0)

    @property
    def cfo_bins(self) -> float:
        """Estimated CFO in bins: ``mu + delay`` (Eqn. 5 rearranged)."""
        return float(self.position_bins + self.delay_samples)

    @property
    def channel_magnitude(self) -> float:
        """Mean channel magnitude across preamble windows."""
        return float(np.mean(np.abs(self.channels)))

    @property
    def channel_power(self) -> float:
        """Mean channel power across preamble windows."""
        return float(np.mean(np.abs(self.channels) ** 2))

    @property
    def cfo_frac_bins(self) -> float:
        """CFO modulo one bin, from the per-window phase slope."""
        return float(self.phase_slope_cycles % 1.0)

    @property
    def delay_frac_samples(self) -> float:
        """Timing offset modulo one sample: ``(cfo - mu) mod 1`` (Eqn. 5)."""
        return float((self.phase_slope_cycles - self.position_bins) % 1.0)

    def channel_at_window(self, window_index: int) -> complex:
        """Extrapolated channel for a later (data) window.

        Magnitude is the preamble mean; phase advances by the measured
        slope from the preamble's coherent reference.
        """
        n_pre = self.channels.size
        base = np.mean(
            self.channels * np.exp(-2j * np.pi * self.phase_slope_cycles * np.arange(n_pre))
        )
        return complex(base * np.exp(2j * np.pi * self.phase_slope_cycles * window_index))


# ----------------------------------------------------------------------
# Coarse estimation
# ----------------------------------------------------------------------


def coarse_offsets(
    preamble_dechirped: np.ndarray,
    oversample: int = DEFAULT_OVERSAMPLE,
    threshold_snr: float = 4.0,
    max_users: int | None = None,
) -> list[Peak]:
    """Coarse peak positions from noncoherently averaged preamble spectra.

    Averaging the *power* spectra over the preamble windows suppresses the
    noise variance without needing phase coherence (the same accumulation
    Sec. 7.2 uses for below-noise detection).
    """
    spectra = oversampled_spectrum(np.atleast_2d(preamble_dechirped), oversample)
    mean_power = np.mean(np.abs(spectra) ** 2, axis=0)
    # find_peaks works on magnitude; hand it the root of the mean power and
    # keep phase information from the first window for the amplitudes.
    pseudo_spectrum = np.sqrt(mean_power) * np.exp(1j * np.angle(spectra[0]))
    return find_peaks(
        pseudo_spectrum,
        oversample,
        threshold_snr=threshold_snr,
        max_peaks=max_users,
    )


# ----------------------------------------------------------------------
# Fine refinement (Eqn. 4 / Algm. 1)
# ----------------------------------------------------------------------

_GOLDEN = (np.sqrt(5.0) - 1.0) / 2.0


def golden_section_minimize(fun, lo: float, hi: float, tol: float = 1e-4) -> float:
    """Golden-section search for the minimum of a unimodal 1-D function."""
    a, b = float(lo), float(hi)
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = fun(c), fun(d)
    while (b - a) > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = fun(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = fun(d)
    return (a + b) / 2.0


def refine_offsets(
    dechirped_windows_arr: np.ndarray,
    coarse_positions: np.ndarray,
    half_width_bins: float = 0.6,
    delays_samples: np.ndarray | None = None,
    n_sweeps: int = 2,
    tol_bins: float = 1e-3,
    method: str = "coordinate",
    rng: RngLike = None,
) -> np.ndarray:
    """Refine offsets to sub-bin accuracy by residual minimization.

    ``method="coordinate"`` (default) performs cyclic coordinate sweeps,
    one offset at a time with the others held fixed -- fast and reliable
    thanks to the local convexity of the residual (Fig. 4) -- routed
    through :class:`repro.core.engine.ResidualEngine`, which scores each
    bracket round as one batched solve.  ``method="coordinate-scalar"``
    runs the original per-trial golden-section loop over
    :func:`repro.core.residual.residual_power`; it is the reference the
    engine path is tested against (agreement within ``tol_bins``).
    ``method="nelder-mead"`` runs the joint simplex search with random
    restarts, mirroring the paper's stochastic-descent description; it is
    slower but jointly optimal, and tests verify both agree.
    """
    coarse_positions = np.atleast_1d(np.asarray(coarse_positions, dtype=float))
    rows = np.atleast_2d(dechirped_windows_arr)
    if coarse_positions.size == 0:
        return coarse_positions
    if method == "coordinate":
        return ResidualEngine(rows).refine(
            coarse_positions,
            half_width_bins=half_width_bins,
            delays_samples=delays_samples,
            n_sweeps=n_sweeps,
            tol_bins=tol_bins,
        )
    if method == "coordinate-scalar":
        positions = coarse_positions.copy()
        for _ in range(n_sweeps):
            for k in range(positions.size):
                def fun(x: float, k: int = k) -> float:
                    trial = positions.copy()
                    trial[k] = x
                    return residual_power(rows, trial, delays_samples)

                positions[k] = golden_section_minimize(
                    fun,
                    positions[k] - half_width_bins,
                    positions[k] + half_width_bins,
                    tol=tol_bins,
                )
        return positions
    if method == "nelder-mead":
        return _refine_nelder_mead(
            rows, coarse_positions, half_width_bins, delays_samples, rng=rng
        )
    raise ValueError(f"unknown refinement method: {method!r}")


def _refine_nelder_mead(
    rows: np.ndarray,
    coarse_positions: np.ndarray,
    half_width_bins: float,
    delays_samples: np.ndarray | None,
    n_restarts: int = 2,
    rng: RngLike = None,
) -> np.ndarray:
    """Joint Nelder-Mead refinement with random restarts."""
    rng = ensure_rng(rng)
    lower = coarse_positions - half_width_bins
    upper = coarse_positions + half_width_bins

    def objective(x: np.ndarray) -> float:
        if np.any(x < lower) or np.any(x > upper):
            return 1e18
        return residual_power(rows, x, delays_samples)

    best_x = coarse_positions.copy()
    best_val = objective(best_x)
    starts = [coarse_positions]
    for _ in range(max(n_restarts - 1, 0)):
        starts.append(coarse_positions + rng.uniform(-0.3, 0.3, coarse_positions.size))
    for start in starts:
        result = optimize.minimize(
            objective,
            start,
            method="Nelder-Mead",
            options={
                "xatol": 1e-4,
                "fatol": 1e-9,
                "maxiter": 200 * coarse_positions.size,
            },
        )
        if result.fun < best_val:
            best_val = float(result.fun)
            best_x = np.asarray(result.x, dtype=float)
    return best_x


# ----------------------------------------------------------------------
# Delay (timing offset) estimation
# ----------------------------------------------------------------------


def estimate_delays(
    dechirped_windows_arr: np.ndarray,
    positions_bins: np.ndarray,
    max_delay_samples: float = DEFAULT_MAX_DELAY,
    coarse_step: float = 1.0,
    n_passes: int = 2,
    min_improvement: float = 1e-3,
    lobe_tie_rel: float = 1e-3,
    use_engine: bool = True,
) -> np.ndarray:
    """Estimate each user's sub-symbol delay from the boundary glitch.

    For fixed offsets, the residual as a function of one user's delay is
    minimized when the delay-aware window model (phase-jump position and
    magnitude) matches reality.  A coarse grid search followed by a
    golden-section polish recovers the delay to sub-sample accuracy.

    Users are processed strongest-first, holding the others' current delay
    estimates fixed, and the sweep is repeated ``n_passes`` times: the
    first pass's landscape for one user can be flattened by another user's
    still-unmodelled glitch, and the second pass cleans that up (plain
    coordinate descent).  A candidate delay is only accepted when it
    improves the residual by a relative ``min_improvement`` -- a flat
    landscape means the glitch is unobservable (or zero), so the estimate
    stays put rather than chasing noise.

    The glitch *phase* depends only on ``frac(delta)``, so the integer
    lobes of the delay landscape are discriminated solely by the glitch
    head's length -- a weak signal that noise easily inverts.  Among grid
    lobes within a relative ``lobe_tie_rel`` of the best residual the
    search therefore prefers the **smallest** delay (the beacon-slotted
    MAC keeps wake-up offsets small, and a too-large delay corrupts far
    more of the data-stage window model than a too-small one).

    With ``use_engine`` (the default) each user's delay grid is scored as
    one batched Schur-complement pass against a
    :class:`repro.core.engine.CandidateView` of the other users;
    ``use_engine=False`` keeps the original per-trial
    :func:`repro.core.residual.residual_power` loop as the reference.
    """
    rows = np.atleast_2d(np.asarray(dechirped_windows_arr))
    positions = np.atleast_1d(np.asarray(positions_bins, dtype=float))
    delays = np.zeros(positions.size)
    channels = np.atleast_2d(estimate_channels(rows, positions))
    strength_order = np.argsort(np.mean(np.abs(channels), axis=0))[::-1]
    # The glitch phase factor exp(2j*pi*(N/2 - delta)) depends only on
    # frac(delta) (and is invisible at integer delays!), so a plain grid
    # over delta misses the minimum entirely.  But frac(delta) is known
    # independently: the per-window channel phase slope measures the CFO
    # modulo one bin, and delta = cfo - mu (Eqn. 5), so
    # frac(delta) = (slope - mu) mod 1.  Search only integer offsets at
    # that fraction, then polish locally.
    fracs = np.zeros(positions.size)
    for k in range(positions.size):
        slope = _phase_slope(channels[:, k])
        fracs[k] = (slope - positions[k]) % 1.0
    engine = ResidualEngine(rows) if use_engine else None
    for _ in range(n_passes):
        for k in strength_order:
            k = int(k)
            grid = fracs[k] + np.arange(0.0, max_delay_samples, coarse_step)
            if engine is not None:
                view = engine.view(positions, delays, k)
                mu = float(positions[k])
                current_cost = float(
                    view.residuals(np.array([mu]), np.array([max(delays[k], 0.0)]))[0]
                )
                costs = view.residuals(
                    np.full(grid.size, mu), np.maximum(grid, 0.0)
                )
                # Occam lobe tie-break: grid is ascending, take the first
                # (smallest-delay) lobe within lobe_tie_rel of the best.
                tied = np.nonzero(
                    costs <= float(np.min(costs)) * (1.0 + lobe_tie_rel)
                )[0]
                best = int(tied[0])
                candidate = view.minimize(
                    grid[best] - 0.25,
                    grid[best] + 0.25,
                    tol=0.02,
                    vary="delay",
                    fixed=mu,
                )
                candidate_cost = float(
                    view.residuals(np.array([mu]), np.array([max(candidate, 0.0)]))[0]
                )
                if candidate_cost < current_cost * (1.0 - min_improvement):
                    delays[k] = max(candidate, 0.0)
                continue

            def fun(delta: float, k: int = k) -> float:
                trial = delays.copy()
                trial[k] = max(delta, 0.0)
                return residual_power(rows, positions, trial)

            current_cost = fun(delays[k])
            costs = np.array([fun(delta) for delta in grid])
            tied = np.nonzero(
                costs <= float(np.min(costs)) * (1.0 + lobe_tie_rel)
            )[0]
            best = int(tied[0])
            candidate = golden_section_minimize(
                fun, grid[best] - 0.25, grid[best] + 0.25, tol=0.02
            )
            if fun(candidate) < current_cost * (1.0 - min_improvement):
                delays[k] = max(candidate, 0.0)
    return delays


# ----------------------------------------------------------------------
# Full preamble pipeline
# ----------------------------------------------------------------------


def _phase_slope(channels: np.ndarray) -> float:
    """Mean rotation (cycles/window) of a per-window channel sequence."""
    channels = np.asarray(channels)
    if channels.size < 2:
        return 0.0
    rotations = channels[1:] * np.conj(channels[:-1])
    mean_rotation = np.sum(rotations)
    if abs(mean_rotation) < 1e-30:
        return 0.0
    return float(np.angle(mean_rotation) / (2.0 * np.pi))


def estimate_offsets(
    params: LoRaParams,
    samples: np.ndarray,
    oversample: int = DEFAULT_OVERSAMPLE,
    threshold_snr: float = 4.0,
    max_users: int | None = None,
    refine: bool = True,
    estimate_timing: bool = True,
    rng: RngLike = None,
) -> list[UserEstimate]:
    """Estimate every discernible user's offset + channel from a preamble.

    ``samples`` must start at the (common) preamble window boundary.
    Windows 1 .. ``preamble_len - 1`` are used; window 0 is skipped because
    a delayed user's transmission has not started for its first ``delay``
    samples, which violates the steady-state window model the estimators
    fit.  Users whose peaks are below the detection threshold are absent
    from the result -- recovering them is the job of the phased SIC
    (:mod:`repro.core.sic`) and the below-noise detector
    (:mod:`repro.core.detection`).
    """
    windows = dechirp_windows(
        params,
        samples,
        n_windows=params.preamble_len - 1,
        start=params.samples_per_symbol,
    )
    if windows.shape[0] == 0:
        return []
    peaks = coarse_offsets(
        windows, oversample, threshold_snr=threshold_snr, max_users=max_users
    )
    if not peaks:
        return []
    positions = np.array([p.position_bins for p in peaks], dtype=float)
    if refine and positions.size:
        positions = refine_offsets(windows, positions, rng=rng)
    delays = (
        estimate_delays(windows, positions)
        if estimate_timing
        else np.zeros(positions.size)
    )
    return build_user_estimates(windows, positions, delays)


def build_user_estimates(
    preamble_windows: np.ndarray,
    positions_bins: np.ndarray,
    delays_samples: np.ndarray | None = None,
) -> list[UserEstimate]:
    """Package per-user channels, phase slopes and SNRs for fixed offsets."""
    rows = np.atleast_2d(preamble_windows)
    positions_bins = np.atleast_1d(np.asarray(positions_bins, dtype=float))
    if delays_samples is None:
        delays_samples = np.zeros(positions_bins.size)
    delays_samples = np.atleast_1d(np.asarray(delays_samples, dtype=float))
    channels = estimate_channels(rows, positions_bins, delays_samples)
    channels = np.atleast_2d(channels)
    residual = residual_power(rows, positions_bins, delays_samples)
    n_total = rows.size
    noise_per_sample = residual / max(n_total, 1)
    estimates = []
    for k in range(positions_bins.size):
        user_channels = channels[:, k]
        snr_linear = np.mean(np.abs(user_channels) ** 2) / max(noise_per_sample, 1e-30)
        estimates.append(
            UserEstimate(
                position_bins=float(positions_bins[k] % rows.shape[-1]),
                channels=user_channels.copy(),
                delay_samples=float(delays_samples[k]),
                phase_slope_cycles=_phase_slope(user_channels),
                snr_db=float(10.0 * np.log10(max(snr_linear, 1e-30))),
            )
        )
    estimates.sort(key=lambda u: u.channel_magnitude, reverse=True)
    return estimates
