"""Choir's core algorithms (the paper's contribution).

Pipeline, mirroring Secs. 4-7 of the paper:

1. :mod:`repro.core.dechirp` -- dechirp symbol windows and take oversampled
   (zero-padded) FFTs, turning each colliding chirp into a sinc-shaped peak.
2. :mod:`repro.core.peaks` -- detect peaks and read coarse positions.
3. :mod:`repro.core.chanest` / :mod:`repro.core.residual` /
   :mod:`repro.core.offsets` -- least-squares channel fits (Eqn. 2), the
   reconstruction residual (Eqn. 3), and sub-bin offset refinement by
   residual minimization over the locally convex surface (Eqn. 4, Algm. 1);
   :mod:`repro.core.engine` is the vectorized residual engine every sub-bin
   search routes through (cached tone columns, batched Schur-complement
   candidate scoring).
4. :mod:`repro.core.sic` -- phased successive interference cancellation for
   the near-far problem (Sec. 5.2).
5. :mod:`repro.core.isi` -- inter-symbol-interference peak de-duplication
   (Sec. 6.1, Fig. 5).
6. :mod:`repro.core.tracking` -- mapping symbols to users via fractional
   peak positions, channel magnitude and phase with must-link/cannot-link
   constraints (Sec. 6.2).
7. :mod:`repro.core.detection` / :mod:`repro.core.joint_ml` -- below-noise
   packet detection by accumulating preamble energy and maximum-likelihood
   joint decoding of correlated team transmissions (Sec. 7.2, Eqn. 6).
8. :mod:`repro.core.decoder` -- :class:`ChoirDecoder`, the end-to-end
   receiver tying all of it together.
9. :mod:`repro.core.fastpath` / :mod:`repro.core.cascade` -- the tiered
   decode cascade: a single-user O(N log N) Tier-0 decoder with a
   collision discriminator, escalating ambiguous/collided/CRC-failed
   windows to the full Choir pipeline (``build_pipeline`` selects the
   tier).
"""

from repro.core.dechirp import dechirp_windows, oversampled_spectrum
from repro.core.peaks import Peak, find_peaks
from repro.core.chanest import estimate_channels, reconstruct_tones, tone_matrix
from repro.core.engine import CandidateView, ResidualEngine
from repro.core.residual import residual_power
from repro.core.offsets import UserEstimate, estimate_offsets, refine_offsets
from repro.core.sic import phased_sic
from repro.core.isi import deduplicate_symbol_streams
from repro.core.tracking import ConstrainedClusterer, assign_peaks_to_users
from repro.core.detection import accumulate_preamble, detect_preamble
from repro.core.joint_ml import joint_ml_decode, template_correlation_decode
from repro.core.decoder import (
    DECODE_METHODS,
    TEAM_DECODE_METHODS,
    ChoirDecoder,
    DecodedUser,
    DecodeMethod,
    TeamDecodeMethod,
)
from repro.core.cascade import (
    DECODE_TIERS,
    CascadePipeline,
    ChoirPipeline,
    UserFrame,
    WindowDecode,
    build_pipeline,
)
from repro.core.fastpath import (
    CascadeThresholds,
    FastPathDecoder,
    PreambleEvidence,
)
from repro.core.multisf import (
    MultiSfDecoder,
    SfBranchResult,
    cross_sf_interference_penalty_db,
    reconstruct_user_waveform,
    subtract_branch,
)

__all__ = [
    "dechirp_windows",
    "oversampled_spectrum",
    "Peak",
    "find_peaks",
    "estimate_channels",
    "reconstruct_tones",
    "tone_matrix",
    "CandidateView",
    "ResidualEngine",
    "residual_power",
    "UserEstimate",
    "estimate_offsets",
    "refine_offsets",
    "phased_sic",
    "deduplicate_symbol_streams",
    "ConstrainedClusterer",
    "assign_peaks_to_users",
    "accumulate_preamble",
    "detect_preamble",
    "joint_ml_decode",
    "template_correlation_decode",
    "ChoirDecoder",
    "DecodedUser",
    "DecodeMethod",
    "TeamDecodeMethod",
    "DECODE_METHODS",
    "TEAM_DECODE_METHODS",
    "DECODE_TIERS",
    "CascadePipeline",
    "ChoirPipeline",
    "UserFrame",
    "WindowDecode",
    "build_pipeline",
    "CascadeThresholds",
    "FastPathDecoder",
    "PreambleEvidence",
    "MultiSfDecoder",
    "SfBranchResult",
    "cross_sf_interference_penalty_db",
    "reconstruct_user_waveform",
    "subtract_branch",
]
