"""The reconstruction residual (Eqn. 3) and its evaluation over grids.

``R(f1..fK) = || z - sum_k h_k(f) * tone(f_k) ||^2`` where the ``h_k`` are
the least-squares fits for the trial offsets.  The paper observes (Fig. 4)
that R is locally convex around the true offsets, which is what makes the
sub-bin search cheap; :func:`residual_surface` reproduces that figure and
the property-based tests assert the convexity.
"""

from __future__ import annotations

import numpy as np

from repro.core.chanest import estimate_channels, reconstruct_tones
from repro.core.engine import ResidualEngine


def residual_power(
    dechirped: np.ndarray,
    positions_bins: np.ndarray,
    delays_samples: np.ndarray | None = None,
) -> float:
    """Residual power after the best least-squares fit at trial offsets.

    Accepts one window or a stack of windows (the preamble); stacks return
    the *summed* residual, which is what the multi-window refinement
    minimizes.  ``delays_samples`` switches to the delay-aware window model
    (see :func:`repro.core.chanest.tone_matrix`).
    """
    dechirped = np.asarray(dechirped)
    rows = np.atleast_2d(dechirped)
    channels = estimate_channels(rows, positions_bins, delays_samples)
    recon = reconstruct_tones(positions_bins, channels, rows.shape[-1], delays_samples)
    return float(np.sum(np.abs(rows - recon) ** 2))


def residual_surface(
    dechirped: np.ndarray,
    center_bins: np.ndarray,
    span_bins: float = 1.0,
    n_points: int = 41,
    axes: tuple[int, int] = (0, 1),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate R on a 2-D grid around ``center_bins`` (reproduces Fig. 4).

    Varies the two offsets selected by ``axes`` over
    ``center +/- span_bins/2`` while holding any others fixed; returns
    ``(grid_i, grid_j, surface)``.

    Every grid cell sets *both* varied coordinates, so the cells are
    independent of evaluation order; the whole surface is therefore scored
    as one batched :meth:`repro.core.engine.ResidualEngine.residuals_at`
    call (a regression test pins it against the original scalar loop).
    """
    center_bins = np.asarray(center_bins, dtype=float)
    if center_bins.size < 2:
        raise ValueError("residual_surface needs at least two users")
    i, j = axes
    grid_i = center_bins[i] + np.linspace(-span_bins / 2, span_bins / 2, n_points)
    grid_j = center_bins[j] + np.linspace(-span_bins / 2, span_bins / 2, n_points)
    candidates = np.tile(center_bins, (n_points * n_points, 1))
    mesh_i, mesh_j = np.meshgrid(grid_i, grid_j, indexing="ij")
    candidates[:, i] = mesh_i.ravel()
    candidates[:, j] = mesh_j.ravel()
    surface = ResidualEngine(dechirped).residuals_at(candidates)
    return grid_i, grid_j, surface.reshape(n_points, n_points)
