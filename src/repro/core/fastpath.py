"""Tier-0 fast-path decoder: one dechirp-FFT-argmax per symbol.

The full :class:`repro.core.ChoirDecoder` earns its keep on collisions,
but a clean single-user capture -- the overwhelmingly common case at
realistic duty cycles -- does not need a residual search or candidate
grids.  This module implements the cheap first tier of the decode
cascade (DESIGN.md Sec. 16), in the spirit of the low-complexity CoRa
symbol detector and the Ghanaatian fine-synchronization receiver
(PAPERS.md):

1. **Energy-edge sync** -- an O(len) moving-average power edge locates
   the packet start to within a few samples; no grid search.  Residual
   misalignment shifts preamble and data tones identically, so it folds
   into the aggregate offset estimated next.
2. **Preamble fold-in** -- the preamble's accumulated oversampled
   spectrum gives one aggregate CFO+timing offset ``mu`` (Choir's
   fractional signature, Sec. 4); data windows are derotated by ``mu``
   so every tone lands on an integer FFT bin.
3. **Argmax decode** -- one plain (non-oversampled) FFT per data window;
   the argmax *is* the symbol.  O(N log N) per symbol, nothing else.

The same preamble pass doubles as the **collision discriminator**: a
clean capture shows one dominant accumulated peak whose per-window
position barely wanders, while a collision shows either a second peak
(separated users) or a smeared, window-unstable peak (near-collided
signatures).  :meth:`PreambleEvidence.classify` turns that evidence into
``clean`` / ``ambiguous`` / ``collided`` / ``no-preamble-peak``, which is
what :mod:`repro.core.cascade` escalates on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dechirp import cached_sample_index, dechirp_windows
from repro.core.decoder import DecodedUser
from repro.core.offsets import UserEstimate
from repro.core.peaks import find_peaks
from repro.phy.params import LoRaParams
from repro.profile import context as profile_context
from repro.profile.profiler import shape_bucket
from repro.utils import circular_distance

#: Discriminator verdicts (see :meth:`PreambleEvidence.classify`).
CLEAN = "clean"
AMBIGUOUS = "ambiguous"
COLLIDED = "collided"
NO_PREAMBLE = "no-preamble-peak"

#: Oversampling for the preamble analysis FFTs.  8x resolves the
#: fractional offset to 1/16 bin after parabolic refinement -- enough for
#: the derotation step -- at a fraction of the decoder's 10x cost.
FASTPATH_OVERSAMPLE = 8


@dataclass(frozen=True)
class CascadeThresholds:
    """Calibration of the collision discriminator.

    Calibrated on rendered single-user captures with full radio
    impairments (CFO + sub-symbol timing, 10-15 dB SNR): a clean capture
    measures a per-window fractional spread of ~0.02 bins and a
    second-peak power ratio of 0 (no secondary above the detector
    floor); see DESIGN.md Sec. 16 and tests/core/test_fastpath.py.

    Attributes
    ----------
    min_peak_snr:
        Accumulated peak power over the spectrum median below which no
        preamble is considered present at all (``no-preamble-peak``).
    collided_peak_ratio:
        Second-to-first accumulated peak *power* ratio above which the
        window holds two users.  A lone sinc's strongest sidelobe sits
        at -13 dB (~0.05 in power); 0.15 clears it with margin while
        still catching a 8 dB-weaker collider.
    ambiguous_spread_bins:
        RMS circular deviation (bins) of per-window peak positions from
        the aggregate peak above which the evidence is too unstable to
        trust a single-user read -- near-collided signatures beat
        against each other and smear the per-window argmax.
    """

    min_peak_snr: float = 2.0
    collided_peak_ratio: float = 0.15
    ambiguous_spread_bins: float = 0.08


@dataclass(frozen=True)
class PreambleEvidence:
    """What one preamble pass established about a packet window.

    Attributes
    ----------
    start_sample:
        Energy-edge packet start (offset into the analyzed window).
    mu_bins:
        Aggregate CFO+timing offset in FFT bins (parabolic-refined
        accumulated argmax); the fractional part is Choir's signature.
    peak_snr:
        Accumulated peak power over the spectrum median.
    second_peak_ratio:
        Second-to-first accumulated peak power ratio (0 when only one
        peak clears the detector floor).
    fractional_spread_bins:
        RMS circular deviation of per-window peak positions from
        ``mu_bins``.
    n_windows:
        Preamble windows actually accumulated (short windows truncate).
    """

    start_sample: int
    mu_bins: float
    peak_snr: float
    second_peak_ratio: float
    fractional_spread_bins: float
    n_windows: int

    def classify(self, thresholds: CascadeThresholds) -> str:
        """The discriminator verdict under ``thresholds``."""
        if self.n_windows < 2 or self.peak_snr < thresholds.min_peak_snr:
            return NO_PREAMBLE
        if self.second_peak_ratio > thresholds.collided_peak_ratio:
            return COLLIDED
        if self.fractional_spread_bins > thresholds.ambiguous_spread_bins:
            return AMBIGUOUS
        return CLEAN


class FastPathDecoder:
    """Single-user dechirp-argmax decoder with preamble CFO fold-in.

    One instance per PHY configuration; stateless across packets, so a
    single instance may serve every job of a (channel, SF) shard.
    """

    def __init__(
        self, params: LoRaParams, oversample: int = FASTPATH_OVERSAMPLE
    ) -> None:
        self.params = params
        self.oversample = oversample

    # ------------------------------------------------------------------
    # Stage 1: O(len) energy-edge synchronization
    # ------------------------------------------------------------------
    def estimate_packet_start(self, samples: np.ndarray) -> int:
        """Locate the packet's rising power edge, sample-coarse.

        A cumulative-sum moving average of ``|x|^2`` (window of n/8
        samples) crosses the midpoint between the leading noise floor
        and the in-packet level roughly half a window before the edge
        has fully entered it; adding half the window back lands within
        a few samples of the true start.  That residual shifts preamble
        and data identically and is absorbed by the ``mu`` fold-in.
        Captures with no leading noise degenerate to a start near 0,
        which is equally fine.
        """
        samples = np.asarray(samples)
        n = self.params.samples_per_symbol
        win = max(n // 8, 4)
        power = np.abs(samples) ** 2
        if power.size <= win:
            return 0
        csum = np.concatenate(([0.0], np.cumsum(power)))
        moving = (csum[win:] - csum[:-win]) / win
        floor = float(moving.min())
        level = float(np.percentile(moving, 90))
        if level <= floor * 1.5:
            return 0  # no discernible edge: signal (or noise) everywhere
        threshold = 0.5 * (floor + level)
        crossings = np.nonzero(moving >= threshold)[0]
        if crossings.size == 0:
            return 0
        return int(crossings[0]) + win // 2

    # ------------------------------------------------------------------
    # Stage 2: preamble analysis (offset estimate + discriminator)
    # ------------------------------------------------------------------
    def analyze_preamble(
        self, samples: np.ndarray, start: int
    ) -> PreambleEvidence:
        """Accumulate the preamble and measure the collision evidence.

        Skips the first preamble window: with sample-coarse sync a
        delayed packet's window 0 straddles the true edge and would
        smear the accumulation the remaining windows keep sharp.
        """
        params = self.params
        n = params.samples_per_symbol
        oversample = self.oversample
        windows = dechirp_windows(
            params,
            samples,
            n_windows=params.preamble_len - 1,
            start=start + n,
        )
        n_windows = windows.shape[0]
        if n_windows < 2:
            return PreambleEvidence(
                start_sample=start,
                mu_bins=0.0,
                peak_snr=0.0,
                second_peak_ratio=0.0,
                fractional_spread_bins=0.0,
                n_windows=n_windows,
            )
        with profile_context.kernel(
            "fastpath.preamble",
            f"N{n * oversample}.M{shape_bucket(n_windows)}",
            fft_count=n_windows,
            fft_points=n_windows * n * oversample,
            bytes_touched=16 * n_windows * n * (oversample + 1),
        ):
            spectra = np.abs(np.fft.fft(windows, n * oversample, axis=-1)) ** 2
            accumulated = spectra.mean(axis=0)
            peak_idx = int(np.argmax(accumulated))
            mu = _refine_parabolic(accumulated, peak_idx) / oversample % n
            peak_snr = float(
                accumulated[peak_idx] / max(float(np.median(accumulated)), 1e-30)
            )
            # Per-window argmax wander around the aggregate peak (bins).
            window_positions = np.argmax(spectra, axis=-1) / oversample
            deviations = circular_distance(window_positions, mu, period=float(n))
            spread = float(np.sqrt(np.mean(np.asarray(deviations) ** 2)))
            # Secondary-peak energy: a second user's tone survives the
            # accumulation as a distinct sinc the sidelobe-aware peak finder
            # separates from the primary.
            peaks = find_peaks(
                np.sqrt(accumulated).astype(complex),
                oversample,
                threshold_snr=4.0,
                max_peaks=2,
            )
            second_ratio = 0.0
            if len(peaks) >= 2 and peaks[0].magnitude > 0:
                second_ratio = float(
                    (peaks[1].magnitude / peaks[0].magnitude) ** 2
                )
        return PreambleEvidence(
            start_sample=start,
            mu_bins=float(mu),
            peak_snr=peak_snr,
            second_peak_ratio=second_ratio,
            fractional_spread_bins=spread,
            n_windows=n_windows,
        )

    # ------------------------------------------------------------------
    # Stage 3: argmax data decode
    # ------------------------------------------------------------------
    def decode(
        self,
        samples: np.ndarray,
        evidence: PreambleEvidence,
        n_data_symbols: int,
    ) -> DecodedUser:
        """Decode the data region under a single-user assumption.

        Each data window is derotated by ``exp(-2j pi mu t / N)`` so the
        user's tone lands on the integer bin equal to its symbol; one
        plain FFT per window and its argmax complete the decode.
        """
        params = self.params
        n = params.samples_per_symbol
        data_start = evidence.start_sample + params.preamble_len * n
        windows = dechirp_windows(
            params, samples, n_windows=n_data_symbols, start=data_start
        )
        with profile_context.kernel(
            "fastpath.argmax",
            f"N{n}.M{shape_bucket(windows.shape[0])}",
            fft_count=windows.shape[0],
            fft_points=windows.shape[0] * n,
            bytes_touched=32 * windows.shape[0] * n,
        ):
            derotator = np.exp(
                -2j * np.pi * evidence.mu_bins * cached_sample_index(n) / n
            )
            spectra = np.fft.fft(windows * derotator[None, :], axis=-1)
            symbols = np.argmax(np.abs(spectra), axis=-1).astype(int)
        # Channel estimates at mu from the accumulated preamble windows:
        # enough signature for downstream consumers (forensics reads the
        # fractional part; magnitudes gate nothing on this tier).
        preamble = dechirp_windows(
            params,
            samples,
            n_windows=params.preamble_len - 1,
            start=evidence.start_sample + n,
        )
        if preamble.shape[0]:
            probe = np.exp(
                -2j * np.pi * evidence.mu_bins * cached_sample_index(n) / n
            )
            channels = preamble @ probe / n
        else:
            channels = np.zeros(0, dtype=complex)
        estimate = UserEstimate(
            position_bins=float(evidence.mu_bins),
            channels=np.atleast_1d(channels),
        )
        return DecodedUser(estimate=estimate, symbols=symbols)


def _refine_parabolic(power: np.ndarray, index: int) -> float:
    """Sub-sample peak refinement on a circular power spectrum."""
    size = power.size
    left = power[(index - 1) % size]
    center = power[index]
    right = power[(index + 1) % size]
    denom = left - 2.0 * center + right
    if denom >= 0.0 or not np.isfinite(denom):
        return float(index)
    return float(index + 0.5 * (left - right) / denom)
