"""Phased successive interference cancellation (paper Sec. 5.2).

Classic SIC peels one transmitter at a time, which leaves leakage between
transmitters of *similar* power; pure joint fitting misses weak users whose
peaks are buried under strong users' side lobes.  Choir's middle road:

* detect every peak discernible in the current residual (a "tier" of
  comparable-power users),
* jointly refine the offsets (and sub-symbol delays) of **all users found
  so far** against the original signal and re-fit their channels (so
  strong users' leakage is modelled, not ignored),
* subtract the full reconstruction and look for newly exposed weak peaks,
* repeat until no peaks remain or a tier budget is exhausted.
"""

from __future__ import annotations

import numpy as np

from repro.core.chanest import estimate_channels, reconstruct_tones
from repro.core.dechirp import DEFAULT_OVERSAMPLE
from repro.core.engine import CandidateView, ResidualEngine
from repro.core.offsets import (
    UserEstimate,
    _phase_slope,
    build_user_estimates,
    coarse_offsets,
    estimate_delays,
    golden_section_minimize,
    refine_offsets,
)
from repro.core.residual import residual_power
from repro.profile import context as profile_context
from repro.trace import context as trace_context
from repro.utils import RngLike, circular_distance


def _merge_duplicates(
    positions: np.ndarray,
    delays: np.ndarray,
    windows: np.ndarray,
    min_separation_bins: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse positions the refinement pulled on top of each other.

    Two trial offsets converging to the same tone make the least-squares
    tone matrix ill-conditioned (amplitudes blow up pairwise); keep the
    stronger of any pair closer than ``min_separation_bins``.
    """
    if positions.size < 2:
        return positions, delays
    n_bins = windows.shape[-1]
    channels = np.atleast_2d(estimate_channels(windows, positions, delays))
    strength = np.mean(np.abs(channels), axis=0)
    order = np.argsort(strength)[::-1]
    kept: list[int] = []
    for idx in order:
        if all(
            circular_distance(positions[idx], positions[j], period=n_bins)
            >= min_separation_bins
            for j in kept
        ):
            kept.append(int(idx))
    kept.sort()
    return positions[kept], delays[kept]


def _find_clusters(positions: np.ndarray, n_bins: int, radius: float) -> list[list[int]]:
    """Connected components of users within ``radius`` bins of each other."""
    n = positions.size
    unvisited = set(range(n))
    clusters = []
    while unvisited:
        # Deterministic traversal: seed each component from its smallest
        # index and scan candidates in index order, so cluster emission
        # order never depends on set iteration order.
        seed = min(unvisited)
        unvisited.remove(seed)
        component = [seed]
        frontier = [seed]
        while frontier:
            i = frontier.pop()
            near = [
                j
                for j in sorted(unvisited)
                if circular_distance(positions[i], positions[j], period=n_bins)
                <= radius
            ]
            for j in near:
                unvisited.remove(j)
                component.append(j)
                frontier.append(j)
        clusters.append(sorted(component))
    return clusters


def _consolidate_clusters(
    windows: np.ndarray,
    positions: np.ndarray,
    delays: np.ndarray,
    cluster_radius_bins: float = 3.0,
    accept_factor: float = 1.1,
    max_delay: float = 64.0,
    use_engine: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Try replacing each tight user cluster with ONE delay-aware user.

    A single transmitter with a large sub-symbol delay smears its lobe over
    several bins; the coarse stage can fragment that smear into multiple
    spurious "users" whose joint fit is a poor local minimum.  For every
    cluster of users within ``cluster_radius_bins`` of each other, this
    runs a fresh joint (mu, delta) search for a *single* user (holding the
    out-of-cluster users fixed) and keeps the single-user model whenever
    its residual is within ``accept_factor`` of the cluster's -- standard
    penalized model-order selection.

    With ``use_engine`` (the default) the whole (mu, delta) grid for a
    cluster is scored as one Schur-complement batch against a
    :class:`repro.core.engine.CandidateView` of the out-of-cluster users;
    ``use_engine=False`` keeps the original scalar loop as the reference.
    """
    if positions.size < 2:
        return positions, delays
    n_bins = windows.shape[-1]
    engine = ResidualEngine(windows) if use_engine else None
    attempted: set[tuple[float, ...]] = set()
    while True:
        clusters = [
            c
            for c in _find_clusters(positions, n_bins, cluster_radius_bins)
            if len(c) >= 2
        ]
        cluster = next(
            (
                c
                for c in clusters
                if tuple(np.round(np.sort(positions[c]), 3)) not in attempted
            ),
            None,
        )
        if cluster is None:
            return positions, delays
        attempted.add(tuple(np.round(np.sort(positions[cluster]), 3)))
        keep = np.ones(positions.size, dtype=bool)
        keep[cluster] = False
        others_pos, others_del = positions[keep], delays[keep]
        lo = float(np.min(positions[cluster])) - 0.5
        hi = float(np.max(positions[cluster])) + 0.5
        if engine is not None:
            multi_residual = engine.residual(positions, delays)
            view = CandidateView(engine, others_pos, others_del)
            mu_grid = np.arange(lo, hi + 1e-9, 0.1)
            # Anchor frac(delta) per mu from the candidate's joint-fit
            # phase slope (Eqn. 5) -- candidate_channels returns exactly
            # the candidate's row of the joint fit, batched over the grid.
            cand_channels = view.candidate_channels(mu_grid, None)
            fracs = np.array(
                [
                    (_phase_slope(cand_channels[:, c]) - mu_grid[c]) % 1.0
                    for c in range(mu_grid.size)
                ]
            )
            delta_steps = np.arange(0.0, max_delay, 2.0)
            mus_flat = np.repeat(mu_grid, delta_steps.size)
            deltas_flat = (fracs[:, None] + delta_steps[None, :]).ravel()
            costs = view.residuals(mus_flat, deltas_flat)
            best_idx = int(np.argmin(costs))
            best_mu = float(mus_flat[best_idx])
            best_delta = float(deltas_flat[best_idx])
            # Polish only within the smooth neighbourhood: the residual
            # oscillates with frac(delta), so a wide bracket would hop lobes.
            best_delta = view.minimize(
                best_delta - 0.3,
                best_delta + 0.3,
                tol=0.02,
                vary="delay",
                fixed=best_mu,
            )
            single_residual = float(
                view.residuals(
                    np.array([best_mu]), np.array([max(best_delta, 0.0)])
                )[0]
            )
            if single_residual <= multi_residual * accept_factor:
                positions = np.concatenate([others_pos, [best_mu]])
                delays = np.concatenate([others_del, [max(best_delta, 0.0)]])
            continue
        multi_residual = residual_power(windows, positions, delays)
        best: tuple[float, float, float] | None = None  # (residual, mu, delta)
        for mu in np.arange(lo, hi + 1e-9, 0.1):
            trial_pos = np.concatenate([others_pos, [mu]])
            # Anchor frac(delta) from the candidate's phase slope (Eqn. 5).
            channels = np.atleast_2d(
                estimate_channels(windows, trial_pos, np.concatenate([others_del, [0.0]]))
            )
            frac = (_phase_slope(channels[:, -1]) - mu) % 1.0
            deltas = frac + np.arange(0.0, max_delay, 2.0)
            for delta in deltas:
                r = residual_power(
                    windows, trial_pos, np.concatenate([others_del, [delta]])
                )
                if best is None or r < best[0]:
                    best = (r, float(mu), float(delta))
        if best is None:
            continue
        _, best_mu, best_delta = best

        def fun(delta: float) -> float:
            return residual_power(
                windows,
                np.concatenate([others_pos, [best_mu]]),
                np.concatenate([others_del, [max(delta, 0.0)]]),
            )

        # Polish only within the smooth neighbourhood: the residual
        # oscillates with frac(delta), so a wide bracket would hop lobes.
        best_delta = golden_section_minimize(
            fun, best_delta - 0.3, best_delta + 0.3, tol=0.02
        )
        single_residual = fun(best_delta)
        if single_residual <= multi_residual * accept_factor:
            positions = np.concatenate([others_pos, [best_mu]])
            delays = np.concatenate([others_del, [max(best_delta, 0.0)]])
    return positions, delays


def _occam_prune(
    windows: np.ndarray,
    positions: np.ndarray,
    delays: np.ndarray,
    neighbor_radius_bins: float = 4.0,
    max_increase: float = 1.08,
) -> tuple[np.ndarray, np.ndarray]:
    """Model-order selection: drop users the remaining model explains.

    A user with a large sub-symbol delay smears its spectral lobe over
    ~``N/delta`` bins; when the noise floor is low the smear's local maxima
    can be admitted as spurious extra "users" clustered around the real
    one.  A spurious user is recognizable because *removing* it barely
    increases the joint fit's residual (its energy is re-absorbed by the
    real neighbor), whereas removing a genuine user costs that user's full
    energy.  Candidates are tested weakest-first and only when another
    user sits within ``neighbor_radius_bins``; a candidate is dropped when
    the residual grows by less than ``max_increase``.
    """
    if positions.size < 2:
        return positions, delays
    n_bins = windows.shape[-1]
    while positions.size >= 2:
        channels = np.atleast_2d(estimate_channels(windows, positions, delays))
        strength = np.mean(np.abs(channels), axis=0)
        order = np.argsort(strength)  # weakest first
        baseline = residual_power(windows, positions, delays)
        dropped = False
        for k in order:
            k = int(k)
            has_neighbor = any(
                j != k
                and circular_distance(positions[k], positions[j], period=n_bins)
                <= neighbor_radius_bins
                for j in range(positions.size)
            )
            if not has_neighbor:
                continue
            keep = np.ones(positions.size, dtype=bool)
            keep[k] = False
            without = residual_power(windows, positions[keep], delays[keep])
            if without <= baseline * max_increase:
                positions, delays = positions[keep], delays[keep]
                dropped = True
                break
        if not dropped:
            break
    return positions, delays


def phased_sic(
    preamble_windows: np.ndarray,
    oversample: int = DEFAULT_OVERSAMPLE,
    threshold_snr: float = 4.0,
    max_tiers: int = 4,
    max_users: int | None = None,
    refine: bool = True,
    estimate_timing: bool = True,
    min_separation_bins: float = 0.75,
    min_relative_magnitude: float = 0.02,
    use_engine: bool = True,
    rng: RngLike = None,
) -> list[UserEstimate]:
    """Detect and estimate users tier by tier.

    Parameters
    ----------
    preamble_windows:
        ``(n_windows, N)`` dechirped preamble windows.
    threshold_snr:
        Peak threshold relative to the residual's noise level; applied anew
        in each tier, so weak users only need to clear the floor once the
        strong tiers are cancelled.
    max_tiers:
        Upper bound on cancellation rounds.
    estimate_timing:
        Fit each user's sub-symbol delay (the boundary-glitch model).
        Keeping this on is what lets the residual reach the noise floor at
        high SNR instead of bottoming out at the glitch level.
    use_engine:
        Route every residual search (refinement, delay fits, cluster
        consolidation) through :class:`repro.core.engine.ResidualEngine`'s
        batched paths; ``False`` selects the scalar reference loops.

    Returns
    -------
    User estimates sorted by decreasing channel magnitude (strongest
    first), with offsets refined jointly across every discovered user.
    """
    original = np.atleast_2d(np.asarray(preamble_windows))
    residual = original.copy()
    positions = np.zeros(0)
    delays = np.zeros(0)
    n_bins = original.shape[-1]
    refine_method = "coordinate" if use_engine else "coordinate-scalar"
    for tier in range(max_tiers):
        remaining_budget = None if max_users is None else max_users - positions.size
        if remaining_budget is not None and remaining_budget <= 0:
            break
        with profile_context.kernel("sic.tier", f"T{tier}"):
            peaks = coarse_offsets(
                residual, oversample, threshold_snr=threshold_snr, max_users=remaining_budget
            )
            new_positions = [
                p.position_bins
                for p in peaks
                if all(
                    circular_distance(p.position_bins, q, period=n_bins) >= min_separation_bins
                    for q in positions
                )
            ]
            if not new_positions:
                break
            positions = np.concatenate([positions, np.asarray(new_positions, dtype=float)])
            delays = np.concatenate([delays, np.zeros(len(new_positions))])
            if refine:
                positions = refine_offsets(
                    original, positions, delays_samples=delays, method=refine_method, rng=rng
                )
                positions, delays = _merge_duplicates(
                    positions, delays, original, min_separation_bins
                )
            if estimate_timing:
                delays = estimate_delays(original, positions, use_engine=use_engine)
                if refine:
                    # One more position sweep now that the glitch is modelled.
                    positions = refine_offsets(
                        original,
                        positions,
                        delays_samples=delays,
                        half_width_bins=0.2,
                        method=refine_method,
                        rng=rng,
                    )
                    positions, delays = _merge_duplicates(
                        positions, delays, original, min_separation_bins
                    )
            channels = estimate_channels(original, positions, delays)
            recon = reconstruct_tones(positions, channels, n_bins, delays)
            residual = original - recon
            # Provenance: per-tier cancellation evidence (Eqn. 3 residual
            # trajectory) for the forensics post-mortem; no-op untraced.
            trace_context.add_event(
                "sic.tier",
                tier=tier,
                n_new=len(new_positions),
                n_users=int(positions.size),
                residual_power=float(np.mean(np.abs(residual) ** 2)),
            )
    if positions.size == 0:
        return []
    with profile_context.kernel("sic.finalize", f"K{positions.size}"):
        positions, delays = _consolidate_clusters(
            original, positions, delays, use_engine=use_engine
        )
        positions, delays = _occam_prune(original, positions, delays)
        estimates = build_user_estimates(original, positions, delays)
    # Ghost suppression: residual junk occasionally clears a tier threshold
    # near strong users; anything more than ~34 dB below the strongest
    # channel is far outside the decodable near-far spread and is dropped.
    strongest = estimates[0].channel_magnitude
    kept = [
        e
        for e in estimates
        if e.channel_magnitude >= min_relative_magnitude * strongest
    ]
    # Cancellation order (strongest first) and final cluster assignment,
    # as the forensics layer sees them.
    trace_context.add_event(
        "sic.result",
        n_users=len(kept),
        n_suppressed=len(estimates) - len(kept),
        positions=[round(float(e.position_bins), 4) for e in kept],
        delays=[round(float(e.delay_samples), 4) for e in kept],
    )
    return kept
