"""Mapping peaks to users across symbols (paper Secs. 4 and 6.2).

The integer part of a data-window peak mixes data with offset, but the
*fractional* part depends only on the user's aggregate hardware offset and
is stable over the packet.  Channel magnitude and (slope-corrected) phase
are equally stable and user-specific.  Choir therefore clusters peaks on
the feature vector (fractional position, log magnitude, corrected phase)
with the prior constraint that peaks within one window belong to distinct
users -- the HMRF-style semi-supervised clustering of Basu et al. the paper
cites.  We realize the same constrained objective with per-window optimal
assignment (Hungarian algorithm) against user centroids seeded from the
preamble, iterated EM-style.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.offsets import UserEstimate
from repro.core.peaks import Peak
from repro.utils import circular_distance


@dataclass
class PeakFeatures:
    """Feature vector of one peak for user association."""

    fractional: float
    log_magnitude: float
    phase: float

    @classmethod
    def from_peak(cls, peak: Peak) -> "PeakFeatures":
        """Project a spectral peak into the clustering feature space."""
        return cls(
            fractional=peak.fractional,
            log_magnitude=float(np.log(max(peak.magnitude, 1e-30))),
            phase=float(np.angle(peak.amplitude)),
        )


@dataclass
class UserCentroid:
    """Running cluster centroid for one user."""

    fractional: float
    log_magnitude: float
    weight_fractional: float = 1.0
    weight_magnitude: float = 0.25

    def distance(self, features: PeakFeatures) -> float:
        """Weighted distance between a peak and this user's centroid.

        Fractional position lives on a circle of period 1; magnitude enters
        in log space so near-far power ratios do not dominate.  Phase is
        deliberately excluded from the metric by default because without
        slope correction it wraps quickly; callers that have corrected it
        can extend the metric.
        """
        d_frac = float(circular_distance(features.fractional, self.fractional))
        d_mag = abs(features.log_magnitude - self.log_magnitude)
        return self.weight_fractional * d_frac + self.weight_magnitude * d_mag


def centroids_from_estimates(
    estimates: list[UserEstimate], amplitude_scale: float = 1.0
) -> list[UserCentroid]:
    """Seed centroids from preamble-derived user estimates.

    ``amplitude_scale`` converts channel magnitudes to the scale of the
    peak features being clustered: FFT peaks of an ``N``-sample window
    have magnitude ``|h| * N``, so pass ``amplitude_scale=N`` when the
    peaks come from un-normalized spectra.
    """
    return [
        UserCentroid(
            fractional=e.fractional,
            log_magnitude=float(
                np.log(max(e.channel_magnitude * amplitude_scale, 1e-30))
            ),
        )
        for e in estimates
    ]


def assign_peaks_to_users(
    peaks: list[Peak], centroids: list[UserCentroid], max_distance: float = 0.45
) -> dict[int, Peak]:
    """Optimal one-peak-per-user assignment for a single window.

    Solves the assignment problem between this window's peaks and the user
    centroids (the cannot-link constraint: two peaks in one window never
    share a user).  Pairs whose distance exceeds ``max_distance`` are left
    unassigned (erasures), which keeps spurious noise peaks from stealing a
    user's slot.

    Returns a mapping ``user_index -> Peak``.
    """
    if not peaks or not centroids:
        return {}
    cost = np.zeros((len(centroids), len(peaks)))
    for i, centroid in enumerate(centroids):
        for j, peak in enumerate(peaks):
            cost[i, j] = centroid.distance(PeakFeatures.from_peak(peak))
    rows, cols = linear_sum_assignment(cost)
    assignment: dict[int, Peak] = {}
    for i, j in zip(rows, cols):
        if cost[i, j] <= max_distance:
            assignment[int(i)] = peaks[j]
    return assignment


class ConstrainedClusterer:
    """EM-style constrained clustering of peaks over a whole packet.

    Alternates (1) per-window constrained assignment against the current
    centroids and (2) centroid re-estimation from the assigned peaks.  With
    centroids seeded from the preamble this usually converges in one or two
    rounds; cold-start (no preamble) works too because fractional positions
    are well separated across boards (Fig. 7(a)).
    """

    def __init__(
        self,
        n_users: int,
        seeds: list[UserCentroid] | None = None,
        max_distance: float = 0.45,
        n_iterations: int = 3,
    ) -> None:
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        self.n_users = n_users
        self.max_distance = max_distance
        self.n_iterations = n_iterations
        self._seeds = seeds

    # ------------------------------------------------------------------
    def _cold_start(self, windows: list[list[Peak]]) -> list[UserCentroid]:
        """Initialize centroids from the fractional-position histogram."""
        all_peaks = [p for window in windows for p in window]
        if not all_peaks:
            return [UserCentroid(0.0, 0.0) for _ in range(self.n_users)]
        fractions = np.array([p.fractional for p in all_peaks])
        magnitudes = np.array([np.log(max(p.magnitude, 1e-30)) for p in all_peaks])
        # Greedy farthest-point seeding on the circle of fractions.
        chosen = [int(np.argmax(magnitudes))]
        while len(chosen) < self.n_users:
            dists = np.min(
                np.stack(
                    [circular_distance(fractions, fractions[c]) for c in chosen]
                ),
                axis=0,
            )
            chosen.append(int(np.argmax(dists)))
        return [
            UserCentroid(float(fractions[c]), float(magnitudes[c])) for c in chosen
        ]

    def cluster(self, windows: list[list[Peak]]) -> list[dict[int, Peak]]:
        """Assign every window's peaks to users.

        Returns one ``user_index -> Peak`` mapping per window, with user
        indices consistent across windows.
        """
        centroids = self._seeds if self._seeds is not None else self._cold_start(windows)
        centroids = list(centroids)
        assignments: list[dict[int, Peak]] = []
        for _ in range(self.n_iterations):
            assignments = [
                assign_peaks_to_users(window, centroids, self.max_distance)
                for window in windows
            ]
            # M-step: recompute each centroid from its assigned peaks.
            for user in range(len(centroids)):
                assigned = [a[user] for a in assignments if user in a]
                if not assigned:
                    continue
                fracs = np.array([p.fractional for p in assigned])
                # Circular mean of fractional positions.
                mean_angle = np.angle(np.mean(np.exp(2j * np.pi * fracs)))
                centroids[user] = UserCentroid(
                    fractional=float((mean_angle / (2.0 * np.pi)) % 1.0),
                    log_magnitude=float(
                        np.mean([np.log(max(p.magnitude, 1e-30)) for p in assigned])
                    ),
                    weight_fractional=centroids[user].weight_fractional,
                    weight_magnitude=centroids[user].weight_magnitude,
                )
        return assignments
