"""Maximum-likelihood joint decoding of team transmissions (Eqn. 6).

A team of K co-located sensors transmits the *same* data symbol ``d`` in
each window (Sec. 7).  Individually each user's peak is below noise, but
the ML decoder reconstructs the collision each candidate ``d`` would
produce -- every user at its own offset, channel, and timing phase -- and
picks the best fit.  Because the decision statistic pools the energy of all
K users, the effective SNR is the *sum* of the per-user SNRs, which is what
buys the paper's 2.65x range gain.

The naive cost is ``O(2^SF)`` reconstructions of N samples each; we reduce
it to one FFT per user plus an ``O(K^2)`` Gram correction by expanding the
squared error:

``||y - sum_i h_i a_i(d)||^2 = ||y||^2 - 2 Re sum_i conj(h_i') F_i[d]
                               + sum_ij conj(h_i') h_j' G_ij(d)``

where ``F_i[d]`` is user ``i``'s matched-filter output (an FFT of the
derotated window), ``h_i' = h_i * exp(-2j*pi*d*delta_i/N)`` carries the
data-dependent timing phase, and the Gram term ``G_ij(d)`` factors into a
``d``-independent Dirichlet kernel times a scalar phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TeamMember:
    """Decoder-side knowledge of one team member for a given window."""

    position_bins: float
    channel: complex
    delay_samples: float = 0.0


def _matched_filter_bank(dechirped: np.ndarray, positions_bins: np.ndarray) -> np.ndarray:
    """Per-user matched-filter outputs ``F_i[d]`` for all N candidate d.

    Row ``i`` is the FFT of the window derotated by user ``i``'s offset, so
    entry ``[i, d]`` is the correlation with the tone at ``d + mu_i``.
    """
    dechirped = np.asarray(dechirped)
    n = dechirped.size
    samples = np.arange(n)
    derotators = np.exp(
        -2j * np.pi * np.outer(np.asarray(positions_bins, dtype=float), samples) / n
    )
    return np.fft.fft(dechirped[None, :] * derotators, n, axis=-1)


def _dirichlet_gram(positions_bins: np.ndarray, n: int) -> np.ndarray:
    """``g_ij = <tone(mu_i), tone(mu_j)>`` for the d=0 tones (no phase)."""
    positions = np.asarray(positions_bins, dtype=float)
    diff = positions[None, :] - positions[:, None]
    samples = np.arange(n)
    # Geometric sum: sum_n exp(2j*pi*diff*n/N).
    gram = np.zeros(diff.shape, dtype=complex)
    for i in range(diff.shape[0]):
        for j in range(diff.shape[1]):
            gram[i, j] = np.sum(np.exp(2j * np.pi * diff[i, j] * samples / n))
    return gram


def joint_ml_decode(
    dechirped: np.ndarray,
    members: list[TeamMember],
    coherent: bool = True,
) -> tuple[int, np.ndarray]:
    """Decode one shared data symbol from a team collision window.

    Parameters
    ----------
    dechirped:
        One dechirped window (length ``N = 2**SF``).
    members:
        Per-user offsets/channels (typically from the accumulated preamble).
    coherent:
        ``True`` evaluates the exact ML metric of Eqn. 6 (requires channel
        phases and delays); ``False`` falls back to noncoherent combining
        ``sum_i |h_i|^2-weighted |F_i[d]|^2``, which needs no delay
        estimates and degrades gracefully when phases are stale.

    Returns
    -------
    ``(best_symbol, metric)`` where ``metric[d]`` is the per-candidate score
    (lower is better for coherent, higher for noncoherent -- but
    ``best_symbol`` always picks the optimum, so callers rarely care).
    """
    if not members:
        raise ValueError("joint_ml_decode needs at least one team member")
    dechirped = np.asarray(dechirped)
    n = dechirped.size
    positions = np.array([m.position_bins for m in members], dtype=float)
    channels = np.array([m.channel for m in members], dtype=complex)
    delays = np.array([m.delay_samples for m in members], dtype=float)
    bank = _matched_filter_bank(dechirped, positions)  # (K, N)
    d = np.arange(n)
    if not coherent:
        weights = np.abs(channels) ** 2
        weights = weights / max(weights.sum(), 1e-30)
        metric = weights @ (np.abs(bank) ** 2)
        best = int(np.argmax(metric))
        return best, metric
    # Data-dependent phase per user: h_i' = h_i * exp(-2j*pi*d*delta_i/N).
    phase = np.exp(-2j * np.pi * np.outer(delays, d) / n)  # (K, N)
    h_prime = channels[:, None] * phase
    cross = np.sum(np.conj(h_prime) * bank, axis=0)  # sum_i conj(h_i') F_i[d]
    gram = _dirichlet_gram(positions, n)
    # Quadratic term per candidate d: conj(h'[:, d]) @ gram @ h'[:, d].
    # (It collapses to a d-independent constant only when all delays match.)
    quad = np.einsum("id,ij,jd->d", np.conj(h_prime), gram, h_prime).real
    metric = -2.0 * np.real(cross) + quad  # ||y||^2 dropped (constant)
    best = int(np.argmin(metric))
    return best, metric


def template_correlation_decode(
    template_power: np.ndarray,
    window_power: np.ndarray,
    oversample: int,
) -> tuple[int, np.ndarray]:
    """Decode a shared symbol by power-spectrum pattern matching.

    The accumulated preamble power spectrum is the team's *energy
    fingerprint*: one lobe per member (or per unresolved cluster of
    members) at its offset.  A data window carrying shared symbol ``d``
    shows the same fingerprint circularly shifted by ``d`` bins, so the ML
    decision under a noncoherent model is the shift maximizing the circular
    correlation of the two power spectra.  Unlike the per-member matched
    filter this needs no member list at all -- clusters of members too
    close to resolve individually still contribute their pooled energy.

    Parameters
    ----------
    template_power, window_power:
        Oversampled power spectra (length ``N * oversample``).
    oversample:
        The zero-padding factor; candidate shifts step by ``oversample``
        samples (= 1 bin).

    Returns
    -------
    ``(best_symbol, scores)`` with ``scores[d]`` the correlation at shift d.
    """
    template_power = np.asarray(template_power, dtype=float)
    window_power = np.asarray(window_power, dtype=float)
    if template_power.shape != window_power.shape:
        raise ValueError("template and window spectra must have equal length")
    total = template_power.size
    if total % oversample:
        raise ValueError("spectrum length must be a multiple of oversample")
    # Remove the noise pedestal so flat noise does not bias the scores.
    template = template_power - np.median(template_power)
    window = window_power - np.median(window_power)
    # Circular cross-correlation via FFT.
    correlation = np.fft.ifft(
        np.fft.fft(window) * np.conj(np.fft.fft(template))
    ).real
    scores = correlation[::oversample][: total // oversample]
    return int(np.argmax(scores)), scores


def team_snr_gain_db(per_user_snr_linear: np.ndarray) -> float:
    """Effective SNR (dB) of ML joint decoding: the sum of user SNRs."""
    per_user_snr_linear = np.asarray(per_user_snr_linear, dtype=float)
    return float(10.0 * np.log10(max(per_user_snr_linear.sum(), 1e-30)))
