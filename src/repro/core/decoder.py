"""The end-to-end Choir receiver.

:class:`ChoirDecoder` ties the pipeline together (paper Secs. 4-7):

* estimate every discernible user's offset + channel from the preamble with
  phased SIC (:func:`repro.core.sic.phased_sic`),
* decode each data window with tiered per-user matched filters and joint
  least-squares re-fit/subtraction -- the fractional offset ``mu_k`` in the
  matched filter *is* the paper's fractional-part tracking: each user's
  filter only rings up for tones carrying that user's signature,
* for below-range teams, detect via preamble accumulation and decode the
  shared symbols with the ML joint decoder (Eqn. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, get_args

import numpy as np

from repro.core.chanest import data_column, solve_channels
from repro.core.dechirp import (
    DEFAULT_OVERSAMPLE,
    cached_sample_index,
    dechirp_windows,
    evaluate_spectrum_at,
    oversampled_spectrum,
)
from repro.core.detection import (
    accumulate_preamble,
    align_to_window_grid,
    sliding_packet_search,
)
from repro.core.peaks import find_peaks
from repro.core.joint_ml import TeamMember, joint_ml_decode, template_correlation_decode
from repro.core.offsets import UserEstimate, build_user_estimates, refine_offsets
from repro.core.sic import _merge_duplicates, phased_sic
from repro.core.tracking import ConstrainedClusterer, centroids_from_estimates
from repro.phy.packet import DecodedFrame, LoRaFramer
from repro.phy.params import LoRaParams
from repro.trace import context as trace_context
from repro.utils import circular_distance, ensure_rng
from repro.utils.rng import RngLike

#: Data-stage algorithms accepted by :meth:`ChoirDecoder.decode`.  Typed as
#: a ``Literal`` so mypy rejects a misspelled method at the call site; the
#: runtime check against :data:`DECODE_METHODS` covers untyped callers.
DecodeMethod = Literal["sic", "clustering"]

#: Team-decode algorithms accepted by :meth:`ChoirDecoder.decode_team`.
TeamDecodeMethod = Literal["template", "members"]

DECODE_METHODS: tuple[str, ...] = get_args(DecodeMethod)
TEAM_DECODE_METHODS: tuple[str, ...] = get_args(TeamDecodeMethod)


@dataclass
class DecodedUser:
    """One disentangled transmitter: its identity signature and data."""

    estimate: UserEstimate
    symbols: np.ndarray

    @property
    def offset_bins(self) -> float:
        """Aggregate spectral offset (in FFT bins) identifying this user."""
        return self.estimate.position_bins

    @property
    def fractional(self) -> float:
        """Fractional part of the offset (the collision-resolving signature)."""
        return self.estimate.fractional

    def decode_payload(self, framer: LoRaFramer, payload_len: int) -> DecodedFrame:
        """Run the LoRa decode chain on this user's symbol stream."""
        return framer.decode(self.symbols, payload_len)


@dataclass
class TeamDecodeResult:
    """Result of decoding a below-range team transmission."""

    detected: bool
    symbols: np.ndarray
    start_window: int
    n_members_detected: int
    score: float


class ChoirDecoder:
    """Single-antenna collision decoder.

    Parameters
    ----------
    params:
        PHY configuration shared with the clients.
    oversample:
        Zero-padding factor for coarse peak analysis (paper uses 10).
    threshold_snr:
        Peak detection threshold (multiple of the spectral noise level).
    tier_ratio_db:
        Users within this many dB of the strongest *remaining* user are
        demodulated in the same SIC tier (Sec. 5.2's "phases").
    refine:
        Enable the sub-bin residual-minimization refinement; disabling it
        reproduces the coarse-only ablation.
    use_engine:
        Route the preamble residual searches through the batched
        :class:`repro.core.engine.ResidualEngine` paths (the default);
        ``False`` selects the scalar reference loops, which produce the
        same estimates ~an order of magnitude slower.
    """

    def __init__(
        self,
        params: LoRaParams,
        oversample: int = DEFAULT_OVERSAMPLE,
        threshold_snr: float = 4.0,
        tier_ratio_db: float = 9.0,
        refine: bool = True,
        use_engine: bool = True,
        rng: RngLike = None,
    ) -> None:
        self.params = params
        self.oversample = oversample
        self.threshold_snr = threshold_snr
        self.tier_ratio_db = tier_ratio_db
        self.refine = refine
        self.use_engine = use_engine
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def synchronize(self, samples: np.ndarray) -> np.ndarray:
        """Align an arbitrarily-shifted capture to the window grid.

        Real SDR captures start at a random sample; this trims the leading
        samples so the preamble's window grid lines up (to within a
        fraction of a window -- the per-user delay estimation absorbs the
        rest).  Use before :meth:`decode` when the capture is not already
        beacon-aligned.
        """
        offset, _ = align_to_window_grid(self.params, samples)
        return np.asarray(samples)[offset:]

    # ------------------------------------------------------------------
    # Preamble stage
    # ------------------------------------------------------------------
    def estimate_users(
        self, samples: np.ndarray, max_users: int | None = None
    ) -> list[UserEstimate]:
        """Phased-SIC user discovery on the preamble.

        The first preamble window is skipped: a delayed user's transmission
        has not started for its first ``delay`` samples, so window 0 does
        not follow the steady-state window model and would bias the delay
        search (every later window's head holds the *previous* chirp's
        tail, which the glitch model accounts for).
        """
        windows = dechirp_windows(
            self.params,
            samples,
            n_windows=self.params.preamble_len - 1,
            start=self.params.samples_per_symbol,
        )
        return phased_sic(
            windows,
            oversample=self.oversample,
            threshold_snr=self.threshold_snr,
            max_users=max_users,
            refine=self.refine,
            use_engine=self.use_engine,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Data stage
    # ------------------------------------------------------------------
    def _tiers(self, users: list[UserEstimate]) -> list[list[int]]:
        """Group user indices into SIC tiers by channel magnitude."""
        order = sorted(
            range(len(users)), key=lambda i: users[i].channel_magnitude, reverse=True
        )
        ratio = 10.0 ** (self.tier_ratio_db / 20.0)
        tiers: list[list[int]] = []
        for idx in order:
            magnitude = users[idx].channel_magnitude
            if tiers and magnitude * ratio >= users[tiers[-1][0]].channel_magnitude:
                tiers[-1].append(idx)
            else:
                tiers.append([idx])
        return tiers

    def _decode_window(
        self,
        dechirped: np.ndarray,
        users: list[UserEstimate],
        prev_symbols: np.ndarray,
        window_index: int = 0,
    ) -> np.ndarray:
        """Decode one data window for every tracked user.

        Users are decided strongest-first: each user's matched filter (an
        FFT after derotating by that user's fractional offset -- the
        fractional-part tracking of Sec. 4) runs on the residual left after
        jointly re-fitting and subtracting every already-decided user, so a
        strong user's tone cannot masquerade as a weaker user's data.  The
        subtraction uses the exact delayed-window model (current symbol
        plus the previous symbol's head segment), which is what keeps the
        residual near the noise floor in the near-far regime.
        """
        n = dechirped.size
        samples = cached_sample_index(n)
        decided = np.zeros(len(users), dtype=np.int64)
        decided_users: list[int] = []
        residual = dechirped
        order = sorted(
            range(len(users)),
            key=lambda i: users[i].channel_magnitude,
            reverse=True,
        )

        def model_columns(indices: list[int], junk: np.ndarray | None = None) -> np.ndarray:
            columns = [
                data_column(
                    users[i].position_bins,
                    users[i].delay_samples,
                    int(decided[i]),
                    int(prev_symbols[i]),
                    n,
                )
                for i in indices
            ]
            if junk is not None:
                columns.extend(
                    np.exp(2j * np.pi * pos * samples / n) for pos in junk
                )
            return np.stack(columns, axis=-1)

        def subtract(indices: list[int], junk: np.ndarray | None = None) -> np.ndarray:
            if not indices and (junk is None or junk.size == 0):
                return dechirped
            columns = model_columns(indices, junk)
            amplitudes = solve_channels(dechirped, columns)
            return dechirped - columns @ amplitudes

        def _deviation(derotated: np.ndarray, candidate: int) -> float:
            """Sub-bin offset of a candidate tone from the integer grid.

            Evaluates the DTFT at candidate +/- 0.25 bins and fits a
            parabola: a user's *own* tone sits on-grid after derotation
            (deviation ~0), while a fractional-signature collider's tone
            sits at its signature difference away.
            """
            offsets = np.array([-0.25, 0.0, 0.25])
            probe = np.abs(
                evaluate_spectrum_at(derotated, candidate + offsets)
            )
            denom = probe[0] - 2.0 * probe[1] + probe[2]
            if abs(denom) < 1e-30:
                return 0.0
            vertex = 0.5 * (probe[0] - probe[2]) / denom * 0.25
            return float(np.clip(vertex, -0.5, 0.5))

        def decide(signal: np.ndarray, idx: int, exclude: set[int] | None = None) -> int:
            """Matched-filter decision with fractional-position tracking.

            Among near-maximal candidates, prefer the one that (a) sits on
            the integer grid of *this* user's derotated spectrum -- the
            paper's fractional-part identification (Sec. 4) -- and (b) has
            a magnitude matching the user's preamble channel.  This breaks
            ties when two users' fractional signatures nearly collide and
            each one's tone registers near an integer bin of the other's
            filter.
            """
            user = users[idx]
            mu = user.position_bins
            derotated = signal * np.exp(-2j * np.pi * mu * samples / n)
            spectrum = np.fft.fft(derotated, n)
            magnitude = np.abs(spectrum).copy()
            if exclude:
                for banned in exclude:
                    magnitude[banned % n] = 0.0
            peak = float(magnitude.max())
            candidates = np.nonzero(magnitude >= 0.7 * peak)[0]
            if candidates.size <= 1:
                return int(np.argmax(magnitude))
            expected_mag = max(user.channel_magnitude * n, 1e-30)
            scores = []
            for candidate in candidates:
                deviation = abs(_deviation(derotated, int(candidate)))
                mag_mismatch = abs(np.log(magnitude[candidate] / expected_mag))
                scores.append(5.0 * deviation + 0.5 * mag_mismatch)
            return int(candidates[int(np.argmin(scores))])

        for idx in order:
            decided[idx] = decide(residual, idx)
            decided_users.append(idx)
            # Joint least-squares re-fit over every decided user, then
            # subtract, so weaker users see a cleaned residual (the joint
            # fit models leakage between comparable-power users, Sec. 5.2).
            residual = subtract(decided_users)
        # Junk absorption: when two users' offsets merged during estimation,
        # one of their tones was never fitted and would steal weaker users'
        # decisions.  Fit any remaining strong residual peaks as anonymous
        # "junk" tones, then re-decide every user once on a residual with
        # everything else (users + junk) subtracted.
        junk_peaks = find_peaks(
            oversampled_spectrum(residual, 4), 4, threshold_snr=6.0, max_peaks=4
        )
        if junk_peaks:
            junk_positions = np.array(
                [p.position_bins for p in junk_peaks], dtype=float
            )
            # Gauss-Seidel sweeps: re-decide each user against a residual
            # with every *other* user (and foreign junk) subtracted, until
            # the decisions stop changing.  Early wrong decisions in the
            # strongest-first pass (likely when several users have similar
            # power) get revisited once the rest of the model firmed up.
            for _ in range(4):
                changed = False
                for idx in order:
                    others = [i for i in decided_users if i != idx]
                    # A junk tone whose fractional part matches this user's
                    # signature may be the user's own (mis-decided) tone --
                    # keep it out of the subtraction so the re-decision can
                    # recover it.
                    foreign_junk = junk_positions[
                        circular_distance(
                            junk_positions % 1.0, users[idx].fractional
                        )
                        > 0.12
                    ]
                    cleaned = subtract(others, foreign_junk)
                    new_decision = decide(cleaned, idx)
                    if new_decision != decided[idx]:
                        decided[idx] = new_decision
                        changed = True
                if not changed:
                    break
        # Conflict resolution: two users claiming the same *physical* tone
        # (their decided positions coincide on the spectrum) is impossible
        # -- one transmitter emits one tone per window.  This happens when
        # fractional signatures nearly collide; keep the claimant whose
        # frame puts the tone closer to its integer grid (smaller
        # deviation) and make the loser re-decide with that bin excluded.
        def claim_deviation(idx: int) -> float:
            mu = users[idx].position_bins
            derotated = dechirped * np.exp(-2j * np.pi * mu * samples / n)
            return abs(_deviation(derotated, int(decided[idx])))

        for _ in range(3):
            conflict: tuple[int, int] | None = None
            for a_pos, i in enumerate(decided_users):
                for j in decided_users[a_pos + 1 :]:
                    tone_i = (decided[i] + users[i].position_bins) % n
                    tone_j = (decided[j] + users[j].position_bins) % n
                    if circular_distance(tone_i, tone_j, period=n) < 0.3:
                        conflict = (i, j)
                        break
                if conflict:
                    break
            if conflict is None:
                break
            i, j = conflict
            loser = i if claim_deviation(i) > claim_deviation(j) else j
            # Provenance: tone conflicts are the signature of (near-)
            # collided fractional offsets -- the forensics layer reads
            # these to call a loss cluster-ambiguous.  No-op untraced.
            trace_context.add_event(
                "decode.conflict",
                window=window_index,
                users=[int(i), int(j)],
                loser=int(loser),
            )
            others = [k for k in decided_users if k != loser]
            cleaned = subtract(others)
            decided[loser] = decide(cleaned, loser, exclude={int(decided[loser])})
        return decided

    def decode(
        self,
        samples: np.ndarray,
        n_data_symbols: int,
        max_users: int | None = None,
        method: DecodeMethod = "sic",
    ) -> list[DecodedUser]:
        """Disentangle and decode every discernible user in a collision.

        ``samples`` must start at the common preamble boundary (the MAC's
        beacon slotting guarantees window-scale alignment; sub-window
        offsets are handled by the offset machinery).

        ``method`` selects the data stage: ``"sic"`` (default) runs the
        strongest-first matched-filter + joint-subtraction pipeline;
        ``"clustering"`` runs the paper's Sec. 6.2 description literally --
        detect every window's peaks, then assign peaks to users with the
        constrained (HMRF-style) clusterer on fractional position and
        channel magnitude.  SIC is more robust under near-far; clustering
        is the paper-faithful alternative and a useful cross-check.
        """
        if method not in DECODE_METHODS:
            raise ValueError(
                f"unknown decode method: {method!r}; expected one of "
                f"{DECODE_METHODS}"
            )
        users = self.estimate_users(samples, max_users=max_users)
        trace_context.add_event(
            "decode.users",
            n_users=len(users),
            fractions=[round(float(u.position_bins % 1.0), 4) for u in users],
        )
        if not users:
            return []
        start = self.params.preamble_len * self.params.samples_per_symbol
        windows = dechirp_windows(
            self.params, samples, n_windows=n_data_symbols, start=start
        )
        if method == "clustering":
            return self._decode_clustering(windows, users)
        per_user_symbols = np.zeros((len(users), windows.shape[0]), dtype=np.int64)
        # The symbol preceding the first data window is the last preamble
        # chirp (value 0) for every user.
        prev_symbols = np.zeros(len(users), dtype=np.int64)
        for m in range(windows.shape[0]):
            per_user_symbols[:, m] = self._decode_window(
                windows[m], users, prev_symbols, window_index=m
            )
            prev_symbols = per_user_symbols[:, m]
        return [
            DecodedUser(estimate=user, symbols=per_user_symbols[k].copy())
            for k, user in enumerate(users)
        ]

    def _decode_clustering(
        self, windows: np.ndarray, users: list[UserEstimate]
    ) -> list[DecodedUser]:
        """The Sec. 6.2 data stage: peak detection + constrained clustering.

        Every window's peaks are detected in the oversampled spectrum (one
        per user when all are window-aligned); the clusterer -- seeded with
        the preamble-derived (fractional position, channel magnitude)
        centroids and constrained so peaks within a window map to distinct
        users -- assigns each peak to a user, and the user's data is the
        peak position minus its aggregate offset.  Windows where a user's
        peak went undetected fall back to that user's matched filter.
        """
        n = windows.shape[-1]
        samples = cached_sample_index(n)
        peak_windows = [
            find_peaks(
                oversampled_spectrum(windows[m], self.oversample),
                self.oversample,
                threshold_snr=self.threshold_snr,
                max_peaks=2 * len(users),
                min_separation_bins=0.6,
            )
            for m in range(windows.shape[0])
        ]
        clusterer = ConstrainedClusterer(
            len(users), seeds=centroids_from_estimates(users, amplitude_scale=n)
        )
        assignments = clusterer.cluster(peak_windows)
        per_user_symbols = np.zeros((len(users), windows.shape[0]), dtype=np.int64)
        for m, assignment in enumerate(assignments):
            for k, user in enumerate(users):
                peak = assignment.get(k)
                if peak is not None:
                    per_user_symbols[k, m] = int(
                        np.round(peak.position_bins - user.position_bins)
                    ) % n
                else:
                    # Erasure: fall back to this user's matched filter.
                    derotated = windows[m] * np.exp(
                        -2j * np.pi * user.position_bins * samples / n
                    )
                    per_user_symbols[k, m] = int(
                        np.argmax(np.abs(np.fft.fft(derotated, n)))
                    )
        return [
            DecodedUser(estimate=user, symbols=per_user_symbols[k].copy())
            for k, user in enumerate(users)
        ]

    # ------------------------------------------------------------------
    # Team stage (range extension, Sec. 7)
    # ------------------------------------------------------------------
    def decode_team(
        self,
        samples: np.ndarray,
        n_data_symbols: int,
        detection_pfa: float = 1e-3,
        method: TeamDecodeMethod = "template",
        coherent: bool = False,
        max_members: int | None = None,
    ) -> TeamDecodeResult:
        """Detect and decode a below-range team's shared data symbols.

        The team transmits identical data after a beacon; individual peaks
        may be under the noise floor of one window but emerge from the
        ``preamble_len``-window accumulation.

        ``method="template"`` (default) decodes each data window by
        circularly correlating its power spectrum against the accumulated
        preamble fingerprint -- the noncoherent ML decision that needs no
        explicit member list, so members too co-located to resolve still
        contribute pooled energy.  ``method="members"`` runs the explicit
        per-member decoder of Eqn. 6 (set ``coherent=True`` for the exact
        metric when channel phases are trustworthy).
        """
        if method not in TEAM_DECODE_METHODS:
            raise ValueError(
                f"unknown team decode method: {method!r}; expected one of "
                f"{TEAM_DECODE_METHODS}"
            )
        detection = sliding_packet_search(
            self.params,
            samples,
            oversample=self.oversample,
            pfa=detection_pfa,
        )
        if not detection.detected or not detection.peaks:
            return TeamDecodeResult(
                detected=False,
                symbols=np.zeros(0, dtype=np.int64),
                start_window=0,
                n_members_detected=0,
                score=detection.score,
            )
        peaks = list(detection.peaks)
        if max_members is not None:
            peaks = peaks[:max_members]
        positions = np.array([p.position_bins for p in peaks], dtype=float)
        n = self.params.samples_per_symbol
        start = detection.start_window * n
        # Skip the detected preamble's first window (partial for delayed
        # users, see estimate_users).
        preamble = dechirp_windows(
            self.params,
            samples,
            n_windows=self.params.preamble_len - 1,
            start=start + n,
        )
        if self.refine and positions.size <= 8:
            # Joint refinement cost grows with team size; beyond a handful
            # of members the accumulated coarse positions are already tight.
            positions = refine_offsets(preamble, positions, rng=self._rng)
            positions, _ = _merge_duplicates(
                positions, np.zeros(positions.size), preamble, 0.75
            )
        estimates = build_user_estimates(preamble, positions)
        # Channel extrapolation indexes windows relative to preamble window
        # 1 (the first one used), so data window m sits at preamble_len-1+m.
        members = [
            TeamMember(
                position_bins=e.position_bins,
                channel=e.channel_at_window(self.params.preamble_len - 1),
                delay_samples=0.0,
            )
            for e in estimates
        ]
        data_start = start + self.params.preamble_len * n
        windows = dechirp_windows(
            self.params, samples, n_windows=n_data_symbols, start=data_start
        )
        symbols = np.zeros(windows.shape[0], dtype=np.int64)
        if method == "template":
            template = accumulate_preamble(preamble, self.oversample)
            for m in range(windows.shape[0]):
                window_power = (
                    np.abs(oversampled_spectrum(windows[m], self.oversample)) ** 2
                )
                symbols[m], _ = template_correlation_decode(
                    template, window_power, self.oversample
                )
        else:
            for m in range(windows.shape[0]):
                window_members = [
                    TeamMember(
                        position_bins=e.position_bins,
                        channel=e.channel_at_window(self.params.preamble_len - 1 + m),
                        delay_samples=0.0,
                    )
                    for e in estimates
                ] if coherent else members
                symbols[m], _ = joint_ml_decode(
                    windows[m], window_members, coherent=coherent
                )
        return TeamDecodeResult(
            detected=True,
            symbols=symbols,
            start_window=detection.start_window,
            n_members_detected=len(members),
            score=detection.score,
        )
