"""Least-squares channel estimation for a set of candidate tones (Eqn. 2).

Given candidate tone positions (in fractional FFT bins), the dechirped
window is a linear combination ``z = E @ h + noise`` where column ``k`` of
``E`` is the complex exponential at position ``mu_k``.  The best-fit
channels are the least-squares solution ``h = (E^H E)^-1 E^H z`` -- exactly
the paper's Eqn. 2.  Modelling *all* users jointly is what lets Choir
account for the sinc leakage of one user's peak into another's.
"""

from __future__ import annotations

import numpy as np

from repro.core.dechirp import cached_sample_index


def tone_matrix(
    positions_bins: np.ndarray,
    n_samples: int,
    delays_samples: np.ndarray | None = None,
) -> np.ndarray:
    """Matrix whose column ``k`` is user ``k``'s dechirped preamble model.

    Without delays this is the pure tone ``E[n, k] = exp(2j*pi*mu_k*n/N)``.

    With ``delays_samples`` the column models what a chirp delayed by
    ``delta_k`` samples *actually* dechirps to: the first ``delta_k``
    samples of the window belong to the user's previous (identical,
    preamble) chirp and carry an extra constant phase of
    ``(N/2 - delta_k)`` cycles relative to the rest -- the boundary
    "glitch".  Modelling it keeps the reconstruction residual at the noise
    floor, so the phased SIC does not mistake the glitch hump for extra
    users.
    """
    positions_bins = np.atleast_1d(np.asarray(positions_bins, dtype=float))
    n = cached_sample_index(n_samples)
    e = np.exp(2j * np.pi * np.outer(n, positions_bins) / n_samples)
    if delays_samples is not None:
        delays = np.atleast_1d(np.asarray(delays_samples, dtype=float))
        if delays.size != positions_bins.size:
            raise ValueError("delays_samples must match positions_bins in length")
        for k, delta in enumerate(delays):
            delta = float(delta % n_samples)
            if delta <= 0.0:
                continue
            head = n < delta
            jump = np.exp(2j * np.pi * (n_samples / 2.0 - delta))
            e[head, k] *= jump
    return e


def data_column(
    mu_bins: float,
    delay_samples: float,
    symbol: int,
    prev_symbol: int,
    n_samples: int,
) -> np.ndarray:
    """Exact dechirped model of one user's *data* window.

    A user delayed by ``delta`` samples contributes two segments to the
    receiver's window for symbol ``d``: the head (``n < delta``) still
    carries the tail of the *previous* chirp (symbol ``d_prev``) and the
    rest carries the current one.  Expanding the chirp phases gives::

        col[n >= delta] = exp(2j*pi * (mu + d) * n / N)
        col[n <  delta] = exp(2j*pi * ((mu + d_prev) * n / N
                          + (N/2 - delta) + (d_prev*(N - delta) + d*delta)/N))

    Modelling the head exactly (instead of as a pure tone) is what lets the
    decoder subtract a strong user cleanly enough to recover a ~30 dB
    weaker one underneath (the near-far regime of Sec. 5.2).
    """
    n = cached_sample_index(n_samples)
    delta = float(delay_samples % n_samples)
    column = np.exp(2j * np.pi * (mu_bins + symbol) * n / n_samples)
    if delta > 0.0:
        head = n < delta
        const = (n_samples / 2.0 - delta) + (
            prev_symbol * (n_samples - delta) + symbol * delta
        ) / n_samples
        column[head] = np.exp(
            2j * np.pi * ((mu_bins + prev_symbol) * n[head] / n_samples + const)
        )
    return column


def solve_channels(dechirped: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """Least-squares amplitudes for an arbitrary model matrix.

    ``columns`` has shape ``(n_samples, n_users)``; returns the per-user
    complex amplitudes minimizing ``||dechirped - columns @ h||``.
    """
    solution, *_ = np.linalg.lstsq(columns, np.asarray(dechirped), rcond=None)
    return solution


def estimate_channels(
    dechirped: np.ndarray,
    positions_bins: np.ndarray,
    delays_samples: np.ndarray | None = None,
) -> np.ndarray:
    """Least-squares channel estimates for tones at ``positions_bins``.

    ``dechirped`` may be one window (1-D) or a stack (2-D, one row per
    window); the same tone positions are fit to every row, returning shape
    ``(n_users,)`` or ``(n_windows, n_users)`` accordingly.  This is the
    paper's Eqn. 2 generalized to K users (and, optionally, to the
    delay-aware window model).
    """
    dechirped = np.asarray(dechirped)
    single = dechirped.ndim == 1
    rows = np.atleast_2d(dechirped)
    e = tone_matrix(positions_bins, rows.shape[-1], delays_samples)
    solution, *_ = np.linalg.lstsq(e, rows.T, rcond=None)
    channels = solution.T
    if single:
        return channels[0]
    return channels


def reconstruct_tones(
    positions_bins: np.ndarray,
    channels: np.ndarray,
    n_samples: int,
    delays_samples: np.ndarray | None = None,
) -> np.ndarray:
    """Rebuild the dechirped signal implied by offsets + channels.

    The reconstruction whose residual the fine offset search minimizes
    (Eqn. 3's ``h1*exp(...) + h2*exp(...)`` term, generalized to K users).
    """
    e = tone_matrix(positions_bins, n_samples, delays_samples)
    channels = np.asarray(channels)
    if channels.ndim == 1:
        return e @ channels
    return (e @ channels.T).T
