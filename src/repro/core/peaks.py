"""Peak detection in oversampled dechirped spectra.

Each colliding transmitter contributes one sinc-shaped peak per window
(Fig. 3(c)-(d)).  :func:`find_peaks` locates local maxima above an adaptive
noise threshold, merges maxima closer than a configurable fraction of a bin
(side-lobe suppression), and reports sub-bin positions via local quadratic
interpolation on the oversampled grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Peak:
    """One detected spectral peak.

    Attributes
    ----------
    position_bins:
        Peak location in units of (non-oversampled) FFT bins, in
        ``[0, n_bins)``.  The integer part mixes data and offset; the
        fractional part is the user signature Choir tracks.
    amplitude:
        Complex spectrum value at the peak (channel estimate up to the
        tone normalization).
    snr:
        Peak magnitude relative to the spectrum's estimated noise level.
    """

    position_bins: float
    amplitude: complex
    snr: float

    @property
    def fractional(self) -> float:
        """Fractional part of the peak position (the user signature)."""
        return float(self.position_bins % 1.0)

    @property
    def magnitude(self) -> float:
        """Absolute value of the fitted complex amplitude."""
        return abs(self.amplitude)


def _noise_level(magnitude: np.ndarray) -> float:
    """Robust noise level: median absolute spectrum value.

    The median ignores the handful of signal peaks, so the threshold adapts
    to the actual noise floor rather than to the strongest transmitter.
    """
    return float(np.median(magnitude)) + 1e-30


def _refine_quadratic(magnitude: np.ndarray, index: int) -> float:
    """Sub-sample peak refinement by fitting a parabola to 3 points."""
    n = magnitude.size
    left = magnitude[(index - 1) % n]
    center = magnitude[index]
    right = magnitude[(index + 1) % n]
    denom = left - 2.0 * center + right
    if abs(denom) < 1e-30:
        return 0.0
    shift = 0.5 * (left - right) / denom
    return float(np.clip(shift, -0.5, 0.5))


def sidelobe_envelope(distance_bins: float | np.ndarray) -> float | np.ndarray:
    """Worst-case relative magnitude of a rectangular-window sinc side lobe.

    A tone at a *fractional* bin position leaks side lobes at roughly
    integer spacings whose peak magnitude falls off as ``1/(pi*Delta)``
    (the Dirichlet-kernel envelope).  Any spectral maximum weaker than a
    stronger peak's envelope at its distance is indistinguishable from that
    peak's leakage, so the detector must not promote it to a user -- the
    phased SIC recovers genuinely weak users after subtraction instead.
    """
    distance = np.maximum(np.asarray(distance_bins, dtype=float), 1.0 / np.pi)
    return 1.0 / (np.pi * distance)


def glitch_envelope(
    distance_bins: float | np.ndarray, n_bins: int, max_delay_samples: float = 32.0
) -> float | np.ndarray:
    """Worst-case leakage of a peak's timing-offset boundary glitch.

    A user delayed by ``delta`` samples leaves a ``delta``-sample segment
    per window whose phase is off by up to a half cycle -- spectrally a
    sinc of width ``N/delta`` bins centred on the user's peak, with
    magnitude up to ``2*delta/N`` of the main peak near the centre and a
    ``2/(pi*Delta)`` tail.  Candidates under this envelope (for the
    configured worst-case delay) cannot be told apart from a stronger
    peak's glitch at detection time; the SIC's delay-aware subtraction
    re-exposes any real user hiding there.
    """
    distance = np.maximum(np.asarray(distance_bins, dtype=float), 1e-6)
    tail = 2.0 / (np.pi * distance)
    cap = 2.0 * max_delay_samples / n_bins
    return np.minimum(tail, cap)


def find_peaks(
    spectrum: np.ndarray,
    oversample: int,
    threshold_snr: float = 4.0,
    max_peaks: int | None = None,
    min_separation_bins: float = 0.8,
    leakage_margin: float = 2.0,
    max_delay_samples: float = 32.0,
) -> list[Peak]:
    """Detect peaks in one oversampled dechirped spectrum.

    Parameters
    ----------
    spectrum:
        Complex FFT output of length ``n_bins * oversample``.
    oversample:
        Zero-padding factor used to produce ``spectrum``.
    threshold_snr:
        Minimum peak magnitude as a multiple of the noise level.
    max_peaks:
        Keep at most this many strongest peaks (``None`` keeps all).
    min_separation_bins:
        Maxima closer than this (in non-oversampled bins) to an already
        accepted stronger peak are treated as its main lobe and dropped.
    leakage_margin:
        A candidate is rejected unless its magnitude exceeds
        ``leakage_margin`` times every accepted stronger peak's side-lobe
        envelope at the candidate's distance (see
        :func:`sidelobe_envelope`).  This is the "account for leakage"
        requirement of Sec. 5.1; users hidden under a strong peak's
        leakage are recovered by the phased SIC after subtraction.

    Returns
    -------
    Peaks sorted by decreasing magnitude.
    """
    spectrum = np.asarray(spectrum)
    magnitude = np.abs(spectrum)
    total = magnitude.size
    if total == 0:
        return []
    noise = _noise_level(magnitude)
    threshold = threshold_snr * noise
    # Local maxima on the circular spectrum.
    greater_left = magnitude >= np.roll(magnitude, 1)
    greater_right = magnitude > np.roll(magnitude, -1)
    candidate_idx = np.nonzero(greater_left & greater_right & (magnitude >= threshold))[0]
    if candidate_idx.size == 0:
        return []
    order = np.argsort(magnitude[candidate_idx])[::-1]
    candidate_idx = candidate_idx[order]
    n_bins = total / oversample
    accepted: list[Peak] = []
    accepted_positions: list[float] = []
    for idx in candidate_idx:
        shift = _refine_quadratic(magnitude, int(idx))
        position = ((idx + shift) / oversample) % n_bins
        mag = float(magnitude[idx])
        rejected = False
        for peak, p in zip(accepted, accepted_positions):
            distance = min(abs(position - p), n_bins - abs(position - p))
            if distance < min_separation_bins:
                rejected = True
                break
            envelope = peak.magnitude * max(
                float(sidelobe_envelope(distance)),
                float(glitch_envelope(distance, int(round(n_bins)), max_delay_samples)),
            )
            if mag < leakage_margin * envelope:
                rejected = True
                break
        if rejected:
            continue
        accepted.append(
            Peak(
                position_bins=float(position),
                amplitude=complex(spectrum[int(idx)]),
                snr=float(magnitude[idx] / noise),
            )
        )
        accepted_positions.append(position)
        if max_peaks is not None and len(accepted) >= max_peaks:
            break
    return accepted


def peak_positions(peaks: list[Peak]) -> np.ndarray:
    """Convenience: array of peak positions in bins."""
    return np.array([p.position_bins for p in peaks], dtype=float)
