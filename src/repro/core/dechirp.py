"""Dechirping and oversampled spectra (paper Sec. 4, steps 1-2).

Multiplying a received window by the base down-chirp turns every colliding
up-chirp into a complex tone whose frequency is ``(data + offset)`` bins;
zero-padding the FFT by ``oversample`` (the paper uses 10x) reveals each
tone as a sinc whose *fractional* peak position carries the user identity.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.phy.chirp import downchirp
from repro.phy.params import LoRaParams
from repro.profile import context as profile_context
from repro.profile.profiler import shape_bucket

#: Zero-padding factor the paper uses for its wide FFTs (Sec. 5.1, Fig. 3d).
DEFAULT_OVERSAMPLE = 10


@lru_cache(maxsize=64)
def _downchirp_for(
    spreading_factor: int, bandwidth: float, sample_rate: float, oversampling: int
) -> np.ndarray:
    """Base down-chirp for one PHY configuration, generated once.

    The returned array is marked read-only: it is shared by every caller,
    and an in-place edit would silently corrupt all future dechirps.
    """
    del sample_rate  # implied by (bandwidth, oversampling); kept in the key
    params = LoRaParams(
        spreading_factor=spreading_factor,
        bandwidth=bandwidth,
        oversampling=oversampling,
    )
    chirp = downchirp(params)
    chirp.setflags(write=False)
    return chirp


def cached_downchirp(params: LoRaParams) -> np.ndarray:
    """Read-only cached base down-chirp for ``params``.

    :func:`dechirp_windows` runs in every decode of every packet, and
    regenerating the conjugate chirp (two transcendental passes over
    ``samples_per_symbol`` points) dominated its cost for short captures.
    The cache is keyed on ``(sf, bw, fs, oversampling)`` -- everything the
    waveform depends on -- so distinct PHY configurations never collide.
    """
    return _downchirp_for(
        params.spreading_factor,
        params.bandwidth,
        params.sample_rate,
        params.oversampling,
    )


@lru_cache(maxsize=64)
def _sample_index_for(n_samples: int) -> np.ndarray:
    """The ``0..n-1`` sample-index vector, generated once per length.

    Read-only for the same reason as :func:`_downchirp_for`: the array is
    shared by every phasor-basis builder in the hot path.
    """
    index = np.arange(n_samples)
    index.setflags(write=False)
    return index


def cached_sample_index(n_samples: int) -> np.ndarray:
    """Read-only cached ``np.arange(n_samples)`` phasor index.

    Every DTFT basis in the receiver (:func:`evaluate_spectrum_at`, the
    tone matrix, the residual engine's candidate columns) starts from this
    vector; allocating it per call measurably taxed the offset search,
    which builds thousands of bases per packet.  Mirrors
    :func:`cached_downchirp`.
    """
    return _sample_index_for(n_samples)


def dechirp_windows(
    params: LoRaParams, samples: np.ndarray, n_windows: int | None = None, start: int = 0
) -> np.ndarray:
    """Dechirp consecutive symbol windows of a capture.

    Returns an array of shape ``(n_windows, samples_per_symbol)`` where row
    ``m`` is window ``m`` multiplied by the base down-chirp.  Windows that
    would run past the end of ``samples`` are dropped.
    """
    samples = np.asarray(samples)
    n = params.samples_per_symbol
    available = (samples.size - start) // n
    if n_windows is None:
        n_windows = available
    n_windows = min(n_windows, available)
    if n_windows <= 0:
        return np.zeros((0, n), dtype=complex)
    with profile_context.kernel(
        "dechirp.windows",
        f"N{n}.M{shape_bucket(n_windows)}",
        bytes_touched=16 * n_windows * n,
    ):
        segment = samples[start : start + n_windows * n].reshape(n_windows, n)
        return segment * cached_downchirp(params)[None, :]


def oversampled_spectrum(dechirped: np.ndarray, oversample: int = DEFAULT_OVERSAMPLE) -> np.ndarray:
    """Zero-padded FFT of dechirped window(s).

    ``dechirped`` may be 1-D (one window) or 2-D (stack of windows); the FFT
    is along the last axis with length ``oversample * window_len``, so peak
    index ``i`` corresponds to ``i / oversample`` FFT bins.
    """
    dechirped = np.asarray(dechirped)
    n = dechirped.shape[-1]
    n_rows = int(np.prod(dechirped.shape[:-1])) if dechirped.ndim > 1 else 1
    with profile_context.kernel(
        "dechirp.fft",
        f"N{n * oversample}.M{shape_bucket(n_rows)}",
        fft_count=n_rows,
        fft_points=n_rows * n * oversample,
        bytes_touched=16 * n_rows * n * (oversample + 1),
    ):
        return np.fft.fft(dechirped, n * oversample, axis=-1)


def spectrum_bin_positions(n_bins: int, oversample: int = DEFAULT_OVERSAMPLE) -> np.ndarray:
    """Positions (in units of FFT bins) of each oversampled spectrum index."""
    return np.arange(n_bins * oversample) / oversample


def evaluate_spectrum_at(dechirped: np.ndarray, positions_bins: np.ndarray) -> np.ndarray:
    """Exact DTFT of a dechirped window at arbitrary fractional bins.

    Computes ``sum_n z[n] * exp(-2j*pi*p*n/N)`` for each position ``p`` --
    the infinitely zero-padded FFT evaluated only where needed.  Used by the
    fine offset search, where FFT-grid quantization would defeat the point.
    """
    dechirped = np.asarray(dechirped)
    n = dechirped.shape[-1]
    positions_bins = np.atleast_1d(np.asarray(positions_bins, dtype=float))
    with profile_context.kernel(
        "dechirp.dtft",
        f"N{n}.C{shape_bucket(positions_bins.size)}",
        bytes_touched=16 * positions_bins.size * n,
    ):
        basis = np.exp(
            -2j * np.pi * np.outer(positions_bins, cached_sample_index(n)) / n
        )
        return basis @ dechirped


def spectrogram(
    params: LoRaParams,
    samples: np.ndarray,
    window_len: int | None = None,
    hop: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier magnitude of a raw (not dechirped) capture.

    Only used for visualisation (reproducing the paper's Fig. 2/3
    spectrograms); returns ``(times_s, freqs_hz, magnitude)``.
    """
    samples = np.asarray(samples)
    if window_len is None:
        window_len = max(params.samples_per_symbol // 16, 8)
    if hop is None:
        hop = max(window_len // 2, 1)
    n_frames = max((samples.size - window_len) // hop + 1, 0)
    window = np.hanning(window_len)
    frames = np.stack(
        [samples[i * hop : i * hop + window_len] * window for i in range(n_frames)]
    ) if n_frames else np.zeros((0, window_len))
    spec = np.fft.fftshift(np.fft.fft(frames, axis=-1), axes=-1)
    freqs = np.fft.fftshift(np.fft.fftfreq(window_len, 1.0 / params.sample_rate))
    times = (np.arange(n_frames) * hop + window_len / 2) / params.sample_rate
    return times, freqs, np.abs(spec)
