"""The tiered decode cascade: Tier-0 fast path, full Choir on escalation.

Policy home for *which decoder runs on which window* (DESIGN.md Sec. 16).
All escalation decisions live here -- repro-lint rule R012 keeps gateway
and server code from importing :mod:`repro.core.fastpath` or growing
ad-hoc ``if collided:`` decoder selection; callers pick a tier by name
through :func:`build_pipeline` and hand every window to the returned
pipeline's ``decode_window``.

Tiers
-----
``full``
    :class:`ChoirPipeline` -- grid alignment plus the alignment-ladder
    retry loop around :class:`repro.core.ChoirDecoder` (the behaviour
    the gateway always had; bit-identical results).
``cascade``
    :class:`CascadePipeline` -- Tier-0
    (:class:`repro.core.fastpath.FastPathDecoder`) on windows the
    collision discriminator calls clean, escalation to the full
    pipeline on ``collided`` / ``ambiguous`` / ``no-preamble-peak``
    evidence, ``truncated`` windows, or a Tier-0 CRC failure.
``fast``
    Tier-0 only, never escalate -- the measurement configuration that
    isolates the fast path's own loss profile.

Instrumentation is duck-typed: ``decode_window`` takes any object with
``counter(name).inc()`` and ``timer(name)`` (the gateway passes its
job-local :class:`repro.gateway.telemetry.Telemetry`); the default
:data:`NULL_INSTRUMENTS` makes standalone use free.  Trace spans ride
:mod:`repro.trace.context` exactly like the detector's ``detect.align``
events do.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.decoder import ChoirDecoder
from repro.core.detection import align_to_window_grid
from repro.core.fastpath import (
    AMBIGUOUS,
    CLEAN,
    COLLIDED,
    FASTPATH_OVERSAMPLE,
    NO_PREAMBLE,
    CascadeThresholds,
    FastPathDecoder,
)
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams
from repro.trace import context as trace_context
from repro.utils.rng import RngLike

#: Accepted decode-tier names (CLI ``--decode-tier`` and config fields).
DECODE_TIERS: Tuple[str, ...] = ("full", "cascade", "fast")

#: Tier labels stamped on outcomes and telemetry.
TIER0 = "tier0"
TIER_FULL = "full"

#: Escalation reasons (the ``decode.escalated.{reason}`` counter suffixes
#: and the forensics ``escalation_reason`` vocabulary).
REASON_COLLIDED = COLLIDED
REASON_AMBIGUOUS = AMBIGUOUS
REASON_NO_PREAMBLE = NO_PREAMBLE
REASON_CRC_FAIL = "crc-fail"
REASON_TRUNCATED = "truncated"

ESCALATION_REASONS: Tuple[str, ...] = (
    REASON_COLLIDED,
    REASON_AMBIGUOUS,
    REASON_NO_PREAMBLE,
    REASON_CRC_FAIL,
    REASON_TRUNCATED,
)

_REASON_FOR_VERDICT = {
    COLLIDED: REASON_COLLIDED,
    AMBIGUOUS: REASON_AMBIGUOUS,
    NO_PREAMBLE: REASON_NO_PREAMBLE,
}


class _NullCounter:
    def inc(self, n: int = 1) -> None:
        """Discard the increment."""


class NullInstruments:
    """No-op stand-in for a telemetry registry (standalone pipeline use)."""

    def counter(self, name: str) -> _NullCounter:
        """A counter that discards increments."""
        return _NULL_COUNTER

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """A timer context that records nothing."""
        yield


_NULL_COUNTER = _NullCounter()
NULL_INSTRUMENTS = NullInstruments()


@dataclass(frozen=True)
class UserFrame:
    """One decoded user's payload attempt within a window."""

    offset_bins: float
    payload: bytes
    crc_ok: bool


@dataclass(frozen=True)
class WindowDecode:
    """What a pipeline made of one packet window.

    ``tier`` names the tier that produced the users (:data:`TIER0` or
    :data:`TIER_FULL`); ``escalation_reason`` is set whenever Tier 0
    declined the window (on the ``fast`` tier it records why the window
    *would* have escalated, with ``tier`` still :data:`TIER0`).
    """

    users: Tuple[UserFrame, ...]
    crc_ok: bool
    sync_retries: int = 0
    tier: str = TIER_FULL
    escalation_reason: Optional[str] = None

    @property
    def escalated(self) -> bool:
        """Whether the full pipeline ran because Tier 0 declined."""
        return self.tier == TIER_FULL and self.escalation_reason is not None


class ChoirPipeline:
    """The full decode path: grid alignment + alignment-ladder retries.

    Moved verbatim from the gateway worker so the cascade can reuse it
    as its escalation target; span names (``align``, ``attempt``) and
    instrument names (``decode.align_s``, ``decode.attempts``) are part
    of the trace/telemetry contract and must not drift.
    """

    tier = TIER_FULL

    def __init__(
        self,
        params: LoRaParams,
        rng: RngLike = None,
        use_engine: bool = True,
        synchronize: bool = True,
        coding_rate: int = 4,
        sync_search_symbols: int = 0,
        max_users: Optional[int] = None,
    ) -> None:
        self.params = params
        self.decoder = ChoirDecoder(params, use_engine=use_engine, rng=rng)
        self.framer = LoRaFramer(params, coding_rate=coding_rate)
        self.synchronize = synchronize
        self.sync_search_symbols = sync_search_symbols
        self.max_users = max_users

    def _decode_at(
        self,
        samples: np.ndarray,
        offset: int,
        n_data_symbols: int,
        payload_len: int,
    ) -> List[UserFrame]:
        """Decode ``samples[offset:]`` and CRC-check every user found."""
        users = self.decoder.decode(
            samples[offset:], n_data_symbols, max_users=self.max_users
        )
        results: List[UserFrame] = []
        for user in users:
            if user.symbols.size < self.framer.n_symbols_for_payload(payload_len):
                continue
            frame = user.decode_payload(self.framer, payload_len)
            results.append(
                UserFrame(
                    offset_bins=user.offset_bins,
                    payload=frame.payload,
                    crc_ok=frame.crc_ok,
                )
            )
        return results

    def decode_window(
        self,
        samples: np.ndarray,
        n_data_symbols: int,
        payload_len: int,
        instruments: NullInstruments = NULL_INSTRUMENTS,
    ) -> WindowDecode:
        """Align, then decode with the CRC-oracle alignment ladder."""
        n = self.params.samples_per_symbol
        if self.synchronize:
            candidate_range = (
                (0, self.sync_search_symbols * n)
                if self.sync_search_symbols > 0
                else None
            )
            with trace_context.span("align"), instruments.timer("decode.align_s"):
                base, align_score = align_to_window_grid(
                    self.params,
                    samples,
                    candidate_range=candidate_range,
                )
                trace_context.annotate(offset=base, score=float(align_score))
            # The decoder's sweet spot is a grid a fraction of a window
            # *after* the true boundary (the small data leak is absorbed by
            # the boundary-glitch model), while the ridge's "latest" pick can
            # overshoot it by a variable amount.  Quarter-window ladder steps
            # cover the overshoot spread (biased earlier) without gaps.
            offsets = [base]
            for delta in (-n // 4, n // 4, -n // 2, -3 * n // 4):
                candidate = base + delta
                if candidate >= 0 and candidate not in offsets:
                    offsets.append(candidate)
        else:
            offsets = [0]
        results: List[UserFrame] = []
        retries = 0
        for attempt, offset in enumerate(offsets):
            with trace_context.span("attempt", index=attempt, offset=int(offset)):
                instruments.counter("decode.attempts").inc()
                attempt_results = self._decode_at(
                    samples, offset, n_data_symbols, payload_len
                )
                trace_context.add_event(
                    "attempt.result",
                    n_users=len(attempt_results),
                    n_crc_ok=sum(1 for r in attempt_results if r.crc_ok),
                )
            if attempt == 0:
                results = attempt_results
            else:
                retries += 1
            if any(r.crc_ok for r in attempt_results):
                results = attempt_results
                break
        return WindowDecode(
            users=tuple(results),
            crc_ok=any(r.crc_ok for r in results),
            sync_retries=retries,
            tier=TIER_FULL,
        )


class CascadePipeline:
    """Tier-0 fast path with discriminator-gated escalation.

    ``full`` is the escalation target (a :class:`ChoirPipeline`), or
    ``None`` for the never-escalate ``fast`` tier.
    """

    def __init__(
        self,
        params: LoRaParams,
        full: Optional[ChoirPipeline] = None,
        thresholds: Optional[CascadeThresholds] = None,
        coding_rate: int = 4,
        oversample: int = FASTPATH_OVERSAMPLE,
    ) -> None:
        self.params = params
        self.full = full
        self.thresholds = thresholds if thresholds is not None else CascadeThresholds()
        self.fast = FastPathDecoder(params, oversample=oversample)
        self.framer = LoRaFramer(params, coding_rate=coding_rate)

    @property
    def tier(self) -> str:
        """The configured tier name: ``"cascade"`` or ``"fast"``."""
        return "cascade" if self.full is not None else "fast"

    def _tier0(
        self,
        samples: np.ndarray,
        n_data_symbols: int,
        payload_len: int,
        instruments: NullInstruments,
    ) -> Tuple[Optional[WindowDecode], Optional[str]]:
        """Run Tier 0: ``(result, None)`` on success, else the reason.

        A CRC-failing clean decode returns both -- the partial result
        (kept by the ``fast`` tier) and the ``crc-fail`` reason the
        cascade escalates on.
        """
        with trace_context.span("decode.tier0"):
            instruments.counter("decode.tier0.attempts").inc()
            start = self.fast.estimate_packet_start(samples)
            evidence = self.fast.analyze_preamble(samples, start)
            verdict = evidence.classify(self.thresholds)
            trace_context.annotate(
                start=int(start),
                mu_bins=round(evidence.mu_bins, 4),
                peak_snr=round(evidence.peak_snr, 3),
                second_peak_ratio=round(evidence.second_peak_ratio, 4),
                fractional_spread_bins=round(evidence.fractional_spread_bins, 4),
                verdict=verdict,
            )
            if verdict != CLEAN:
                return None, _REASON_FOR_VERDICT[verdict]
            user = self.fast.decode(samples, evidence, n_data_symbols)
            if user.symbols.size < self.framer.n_symbols_for_payload(payload_len):
                return None, REASON_TRUNCATED
            frame = user.decode_payload(self.framer, payload_len)
            result = WindowDecode(
                users=(
                    UserFrame(
                        offset_bins=user.offset_bins,
                        payload=frame.payload,
                        crc_ok=frame.crc_ok,
                    ),
                ),
                crc_ok=frame.crc_ok,
                sync_retries=0,
                tier=TIER0,
            )
            if not frame.crc_ok:
                return result, REASON_CRC_FAIL
            instruments.counter("decode.tier0.ok").inc()
            return result, None

    def decode_window(
        self,
        samples: np.ndarray,
        n_data_symbols: int,
        payload_len: int,
        instruments: NullInstruments = NULL_INSTRUMENTS,
    ) -> WindowDecode:
        """Tier-0 decode, escalating to the full pipeline on any doubt."""
        tier0_result, reason = self._tier0(
            samples, n_data_symbols, payload_len, instruments
        )
        if reason is None:
            assert tier0_result is not None
            return tier0_result
        if self.full is None:
            # "fast" tier: no escalation target; report Tier 0's verdict
            # with the reason it *would* have escalated for.
            if tier0_result is not None:
                return replace(tier0_result, escalation_reason=reason)
            return WindowDecode(
                users=(),
                crc_ok=False,
                sync_retries=0,
                tier=TIER0,
                escalation_reason=reason,
            )
        instruments.counter("decode.escalated").inc()
        instruments.counter(f"decode.escalated.{reason}").inc()
        with trace_context.span("decode.escalate", reason=reason):
            full_result = self.full.decode_window(
                samples, n_data_symbols, payload_len, instruments
            )
        return replace(full_result, escalation_reason=reason)


def build_pipeline(
    tier: str,
    params: LoRaParams,
    rng: RngLike = None,
    use_engine: bool = True,
    synchronize: bool = True,
    coding_rate: int = 4,
    sync_search_symbols: int = 0,
    max_users: Optional[int] = None,
    thresholds: Optional[CascadeThresholds] = None,
) -> "ChoirPipeline | CascadePipeline":
    """The single sanctioned pipeline constructor (R012).

    Callers name a tier from :data:`DECODE_TIERS`; which decoder runs on
    which window is this module's decision alone.
    """
    if tier not in DECODE_TIERS:
        raise ValueError(f"decode tier must be one of {DECODE_TIERS}, got {tier!r}")
    if tier == "fast":
        return CascadePipeline(
            params, full=None, thresholds=thresholds, coding_rate=coding_rate
        )
    full = ChoirPipeline(
        params,
        rng=rng,
        use_engine=use_engine,
        synchronize=synchronize,
        coding_rate=coding_rate,
        sync_search_symbols=sync_search_symbols,
        max_users=max_users,
    )
    if tier == "full":
        return full
    return CascadePipeline(
        params, full=full, thresholds=thresholds, coding_rate=coding_rate
    )
