"""Below-noise packet detection by preamble accumulation (paper Sec. 7.2).

A single window's dechirped peak from a far-away team member is buried in
noise.  But every preamble window puts each user's peak in the *same*
oversampled FFT position, while noise is independent across windows --
averaging the power spectra over the ``n``-symbol preamble shrinks the
noise spread and lets peaks (and the team's *sum* of peaks) emerge.

The detector is calibrated against the exact null distribution: with
``n`` averaged windows, each bin's power (normalized by the noise power)
is ``Gamma(n, 1/n)``; the detection threshold is the ``(1 - pfa)``
quantile of the *maximum* over the effectively independent bins, scaled by
a median-based noise estimate.  A naive "k sigmas above the mean" rule
false-alarms constantly on the exponential tail of a single window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.dechirp import DEFAULT_OVERSAMPLE, dechirp_windows, oversampled_spectrum
from repro.core.peaks import Peak, find_peaks
from repro.phy.params import LoRaParams
from repro.trace import context as trace_context


def accumulate_preamble(
    dechirped_windows_arr: np.ndarray, oversample: int = DEFAULT_OVERSAMPLE
) -> np.ndarray:
    """Noncoherent accumulation: mean power spectrum over windows."""
    rows = np.atleast_2d(np.asarray(dechirped_windows_arr))
    spectra = oversampled_spectrum(rows, oversample)
    return np.mean(np.abs(spectra) ** 2, axis=0)


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of a packet-detection attempt.

    ``score`` is the ratio of the strongest accumulated bin to the
    calibrated null threshold: > 1 means detected; comparable across
    candidate start positions.
    """

    detected: bool
    start_window: int
    peaks: tuple[Peak, ...]
    score: float

    @property
    def n_peaks(self) -> int:
        """Number of distinct accumulated-preamble peaks (team members seen)."""
        return len(self.peaks)


def detection_threshold(
    n_windows: int, n_independent_bins: int, pfa: float = 1e-3
) -> float:
    """Normalized detection threshold for the accumulated power maximum.

    Returns the multiple of the *noise power* that the maximum accumulated
    bin must exceed for a false-alarm probability of ``pfa``: the
    ``(1 - pfa)**(1/B)`` quantile of ``Gamma(n, 1/n)`` over ``B``
    effectively independent bins.
    """
    per_bin_quantile = (1.0 - pfa) ** (1.0 / max(n_independent_bins, 1))
    return float(stats.gamma.ppf(per_bin_quantile, a=n_windows, scale=1.0 / n_windows))


def detect_preamble(
    accumulated_power: np.ndarray,
    oversample: int = DEFAULT_OVERSAMPLE,
    n_windows: int = 1,
    pfa: float = 1e-3,
    max_peaks: int | None = None,
) -> DetectionResult:
    """Detect peaks in an accumulated power spectrum.

    Parameters
    ----------
    accumulated_power:
        Output of :func:`accumulate_preamble`.
    n_windows:
        How many windows were averaged (sets the null distribution).
    pfa:
        Target false-alarm probability per detection attempt.
    """
    power = np.asarray(accumulated_power, dtype=float)
    if power.size == 0:
        return DetectionResult(detected=False, start_window=0, peaks=(), score=0.0)
    n_bins = power.size // max(oversample, 1)
    # Median-based noise estimate: median of Gamma(n, 1/n) times the noise
    # power equals the spectrum median (peaks barely move the median).
    gamma_median = float(stats.gamma.ppf(0.5, a=n_windows, scale=1.0 / n_windows))
    noise_power = float(np.median(power)) / max(gamma_median, 1e-30)
    threshold = noise_power * detection_threshold(n_windows, n_bins, pfa)
    peak_power = float(power.max())
    score = peak_power / max(threshold, 1e-30)
    if score < 1.0:
        return DetectionResult(detected=False, start_window=0, peaks=(), score=score)
    pseudo = np.sqrt(np.maximum(power, 0.0)).astype(complex)
    # find_peaks thresholds magnitude against the median magnitude; convert
    # the calibrated power threshold into that scale.
    magnitude_threshold_snr = float(
        np.sqrt(threshold) / max(np.median(np.sqrt(power)), 1e-30)
    )
    peaks = find_peaks(
        pseudo,
        oversample,
        threshold_snr=magnitude_threshold_snr,
        max_peaks=max_peaks,
    )
    return DetectionResult(detected=True, start_window=0, peaks=tuple(peaks), score=score)


def align_to_window_grid(
    params: LoRaParams,
    samples: np.ndarray,
    n_offsets: int = 16,
    oversample: int = 4,
    guard_samples: int = 8,
    ridge_tolerance: float = 0.85,
    candidate_range: tuple[int, int] | None = None,
) -> tuple[int, float]:
    """Find the sample offset placing the preamble at the window grid start.

    The preamble is the same chirp repeated, so any grid offset *inside*
    it dechirps to clean tones -- peak sharpness alone is degenerate.  The
    non-degenerate statistic is the sharpness of an accumulation **span**
    of ``preamble_len - 1`` windows: the score collapses once the span
    leaks into leading noise or into (random-valued) data symbols, so high
    scores form a ridge exactly one window wide around the true start.
    (Window-aligned candidates inside the ridge also out-score mid-chirp
    ones by ~25 %, because a straddling grid adds every user's boundary
    phase glitch to each window.)  Among near-maximal candidates we take
    the *latest* start minus a small guard, which leaves each user a small
    positive residual delay -- the regime the per-user delay estimator is
    built for; ``ridge_tolerance`` must sit above the mid-chirp score
    plateau (~0.76 of the peak) but below the ridge's own noise spread.

    ``candidate_range`` restricts the considered start samples to the
    half-open interval ``[lo, hi)``.  Callers that already know where the
    boundary must lie -- the streaming gateway cuts windows with one
    symbol of lead, bounding the true start to the first two symbols --
    should pass it: inside the preamble the repeated chirp is
    phase-continuous, so when the first data symbol's tone happens to
    fall near the preamble tone the ridge can stretch several windows
    past the true boundary, and an unconstrained "latest" pick overshoots.

    Returns ``(sample_offset, score)``; feed ``samples[sample_offset:]`` to
    :meth:`repro.core.ChoirDecoder.decode`.
    """
    samples = np.asarray(samples)
    n = params.samples_per_symbol
    span = params.preamble_len - 1
    if samples.size < (params.preamble_len + 1) * n:
        return 0, 0.0
    step = max(n // n_offsets, 1)
    max_windows: int | None = None
    if candidate_range is not None:
        lo, hi = candidate_range
        if lo <= 0 < hi:
            # A candidate at start ``offset + w*n < hi`` only reads the
            # accumulation span ``spectra[w+1 : w+1+span]``; dechirping
            # windows past ``(hi-1)//n + span`` is pure waste (it was the
            # dominant cost of short bounded searches).  Safe to truncate
            # because the candidate at start 0 is always scored and in
            # range, so the bounded set below cannot be empty and the
            # unbounded fallback cannot trigger.
            max_windows = (hi - 1) // n + 1 + span
    candidates: list[tuple[int, float]] = []  # (start_sample, score)
    for offset in range(0, n, step):
        windows = dechirp_windows(params, samples, n_windows=max_windows, start=offset)
        spectra = np.abs(oversampled_spectrum(windows, oversample)) ** 2
        n_starts = windows.shape[0] - span
        for w in range(max(n_starts, 0)):
            accumulated = spectra[w + 1 : w + 1 + span].mean(axis=0)
            score = float(
                accumulated.max() / max(np.median(accumulated), 1e-30)
            )
            candidates.append((offset + w * n, score))
    if candidate_range is not None:
        lo, hi = candidate_range
        bounded = [(s, score) for s, score in candidates if lo <= s < hi]
        if bounded:
            candidates = bounded
    if not candidates:
        return 0, 0.0
    best_score = max(score for _, score in candidates)
    ridge = [s for s, score in candidates if score >= ridge_tolerance * best_score]
    start = max(max(ridge) - guard_samples, 0)
    # Provenance: the ridge evidence behind the chosen grid offset; the
    # forensics layer calls a failed decode with a plateau-level score
    # misaligned.  No-op when tracing is off.
    trace_context.add_event(
        "detect.align",
        start=int(start),
        score=best_score,
        ridge_width=len(ridge),
    )
    return start, best_score


def sliding_packet_search(
    params: LoRaParams,
    samples: np.ndarray,
    oversample: int = DEFAULT_OVERSAMPLE,
    pfa: float = 1e-3,
    max_start_windows: int | None = None,
    earliest: bool = False,
) -> DetectionResult:
    """Search for a preamble over window-aligned start positions.

    Slides an accumulation window of ``params.preamble_len`` symbols over
    the capture (window-granular, as the beacon slotting guarantees
    window-scale alignment) and returns the best-scoring start.  The
    per-attempt ``pfa`` is divided by the number of starts tried, so the
    search-level false-alarm rate stays at ``pfa``.

    With ``earliest=True`` (the streaming-gateway mode), the search stops at
    the *first* detection instead of the global best: once a start crosses
    the threshold, later starts compete for the local score peak only while
    the score keeps improving -- every new best pushes the horizon out by
    another ``preamble_len - 1`` starts, so a marginal early crossing (e.g.
    adjacent-channel leakage nudging the floor just past the threshold a few
    windows before a real preamble) still climbs to the true start.  Once
    past the peak the scores decay, the horizon freezes, and the search
    stops well before the next packet (at least a frame away) could outbid
    this one -- so a caller consuming the buffer front-to-back never skips
    a packet.
    """
    samples = np.asarray(samples)
    n = params.samples_per_symbol
    total_windows = samples.size // n
    n_starts = total_windows - params.preamble_len + 1
    if max_start_windows is not None:
        n_starts = min(n_starts, max_start_windows)
    if n_starts <= 0:
        return DetectionResult(detected=False, start_window=0, peaks=(), score=0.0)
    all_windows = dechirp_windows(params, samples)
    spectra_power = np.abs(oversampled_spectrum(all_windows, oversample)) ** 2
    per_start_pfa = pfa / n_starts
    best = DetectionResult(detected=False, start_window=0, peaks=(), score=-np.inf)
    last_start: int | None = None
    for start in range(n_starts):
        if last_start is not None and start > last_start:
            break
        accumulated = np.mean(
            spectra_power[start : start + params.preamble_len], axis=0
        )
        result = detect_preamble(
            accumulated,
            oversample,
            n_windows=params.preamble_len,
            pfa=per_start_pfa,
        )
        if result.score > best.score:
            best = DetectionResult(
                detected=result.detected,
                start_window=start,
                peaks=result.peaks,
                score=result.score,
            )
            if earliest and last_start is not None:
                # Still climbing towards the preamble's score peak: give
                # the refinement another preamble span to keep improving.
                last_start = max(last_start, start + params.preamble_len - 1)
        if earliest and result.detected and last_start is None:
            # Keep refining within one preamble span of the first crossing
            # (extended while the score rises), then stop -- later packets
            # must not outbid this one.
            last_start = start + params.preamble_len - 1
    return best
