"""Multi-spreading-factor demultiplexing (paper Sec. 5.2, note 4).

Chirps of different spreading factors are (quasi-)orthogonal: dechirping a
mixed capture with SF ``s``'s down-chirp collapses only the SF-``s``
transmissions into tones, while other SFs stay spread across the band as
residual chirps.  A LoRaWAN gateway already exploits this to decode one
packet per SF in parallel; Choir composes with it -- the base station
dechirps the stream once per active SF and runs the collision decoder on
each resulting branch, so `5 sensors at SFs {7, 7, 8, 8, 9}` decode as a
2-collision at SF7, a 2-collision at SF8 and a singleton at SF9.

The branch decoders see each other's transmissions as wideband
chirp-shaped interference whose per-bin power is the aggregate power
spread over ``2**SF`` bins -- a small SNR penalty rather than a collision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decoder import ChoirDecoder, DecodedUser
from repro.phy.chirp import delayed_chirp_train
from repro.phy.params import LoRaParams
from repro.utils import RngLike, ensure_rng


def reconstruct_user_waveform(
    params: LoRaParams,
    user: DecodedUser,
    include_preamble: bool = True,
) -> np.ndarray:
    """Rebuild a decoded user's unit-amplitude transmit waveform.

    Uses the estimated sub-symbol delay and CFO (``cfo = mu + delay``,
    Eqn. 5) to re-render the frame exactly as the channel delivered it, up
    to the complex channel scale -- which callers fit per window against
    the capture before subtracting (so slow phase drift from any residual
    CFO error cannot accumulate).
    """
    estimate = user.estimate
    head = [0] * params.preamble_len if include_preamble else []
    frame_symbols = np.concatenate(
        [np.asarray(head, dtype=int), np.asarray(user.symbols, dtype=int)]
    )
    clean = delayed_chirp_train(params, frame_symbols, estimate.delay_samples)
    cfo_hz = params.bins_to_hz(estimate.cfo_bins)
    t = np.arange(clean.size) / params.sample_rate
    return clean * np.exp(2j * np.pi * cfo_hz * t)


def subtract_branch(
    capture: np.ndarray,
    params: LoRaParams,
    users: tuple[DecodedUser, ...] | list[DecodedUser],
) -> np.ndarray:
    """Cancel one SF branch's decoded users from the raw capture.

    Per user, the unit waveform is re-rendered and a *per-window* complex
    scale is least-squares fitted against the capture, then subtracted --
    cross-SF SIC, so weaker branches see less chirp-shaped interference.
    """
    residual = np.array(capture, dtype=complex, copy=True)
    n = params.samples_per_symbol
    for user in users:
        unit = reconstruct_user_waveform(params, user)
        usable = min(unit.size, residual.size)
        n_windows = usable // n
        for m in range(n_windows):
            sl = slice(m * n, (m + 1) * n)
            u = unit[sl]
            energy = np.vdot(u, u).real
            if energy < 1e-12:
                continue
            scale = np.vdot(u, residual[sl]) / energy
            residual[sl] -= scale * u
    return residual


@dataclass(frozen=True)
class SfBranchResult:
    """Everything decoded on one spreading factor's branch."""

    spreading_factor: int
    users: tuple[DecodedUser, ...]

    @property
    def n_users(self) -> int:
        """Number of users decoded at this spreading factor."""
        return len(self.users)


class MultiSfDecoder:
    """Run Choir independently per active spreading factor.

    Parameters
    ----------
    bandwidth / preamble_len:
        Shared across all branches (the LoRaWAN channel is common; only
        the spreading factor differs per client).
    spreading_factors:
        The SFs to demultiplex.  Each gets its own :class:`LoRaParams`
        (hence its own symbol length ``2**SF / BW``) and its own
        :class:`ChoirDecoder`.
    """

    def __init__(
        self,
        spreading_factors: tuple[int, ...] = (7, 8, 9),
        bandwidth: float = 125_000.0,
        preamble_len: int = 8,
        threshold_snr: float = 4.0,
        rng: RngLike = None,
    ) -> None:
        if not spreading_factors:
            raise ValueError("at least one spreading factor is required")
        if len(set(spreading_factors)) != len(spreading_factors):
            raise ValueError("spreading factors must be distinct")
        self._rng = ensure_rng(rng)
        self.branches: dict[int, tuple[LoRaParams, ChoirDecoder]] = {}
        for sf in spreading_factors:
            params = LoRaParams(
                spreading_factor=sf, bandwidth=bandwidth, preamble_len=preamble_len
            )
            decoder = ChoirDecoder(
                params, threshold_snr=threshold_snr, rng=self._rng
            )
            self.branches[sf] = (params, decoder)

    def params_for(self, spreading_factor: int) -> LoRaParams:
        """The PHY parameters of one branch."""
        return self.branches[spreading_factor][0]

    def decode(
        self,
        samples: np.ndarray,
        n_data_symbols: dict[int, int],
        max_users: int | None = None,
        cancel_across_sf: bool = True,
    ) -> list[SfBranchResult]:
        """Demultiplex and decode a mixed-SF capture.

        Parameters
        ----------
        samples:
            The raw base-station capture (all SFs superimposed, common
            sample rate = the shared bandwidth).
        n_data_symbols:
            Per-SF number of data symbols to decode (frames at different
            SFs carry different symbol counts for the same payload).
        cancel_across_sf:
            Apply cross-SF SIC: every branch first decodes the raw capture
            independently, then each branch is re-decoded with every
            *other* branch's reconstructed waveforms subtracted.  Because
            each subtraction is a per-window projection it can only remove
            power, so symbol errors in a first-pass reconstruction cannot
            inject interference into the second pass -- they just cancel
            less.  Orthogonality makes the cross-SF penalty small but not
            zero; cancellation recovers the rest.

        Returns
        -------
        One :class:`SfBranchResult` per configured spreading factor (empty
        user list when nothing was active on that SF).
        """
        active = [sf for sf in self.branches if n_data_symbols.get(sf, 0) > 0]
        results: dict[int, SfBranchResult] = {
            sf: SfBranchResult(spreading_factor=sf, users=())
            for sf in self.branches
        }
        # Pass 1: every branch decodes the raw capture independently.
        for sf in active:
            _, decoder = self.branches[sf]
            users = decoder.decode(samples, n_data_symbols[sf], max_users=max_users)
            results[sf] = SfBranchResult(spreading_factor=sf, users=tuple(users))
        if not cancel_across_sf or len(active) <= 1:
            return [results[sf] for sf in self.branches]
        # Pass 2: re-decode each branch against the capture with every
        # *other* branch's pass-1 reconstruction removed.
        pass1 = dict(results)
        for sf in active:
            _, decoder = self.branches[sf]
            cleaned = np.asarray(samples, dtype=complex)
            for other in active:
                if other == sf:
                    continue
                cleaned = subtract_branch(
                    cleaned, self.branches[other][0], pass1[other].users
                )
            users = decoder.decode(cleaned, n_data_symbols[sf], max_users=max_users)
            results[sf] = SfBranchResult(spreading_factor=sf, users=tuple(users))
        return [results[sf] for sf in self.branches]


def cross_sf_interference_penalty_db(
    own_sf: int, other_sf: int, other_power_ratio: float = 1.0
) -> float:
    """SNR penalty an SF branch pays for a concurrent other-SF transmitter.

    Dechirping with the wrong SF leaves the foreign signal spread over the
    band: per dechirped bin it contributes roughly ``P_other / 2**own_sf``
    of extra noise-like power, i.e. an SNR penalty of
    ``10*log10(1 + P_other/P_noise / 2**own_sf)`` (small for the power
    ratios LP-WANs see -- the quantitative face of "orthogonality").
    """
    spread = other_power_ratio / (1 << own_sf)
    return float(10.0 * np.log10(1.0 + spread))
