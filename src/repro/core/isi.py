"""Inter-symbol-interference handling (paper Sec. 6.1, Fig. 5).

A user whose chirps are offset by ``delta`` samples straddles the receiver's
window grid: window ``m`` contains the tail of that user's symbol ``m-1``
(``delta`` samples) and the head of symbol ``m`` (``N - delta`` samples).
Both segments dechirp to tones at the *same* shifted position rule
``(value - delta + cfo) mod N``, so the window shows up to two peaks per
user and adjacent windows share one data value.  The fix the paper
prescribes: report each shared value once, the first time it appears, which
re-serializes every user's stream correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WindowObservation:
    """Peaks attributed to one user in one demodulation window.

    ``values`` are candidate symbol values; ``weights`` their peak energies
    (the head of the current symbol occupies ``N - delta`` samples and so
    outweighs the ``delta``-sample tail of the previous one).
    """

    values: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ValueError("values and weights must have equal length")


def deduplicate_symbol_streams(
    observations: list[WindowObservation], delay_samples: float, n_samples: int
) -> list[int]:
    """Re-serialize one user's symbol stream from straddled windows.

    Parameters
    ----------
    observations:
        One :class:`WindowObservation` per receiver window, in order.
    delay_samples:
        The user's timing offset; decides whether the dominant peak in a
        window is the current symbol (small delay) or the previous one
        (delay beyond half a window).
    n_samples:
        Window length ``N`` (used to interpret the delay fraction).

    Returns
    -------
    The de-duplicated symbol sequence: each window contributes exactly one
    *new* symbol; values shared with the previous window are reported only
    on first appearance (paper Sec. 6.1).
    """
    if not observations:
        return []
    frac = (delay_samples % n_samples) / n_samples
    # For delay < N/2 the higher-energy peak in each window is the *current*
    # symbol; beyond N/2 it is the previous one.  Using energy ordering makes
    # the chain reconstruction robust to repeated symbol values.
    current_is_stronger = frac < 0.5
    stream: list[int] = []
    previous_current: int | None = None
    for obs in observations:
        if not obs.values:
            # Erasure: keep cadence with a sentinel the caller can handle.
            previous_current = None
            continue
        order = np.argsort(obs.weights)[::-1]
        strongest = obs.values[order[0]]
        if len(obs.values) == 1:
            current = strongest
        else:
            second = obs.values[order[1]]
            if current_is_stronger:
                current, previous = strongest, second
            else:
                current, previous = second, strongest
            # Consistency: the "previous" peak should match what we already
            # emitted for the prior window; if it matches the other way
            # around, swap (handles energy ties at delay ~ N/2).
            if (
                previous_current is not None
                and previous != previous_current
                and current == previous_current
                and len(set(obs.values)) > 1
            ):
                current, previous = previous, current
        stream.append(int(current))
        previous_current = int(current)
    return stream


def expected_peak_count(delay_samples: float, n_samples: int) -> int:
    """How many peaks one user contributes per window (1 aligned, else 2)."""
    return 1 if (delay_samples % n_samples) == 0 else 2
