"""Model-vs-waveform calibration of the Choir PHY outcome model.

The Fig. 8 network sweeps use :class:`repro.mac.phy.ChoirPhyModel` because
the waveform decoder is too slow for minutes of simulated airtime.  This
experiment justifies that substitution: for each collision size, it
resolves the same offered load both ways -- fast model and real waveform
decoder -- and reports the delivered fraction side by side.  The model is
considered calibrated when the two traces agree within a few points.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.mac.phy import ChoirPhyModel, Transmission
from repro.mac.waveform_phy import WaveformPhy
from repro.utils import ensure_rng


def run_phy_calibration(
    user_counts: tuple[int, ...] = (2, 4, 6, 8, 10),
    n_trials: int = 4,
    snr_range_db: tuple[float, float] = (6.0, 25.0),
    payload_bits: int = 128,
    seed: int = 72,
) -> ExperimentResult:
    """Delivered fraction per collision size: fast model vs waveform.

    Each trial is one slot with ``n`` concurrent transmissions whose SNRs
    are drawn uniformly from ``snr_range_db`` -- the spread a real
    deployment's "100 random locations" produces (Sec. 8), and the regime
    the paper's results live in.  The waveform path draws fresh boards per
    trial (matching the model's fresh offset draws).
    """
    params = DEFAULT_PARAMS
    result = ExperimentResult(
        name="calibration: ChoirPhyModel vs waveform decoder",
        notes=(
            f"{n_trials} trials per point, SNR uniform in {snr_range_db} dB; "
            "the fast model must track the waveform decoder's delivered fraction"
        ),
    )
    for n_users in user_counts:
        model_delivered = []
        waveform_delivered = []
        for trial in range(n_trials):
            snr_rng = ensure_rng(seed * 7 + trial * 13 + n_users)
            transmissions = [
                Transmission(
                    node_id=i,
                    snr_db=float(snr_rng.uniform(*snr_range_db)),
                    n_payload_bits=payload_bits,
                )
                for i in range(n_users)
            ]
            model = ChoirPhyModel(params)
            model_rng = ensure_rng(seed * 1000 + trial * 17 + n_users)
            model_delivered.append(
                len(model.resolve(transmissions, rng=model_rng)) / n_users
            )
            waveform = WaveformPhy(params, rng=ensure_rng(seed + trial * 31 + n_users))
            waveform_delivered.append(
                len(waveform.resolve(transmissions)) / n_users
            )
        result.add(
            n_users=n_users,
            model_delivered=round(float(np.mean(model_delivered)), 3),
            waveform_delivered=round(float(np.mean(waveform_delivered)), 3),
            gap=round(
                float(np.mean(model_delivered) - np.mean(waveform_delivered)), 3
            ),
        )
    return result
