"""Fig. 5: inter-symbol interference peaks and their de-duplication.

Two users with a *large* sub-symbol timing offset straddle the receiver's
window grid: each window shows up to four peaks (two per user: previous +
current symbol), and adjacent windows share data values.  The experiment
verifies the peak count and that the de-duplication logic of Sec. 6.1
re-serializes both users' streams correctly.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.dechirp import dechirp_windows, oversampled_spectrum
from repro.core.isi import WindowObservation, deduplicate_symbol_streams
from repro.core.peaks import find_peaks
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.hardware.clock import TimingModel
from repro.hardware.oscillator import OscillatorModel
from repro.hardware.radio import LoRaRadio
from repro.utils import circular_distance, ensure_rng


def run_isi_windows(
    delay_fraction: float = 0.3,
    snr_db: float = 25.0,
    n_symbols: int = 10,
    seed: int = 5,
) -> ExperimentResult:
    """Count per-window peaks and validate stream re-serialization.

    One user is window-aligned, the other is delayed by
    ``delay_fraction`` of a symbol.  Rows report the mean number of
    spectral peaks per data window (paper: up to 4 for 2 users) and the
    accuracy of the de-duplicated streams.
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    n = params.samples_per_symbol
    delay_samples = delay_fraction * n
    radios = [
        LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(5.3)),
            timing=TimingModel(0.0),
            node_id=0,
            rng=rng,
        ),
        LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(40.8)),
            timing=TimingModel(delay_samples / params.sample_rate),
            node_id=1,
            rng=rng,
        ),
    ]
    amplitude = 10.0 ** (snr_db / 20.0)
    channel = CollisionChannel(params, noise_power=1.0)
    streams = [rng.integers(0, params.chips_per_symbol, n_symbols) for _ in radios]
    packet = channel.receive(
        [(r, s, amplitude + 0j) for r, s in zip(radios, streams)], rng=rng
    )
    start = params.preamble_len * n
    windows = dechirp_windows(params, packet.samples, n_windows=n_symbols, start=start)
    # Count raw peaks per window (no leakage filter: we *want* both the
    # current- and previous-symbol peaks of the delayed user).
    peak_counts = []
    delayed_mu = packet.users[1].true_offset_bins(params) % n
    observations: list[WindowObservation] = []
    for m in range(windows.shape[0]):
        peaks = find_peaks(
            oversampled_spectrum(windows[m], 10),
            10,
            threshold_snr=6.0,
            max_peaks=4,
            min_separation_bins=0.6,
            leakage_margin=0.0,
        )
        peak_counts.append(len(peaks))
        mine = [
            p
            for p in peaks
            if circular_distance(p.position_bins % 1.0, delayed_mu % 1.0) < 0.2
        ]
        values = tuple(
            int(np.round(p.position_bins - delayed_mu)) % n for p in mine
        )
        weights = tuple(p.magnitude for p in mine)
        observations.append(WindowObservation(values=values, weights=weights))
    recovered = deduplicate_symbol_streams(observations, delay_samples, n)
    truth = [int(v) for v in streams[1]]
    matched = sum(1 for a, b in zip(recovered, truth) if a == b)
    result = ExperimentResult(
        name="fig5: inter-symbol interference",
        notes="2 users, one delayed: <=4 peaks/window; dedup re-serializes",
    )
    result.add(
        delay_fraction=delay_fraction,
        mean_peaks_per_window=float(np.mean(peak_counts)),
        max_peaks_per_window=int(np.max(peak_counts)),
        dedup_accuracy=matched / max(len(truth), 1),
        recovered_len=len(recovered),
    )
    return result
