"""Fig. 9: extending range with teams of below-range transmitters.

(a) Team throughput vs team size: a bigger team's ML joint decoder pools
``sum_i SNR_i``, which (via LoRaWAN rate adaptation) buys a faster
spreading factor and more bits/s -- the paper reaches 5470 bps with teams
of up to 30 nodes that individually deliver zero.

(b) Maximum distance of the closest transmitter vs team size: the pooled
SNR buys ``K**(1/eta)`` distance under the eta=3.5 urban path-loss model,
i.e. 30 nodes reach ~2.65x the 1 km single-node limit -- the paper's
headline range result.

Both series come from the calibrated link budget; the waveform-level
:func:`validate_team_decode` cross-checks the model at small team sizes
(and is exercised by the tests and the benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.channel.link import LinkModel
from repro.core.decoder import ChoirDecoder
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.hardware.radio import LoRaRadio
from repro.mac.phy import DEFAULT_DECODE_SNR_DB
from repro.phy.params import LoRaParams
from repro.utils import ensure_rng

#: Team-size bands exactly as Fig. 9(a) buckets them.
FIG9A_BANDS = ((1, 1), (2, 6), (7, 11), (12, 16), (17, 21), (22, 25), (26, 30))

#: Team-size bands exactly as Fig. 9(b) buckets them.
FIG9B_BANDS = ((1, 10), (11, 20), (21, 30))


def _min_decode_snr_db() -> float:
    """Decode floor at the slowest LoRaWAN rate (SF12)."""
    return DEFAULT_DECODE_SNR_DB[12]


def _sf_for_pooled_snr(pooled_snr_db: float, margin_db: float = 3.0) -> int | None:
    """Fastest spreading factor a *pooled* team link supports.

    Unlike the access-network ladder in :func:`spreading_factor_for_snr`
    (which provisions ~16 dB of fading margin), scheduled teams average
    fading over their members, so a small margin above the raw decode
    floor suffices.  Returns ``None`` when even SF12 is out of reach.
    """
    for sf in range(7, 13):
        if pooled_snr_db >= DEFAULT_DECODE_SNR_DB[sf] + margin_db:
            return sf
    return None


def run_range_throughput(
    distance_m: float = 1300.0,
    payload_bits: int = 160,
    link: LinkModel | None = None,
) -> ExperimentResult:
    """Fig. 9(a): team throughput vs team size at a fixed beyond-range spot.

    The nodes sit at ``distance_m`` (beyond the single-node range, so a
    lone transmitter delivers zero).  A team of K pools ``K x`` SNR; rate
    adaptation picks the fastest spreading factor that pooled SNR supports
    and the throughput is that rate times the frame efficiency.
    """
    link = link or LinkModel()
    per_user_snr_db = link.mean_snr_db(distance_m)
    result = ExperimentResult(
        name="fig9a: team throughput vs #transmitters",
        notes=(
            f"nodes at {distance_m:.0f} m (per-user SNR {per_user_snr_db:.1f} dB, "
            "below the SF12 floor); paper peaks at ~5470 bps with up to 30 nodes"
        ),
    )
    for lo, hi in FIG9A_BANDS:
        team = hi
        pooled_snr_db = per_user_snr_db + 10.0 * np.log10(team)
        sf = _sf_for_pooled_snr(pooled_snr_db)
        if sf is None:
            result.add(
                band=f"{lo}-{hi}" if lo != hi else f"<{hi + 1}",
                team_size=team,
                pooled_snr_db=round(pooled_snr_db, 1),
                spreading_factor=None,
                throughput_bps=0.0,
            )
            continue
        params = LoRaParams(
            spreading_factor=sf,
            bandwidth=DEFAULT_PARAMS.bandwidth,
            preamble_len=DEFAULT_PARAMS.preamble_len,
        )
        n_data_symbols = int(np.ceil(payload_bits / sf))
        airtime = (params.preamble_len + n_data_symbols) * params.symbol_duration
        throughput = payload_bits / airtime
        result.add(
            band=f"{lo}-{hi}" if lo != hi else f"<{hi + 1}",
            team_size=team,
            pooled_snr_db=round(pooled_snr_db, 1),
            spreading_factor=sf,
            throughput_bps=round(throughput, 1),
        )
    return result


def run_range_vs_team(link: LinkModel | None = None) -> ExperimentResult:
    """Fig. 9(b): maximum reach of the closest transmitter vs team size.

    For a team of K, the decodable distance satisfies
    ``K * SNR(d) >= SNR_min`` so ``d_max = d_single * K**(1/eta)``.  Rows
    report the paper's three bands; the single-node limit calibrates to
    ~1 km (Sec. 9.3).
    """
    link = link or LinkModel()
    single_range = link.range_for_snr(_min_decode_snr_db())
    result = ExperimentResult(
        name="fig9b: max distance vs team size",
        notes=(
            f"single-node range {single_range:.0f} m; paper: 1 km alone, "
            "2.65 km with 30-node teams (2.65x)"
        ),
    )
    for lo, hi in FIG9B_BANDS:
        team = hi
        pooled_gain_db = 10.0 * np.log10(team)
        max_distance = link.range_for_snr(_min_decode_snr_db() - pooled_gain_db)
        result.add(
            band=f"{lo}-{hi}",
            team_size=team,
            max_distance_m=round(max_distance, 0),
            gain_over_single=round(max_distance / single_range, 3),
        )
    return result


def validate_team_decode(
    team_size: int,
    per_user_snr_db: float,
    n_symbols: int = 10,
    seed: int = 9,
    params: LoRaParams | None = None,
) -> dict[str, float]:
    """Waveform-level cross-check of the pooled-SNR model.

    Builds a real team collision (identical data, beacon-style sub-symbol
    timing offsets, per-user amplitude from the SNR), runs the full
    below-noise detection + ML joint decoding, and reports detection and
    symbol accuracy.  Used by tests and the fig9 benchmark to anchor the
    analytic series.
    """
    params = params or DEFAULT_PARAMS
    rng = ensure_rng(seed)
    amplitude = 10.0 ** (per_user_snr_db / 20.0)
    shared = rng.integers(0, params.chips_per_symbol, n_symbols)
    transmissions = []
    for i in range(team_size):
        radio = LoRaRadio(params, node_id=i, rng=rng)
        transmissions.append((radio, shared, amplitude + 0j))
    channel = CollisionChannel(params, noise_power=1.0)
    packet = channel.receive(transmissions, rng=rng)
    decoder = ChoirDecoder(params, rng=rng)
    outcome = decoder.decode_team(packet.samples, n_symbols)
    accuracy = (
        float(np.mean(outcome.symbols == shared))
        if outcome.detected and outcome.symbols.size == shared.size
        else 0.0
    )
    return {
        "detected": float(outcome.detected),
        "symbol_accuracy": accuracy,
        "n_members_detected": float(outcome.n_members_detected),
        "detection_score": float(outcome.score),
    }
