"""Fig. 3: two collided chirps produce two distinct, fractional FFT peaks.

The paper's walk-through example: two transmitters send the *same* symbol,
their chirps collide, and after dechirping the FFT shows one peak per
transmitter, separated by the difference of their hardware offsets.  At
10x zero-padding the fractional separation (e.g. 50.4 bins) becomes
visible in the sinc structure.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.dechirp import dechirp_windows, oversampled_spectrum
from repro.core.peaks import find_peaks
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.hardware.clock import TimingModel
from repro.hardware.oscillator import OscillatorModel
from repro.hardware.radio import LoRaRadio
from repro.utils import ensure_rng


def run_collision_peaks(
    offset_separation_bins: float = 50.4,
    snr_db: float = 25.0,
    oversample: int = 10,
    seed: int = 3,
) -> ExperimentResult:
    """Reproduce Fig. 3(c)-(d): peak structure of a two-user collision.

    Rows report, for FFT oversampling 1x (Fig. 3c) and ``oversample``x
    (Fig. 3d), the detected peak positions and their separation; the
    fractional part of the separation is only resolvable in the padded
    transform.
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    base_cfo_bins = 12.0
    radios = [
        LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(base_cfo_bins)),
            timing=TimingModel(0.0),
            node_id=1,
            rng=rng,
        ),
        LoRaRadio(
            params,
            oscillator=OscillatorModel(
                params.bins_to_hz(base_cfo_bins + offset_separation_bins)
            ),
            timing=TimingModel(0.0),
            node_id=2,
            rng=rng,
        ),
    ]
    amplitude = 10.0 ** (snr_db / 20.0)
    channel = CollisionChannel(params, noise_power=1.0)
    symbols = np.zeros(4, dtype=int)  # both transmit the same symbol
    packet = channel.receive(
        [(r, symbols, amplitude + 0j) for r in radios], rng=rng
    )
    windows = dechirp_windows(
        params, packet.samples, n_windows=4, start=params.samples_per_symbol
    )
    result = ExperimentResult(
        name="fig3: collided chirp peaks",
        notes=(
            f"true separation {offset_separation_bins} bins; the 1x FFT "
            "quantizes it to an integer, the padded FFT resolves the fraction"
        ),
    )
    for factor, label in [(1, "1x (Fig 3c)"), (oversample, f"{oversample}x (Fig 3d)")]:
        spectrum = oversampled_spectrum(windows[1], factor)
        peaks = find_peaks(spectrum, factor, threshold_snr=4.0, max_peaks=2)
        peaks = sorted(peaks, key=lambda p: p.position_bins)
        if len(peaks) == 2:
            separation = abs(peaks[1].position_bins - peaks[0].position_bins)
        else:
            separation = float("nan")
        result.add(
            fft=label,
            n_peaks=len(peaks),
            peak1_bins=round(peaks[0].position_bins, 3) if peaks else None,
            peak2_bins=round(peaks[1].position_bins, 3) if len(peaks) > 1 else None,
            separation_bins=round(separation, 3),
        )
    return result
