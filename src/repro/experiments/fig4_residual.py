"""Fig. 4: the offset-estimation residual is locally convex.

Evaluates R(f1, f2) (Eqn. 3) on a grid around the true offsets of a
two-user collision and quantifies local convexity: the global minimum of
the sampled surface should sit at the true offsets, and the surface should
increase monotonically along rays leaving it -- which is what makes the
paper's descent-based search work.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.dechirp import dechirp_windows
from repro.core.residual import residual_surface
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.hardware.clock import TimingModel
from repro.hardware.oscillator import OscillatorModel
from repro.hardware.radio import LoRaRadio
from repro.utils import ensure_rng


def run_residual_surface(
    snr_db: float = 20.0,
    span_bins: float = 0.8,
    n_points: int = 17,
    seed: int = 4,
) -> ExperimentResult:
    """Sample R(f1, f2) around the truth and measure convexity.

    Rows report the surface minimum location error (bins) and the fraction
    of sampled rays from the minimum along which the residual is
    monotonically non-decreasing (1.0 = perfectly locally convex).
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    true_offsets = np.array([7.43, 31.81])
    radios = [
        LoRaRadio(
            params,
            oscillator=OscillatorModel(params.bins_to_hz(mu)),
            timing=TimingModel(0.0),
            node_id=i,
            rng=rng,
        )
        for i, mu in enumerate(true_offsets)
    ]
    amplitude = 10.0 ** (snr_db / 20.0)
    channel = CollisionChannel(params, noise_power=1.0)
    packet = channel.receive(
        [(r, np.zeros(4, dtype=int), amplitude + 0j) for r in radios], rng=rng
    )
    windows = dechirp_windows(
        params, packet.samples, n_windows=4, start=params.samples_per_symbol
    )
    grid1, grid2, surface = residual_surface(
        windows, true_offsets, span_bins=span_bins, n_points=n_points
    )
    min_idx = np.unravel_index(np.argmin(surface), surface.shape)
    found = np.array([grid1[min_idx[0]], grid2[min_idx[1]]])
    error_bins = float(np.max(np.abs(found - true_offsets)))
    # Convexity along the 4 axis-aligned rays from the minimum.
    rays = []
    i0, j0 = int(min_idx[0]), int(min_idx[1])
    rays.append(surface[i0, j0:])
    rays.append(surface[i0, : j0 + 1][::-1])
    rays.append(surface[i0:, j0])
    rays.append(surface[: i0 + 1, j0][::-1])
    monotone = sum(1 for ray in rays if np.all(np.diff(ray) >= -1e-9))
    result = ExperimentResult(
        name="fig4: residual surface convexity",
        notes="local convexity enables the descent-based sub-bin search (Algm. 1)",
    )
    result.add(
        surface_min=float(surface.min()),
        surface_max=float(surface.max()),
        min_location_error_bins=round(error_bins, 4),
        monotone_rays=f"{monotone}/4",
        dynamic_range=float(surface.max() / max(surface.min(), 1e-30)),
    )
    return result
