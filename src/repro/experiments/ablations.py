"""Ablations of Choir's design choices (DESIGN.md Sec. 5).

Each function isolates one mechanism the paper argues for and measures the
system with it enabled vs. disabled/weakened:

* sub-bin (fine) offset refinement vs. coarse peak read-off,
* phased SIC vs. single-pass joint fitting under near-far,
* the FFT zero-padding factor used for coarse estimation,
* the preamble accumulation window for below-noise detection,
* data splicing for correlated-team transmissions.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.decoder import ChoirDecoder
from repro.core.dechirp import dechirp_windows
from repro.core.detection import accumulate_preamble, detect_preamble
from repro.core.offsets import coarse_offsets
from repro.core.sic import phased_sic
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.hardware.radio import LoRaRadio
from repro.phy.packet import LoRaFramer
from repro.sensing.sensors import code_to_bits
from repro.sensing.splicing import splice_bits
from repro.utils import circular_distance, ensure_rng


def _two_user_packet(rng, gains=(15.0, 12.0), n_symbols=16):
    channel = CollisionChannel(DEFAULT_PARAMS, noise_power=1.0)
    streams = [
        rng.integers(0, DEFAULT_PARAMS.chips_per_symbol, n_symbols) for _ in gains
    ]
    transmissions = [
        (LoRaRadio(DEFAULT_PARAMS, node_id=i, rng=rng), streams[i], complex(g))
        for i, g in enumerate(gains)
    ]
    return channel.receive(transmissions, rng=rng), streams


def _accuracy(decoder_users, packet, streams):
    n_bins = DEFAULT_PARAMS.chips_per_symbol
    accuracies = []
    for user, stream in zip(packet.users, streams):
        truth = user.true_offset_bins(DEFAULT_PARAMS) % n_bins
        best = None
        for du in decoder_users:
            distance = circular_distance(du.offset_bins, truth, period=n_bins)
            if distance < 0.5 and (best is None or distance < best[0]):
                best = (distance, du)
        accuracies.append(
            float(np.mean(best[1].symbols == stream)) if best else 0.0
        )
    return float(np.mean(accuracies))


def _close_pair_packet(rng, separation_bins=1.6, gains=(45.0, 8.0), n_symbols=16):
    """A leakage-stressed pair: offsets ~1.6 bins apart, 15 dB apart.

    This is where Sec. 5.1's leakage modelling earns its keep: the strong
    user's side lobes overlap the weak user's main lobe, so a coarse
    (unmodelled) estimate mis-locates the weak peak and the subtraction
    leaks.
    """
    from repro.hardware.clock import TimingModel
    from repro.hardware.oscillator import OscillatorModel

    base = float(rng.uniform(10, 240))
    channel = CollisionChannel(DEFAULT_PARAMS, noise_power=1.0)
    streams = [
        rng.integers(0, DEFAULT_PARAMS.chips_per_symbol, n_symbols) for _ in gains
    ]
    transmissions = []
    for i, g in enumerate(gains):
        radio = LoRaRadio(
            DEFAULT_PARAMS,
            oscillator=OscillatorModel(
                DEFAULT_PARAMS.bins_to_hz(base + i * separation_bins + rng.uniform(0, 0.3))
            ),
            timing=TimingModel(float(rng.uniform(0, 8)) / DEFAULT_PARAMS.sample_rate),
            node_id=i,
            rng=rng,
        )
        transmissions.append((radio, streams[i], complex(g)))
    return channel.receive(transmissions, rng=rng), streams


def ablation_fine_vs_coarse(n_trials: int = 6, seed: int = 50) -> ExperimentResult:
    """Sub-bin refinement on vs. off (Sec. 5.1's central claim)."""
    result = ExperimentResult(
        name="ablation: fine vs coarse offset estimation",
        notes="coarse-only decoding loses tracking accuracy and leaks interference",
    )
    rng = ensure_rng(seed)
    packets = [_close_pair_packet(rng) for _ in range(n_trials)]
    # Both arms start from the *unpadded* FFT's integer-bin peaks ("only
    # accurate to within one FFT bin", Sec. 5.1); the fine arm then runs
    # the residual-minimization refinement, the coarse arm decodes as-is.
    for refine, label in ((True, "fine (refined)"), (False, "coarse only")):
        accuracies = []
        for packet, streams in packets:
            decoder = ChoirDecoder(
                DEFAULT_PARAMS, oversample=1, refine=refine, rng=ensure_rng(seed)
            )
            users = decoder.decode(packet.samples, streams[0].size)
            accuracies.append(_accuracy(users, packet, streams))
        result.add(mode=label, mean_symbol_accuracy=round(float(np.mean(accuracies)), 4))
    return result


def ablation_sic_strategies(n_trials: int = 5, seed: int = 51) -> ExperimentResult:
    """Phased SIC vs a single joint pass under a 26 dB near-far spread."""
    result = ExperimentResult(
        name="ablation: SIC strategy under near-far",
        notes="single-tier detection misses the weak user entirely",
    )
    rng = ensure_rng(seed)
    scenarios = []
    for _ in range(n_trials):
        packet, streams = _two_user_packet(rng, gains=(60.0, 3.0))
        scenarios.append((packet, streams))
    for max_tiers, label in ((4, "phased (multi-tier)"), (1, "single tier")):
        weak_found = 0
        for packet, _ in scenarios:
            windows = dechirp_windows(
                DEFAULT_PARAMS,
                packet.samples,
                n_windows=DEFAULT_PARAMS.preamble_len - 1,
                start=DEFAULT_PARAMS.samples_per_symbol,
            )
            estimates = phased_sic(windows, max_tiers=max_tiers, rng=ensure_rng(seed))
            weak_truth = packet.users[1].true_offset_bins(DEFAULT_PARAMS) % 256
            if any(
                circular_distance(e.position_bins, weak_truth, period=256) < 0.5
                for e in estimates
            ):
                weak_found += 1
        result.add(strategy=label, weak_user_found=f"{weak_found}/{n_trials}")
    return result


def ablation_fft_oversampling(seed: int = 52) -> ExperimentResult:
    """Coarse-position error vs the zero-padding factor (paper uses 10x)."""
    result = ExperimentResult(
        name="ablation: FFT oversampling factor",
        notes="coarse accuracy ~ 1/(2*factor) bins; refinement closes the rest",
    )
    rng = ensure_rng(seed)
    errors_by_factor = {1: [], 4: [], 10: []}
    for _ in range(8):
        packet, _ = _two_user_packet(rng)
        windows = dechirp_windows(
            DEFAULT_PARAMS,
            packet.samples,
            n_windows=DEFAULT_PARAMS.preamble_len - 1,
            start=DEFAULT_PARAMS.samples_per_symbol,
        )
        truths = sorted(
            u.true_offset_bins(DEFAULT_PARAMS) % 256 for u in packet.users
        )
        for factor in errors_by_factor:
            peaks = coarse_offsets(windows, factor, max_users=2)
            found = sorted(p.position_bins for p in peaks)
            if len(found) == 2:
                errors_by_factor[factor].extend(
                    circular_distance(t, f, period=256) for t, f in zip(truths, found)
                )
    for factor, errors in errors_by_factor.items():
        result.add(
            oversample=factor,
            mean_coarse_error_bins=round(float(np.mean(errors)), 4) if errors else None,
        )
    return result


def ablation_preamble_accumulation(seed: int = 53) -> ExperimentResult:
    """Detection of a weak team vs the number of accumulated windows."""
    result = ExperimentResult(
        name="ablation: preamble accumulation window",
        notes="below-noise teams only emerge with multi-window accumulation",
    )
    rng = ensure_rng(seed)
    amplitude = 0.16  # ~ -16 dB per sample: invisible in a single window
    n_trials = 10
    for n_windows in (1, 2, 4, 8):
        detections = 0
        for trial in range(n_trials):
            trial_rng = ensure_rng(seed * 1000 + trial)
            tone_pos = float(trial_rng.uniform(5, 250))
            tone = amplitude * np.exp(
                2j * np.pi * tone_pos * np.arange(256) / 256
            )
            windows = np.stack(
                [
                    tone
                    + (
                        trial_rng.normal(size=256) + 1j * trial_rng.normal(size=256)
                    )
                    / np.sqrt(2)
                    for _ in range(n_windows)
                ]
            )
            outcome = detect_preamble(
                accumulate_preamble(windows, 10), 10, n_windows=n_windows
            )
            detections += int(outcome.detected)
        result.add(n_windows=n_windows, detection_rate=detections / n_trials)
    return result


def ablation_splicing(seed: int = 54) -> ExperimentResult:
    """Do co-located sensors' *coded* packets coincide with/without splicing?

    Without splicing, whole-reading packets differ after whitening+FEC even
    when only LSBs differ, so no two team members transmit the same signal.
    With MSB-chunk splicing, the first chunk's packets are bit-identical
    across the team (Sec. 7.2).
    """
    result = ExperimentResult(
        name="ablation: data splicing for correlated teams",
        notes="identical coded packets are what allow coherent team power gain",
    )
    rng = ensure_rng(seed)
    framer = LoRaFramer(DEFAULT_PARAMS, coding_rate=4)
    base = 0b101101000000
    codes = [base + int(d) for d in rng.integers(0, 6, 8)]  # shared MSBs
    # Without splicing: encode the whole 12-bit reading per sensor.
    whole_packets = {
        tuple(framer.encode(int(c).to_bytes(2, "big")).symbols) for c in codes
    }
    # With splicing: encode only the first (shared) 4-bit chunk.
    chunk_packets = set()
    for c in codes:
        chunk = splice_bits(code_to_bits(c, 12), [4, 4, 4])[0]
        chunk_packets.add(tuple(framer.encode(bytes([int("".join(map(str, chunk)), 2)])).symbols))
    result.add(
        mode="whole reading (no splicing)",
        distinct_coded_packets=len(whole_packets),
        team_can_pool=len(whole_packets) == 1,
    )
    result.add(
        mode="MSB chunk (spliced)",
        distinct_coded_packets=len(chunk_packets),
        team_can_pool=len(chunk_packets) == 1,
    )
    return result
