"""Battery-life consequences of the Fig. 8 retransmission results.

The paper motivates its transmissions-per-packet metric as "a major drain
on battery" (Secs. 1, 9.2); this experiment closes the loop: run the
Fig. 8(d) MAC comparison, convert each system's retransmission count and
regulatory duty-cycle usage into joules and years on a standard lithium
pack, and report the battery-life gain alongside the throughput gain.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.mac.duty import DutyCycleTracker
from repro.mac.phy import ChoirPhyModel, SingleUserPhy
from repro.mac.protocols import AlohaMac, ChoirMac, OracleMac
from repro.mac.simulator import NetworkSimulator, NodeConfig
from repro.metrics.energy import battery_life_report, packet_airtime_s
from repro.utils import ensure_rng


def run_energy_comparison(
    n_users: int = 10,
    duration_s: float = 30.0,
    reporting_period_s: float = 60.0,
    seed: int = 70,
) -> ExperimentResult:
    """Battery life per system at ``n_users`` concurrent clients.

    Rows report each system's transmissions-per-delivered-packet (the
    paper's Fig. 8(f) metric), the implied energy per delivered reading,
    the battery life of a once-a-minute sensor, and the maximum reporting
    rate a 1 % duty-cycle regulation would allow.
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    nodes = [NodeConfig(i, snr_db=12.0) for i in range(n_users)]
    airtime = packet_airtime_s(params, nodes[0].payload_bits)
    duty = DutyCycleTracker(duty_cycle=0.01)
    result = ExperimentResult(
        name="energy: battery life from retransmissions",
        notes=(
            f"{n_users} users; battery = 6.6 Wh lithium pack, one reading "
            f"per {reporting_period_s:.0f} s"
        ),
    )
    systems = {
        "aloha": (AlohaMac(), SingleUserPhy(params)),
        "oracle": (OracleMac(), SingleUserPhy(params)),
        "choir": (ChoirMac(), ChoirPhyModel(params)),
    }
    for name, (mac, phy) in systems.items():
        sim = NetworkSimulator(params, phy, mac, nodes, rng=rng)
        metrics = sim.run(duration_s)
        tx_per_packet = max(metrics.transmissions_per_packet, 1.0)
        report = battery_life_report(
            params,
            tx_per_packet,
            reporting_period_s=reporting_period_s,
            payload_bits=nodes[0].payload_bits,
        )
        result.add(
            system=name,
            tx_per_packet=round(tx_per_packet, 3),
            energy_per_reading_mj=round(report.energy_per_delivery_j * 1e3, 2),
            battery_life_years=round(report.battery_life_years, 2),
            max_duty_cycle_rate_per_min=round(
                duty.max_packet_rate_hz(airtime * tx_per_packet) * 60.0, 2
            ),
        )
    return result
