"""Experiments for the paper's extension points (Sec. 5.2 notes 2 and 4).

* **Multi-SF demultiplexing** -- the paper's 5-sensor {7,7,8,8,9} example:
  a single capture demultiplexed per spreading factor, with and without
  cross-SF cancellation.
* **Ultra-narrowband generalization** -- the SigFox/NB-IoT claim: when the
  occupied bandwidth is far below the crystal spread, concurrent
  transmissions separate by plain filtering.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import receive_mixed_sf
from repro.core.multisf import MultiSfDecoder
from repro.experiments.runner import ExperimentResult
from repro.hardware.radio import LoRaRadio
from repro.unb import (
    UnbCollisionDecoder,
    UnbParams,
    random_bits,
    receive_unb_collision,
)
from repro.utils import ensure_rng


def run_multisf_demux(
    sf_assignments: tuple[int, ...] = (7, 7, 8, 8, 9),
    n_symbols: int = 12,
    gain: float = 12.0,
    seed: int = 5,
) -> ExperimentResult:
    """The Sec. 5.2 note-4 scenario: 5 sensors at SFs {7,7,8,8,9}.

    Rows report, per branch and per cancellation mode, how many users were
    separated and their mean symbol accuracy.
    """
    result = ExperimentResult(
        name="extension: multi-SF demultiplexing",
        notes="paper Sec 5.2(4): orthogonal SFs decode in parallel; Choir runs per branch",
    )
    for cancel in (False, True):
        rng = ensure_rng(seed)
        decoder = MultiSfDecoder(
            spreading_factors=tuple(sorted(set(sf_assignments))),
            rng=ensure_rng(1),
        )
        transmissions, truth = [], {}
        for i, sf in enumerate(sf_assignments):
            params = decoder.params_for(sf)
            radio = LoRaRadio(params, node_id=i, rng=rng)
            symbols = rng.integers(0, params.chips_per_symbol, n_symbols)
            truth[i] = (sf, symbols)
            transmissions.append((radio, symbols, gain + 0j))
        capture, _ = receive_mixed_sf(transmissions, rng=rng)
        branches = decoder.decode(
            capture,
            {sf: n_symbols for sf in sorted(set(sf_assignments))},
            cancel_across_sf=cancel,
        )
        for branch in branches:
            accs = []
            for du in branch.users:
                candidates = [
                    float(np.mean(du.symbols == s))
                    for _, (sf, s) in truth.items()
                    if sf == branch.spreading_factor
                ]
                accs.append(max(candidates) if candidates else 0.0)
            expected = sum(1 for sf in sf_assignments if sf == branch.spreading_factor)
            result.add(
                cancellation="on" if cancel else "off",
                spreading_factor=branch.spreading_factor,
                expected_users=expected,
                found_users=branch.n_users,
                mean_accuracy=round(float(np.mean(accs)), 3) if accs else None,
            )
    return result


def run_unb_separation(
    n_users_list: tuple[int, ...] = (2, 5, 8),
    n_bits: int = 40,
    seed: int = 6,
) -> ExperimentResult:
    """The UNB generalization: filtering separates SigFox-class collisions.

    Users land at random crystal positions across the receive window; rows
    report separation and bit accuracy per population size, plus one
    near-far row (26 dB spread).
    """
    params = UnbParams()
    decoder = UnbCollisionDecoder(params)
    result = ExperimentResult(
        name="extension: ultra-narrowband separation",
        notes="paper Sec 5.2(2): offsets >> bandwidth, so filtering separates users",
    )
    rng = ensure_rng(seed)
    for n_users in n_users_list:
        # Random, well-spread carriers (crystals give kHz separation).
        carriers = np.linspace(
            -params.max_cfo_hz * 0.9, params.max_cfo_hz * 0.9, n_users
        ) + rng.uniform(-300, 300, n_users)
        streams = [random_bits(n_bits, rng) for _ in range(n_users)]
        capture, _ = receive_unb_collision(
            params,
            [(b, float(c), 1.0) for b, c in zip(streams, carriers)],
            rng=rng,
        )
        users = decoder.decode(capture, n_bits)
        accs = [
            max(float(np.mean(u.bits == b)) for b in streams) for u in users
        ]
        result.add(
            scenario=f"{n_users} equal-power users",
            found_users=len(users),
            mean_bit_accuracy=round(float(np.mean(accs)), 3) if accs else None,
        )
    # Near-far: a 26 dB weaker user in its own subchannel.
    strong_bits, weak_bits = random_bits(n_bits, rng), random_bits(n_bits, rng)
    capture, _ = receive_unb_collision(
        params,
        [(strong_bits, -6000.0, 20.0), (weak_bits, 7000.0, 1.0)],
        rng=rng,
    )
    users = decoder.decode(capture, n_bits)
    weak_found = [u for u in users if abs(u.carrier_hz - 7000.0) < 500.0]
    result.add(
        scenario="near-far 26 dB",
        found_users=len(users),
        mean_bit_accuracy=round(
            float(np.mean(weak_found[0].bits == weak_bits)), 3
        )
        if weak_found
        else None,
    )
    return result
