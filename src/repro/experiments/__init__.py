"""Per-figure experiment harnesses (shared by benchmarks and examples).

One module per paper figure; each exposes a ``run_*`` function returning an
:class:`repro.experiments.runner.ExperimentResult` whose rows mirror the
series the paper plots.  EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.runner import ExperimentResult, format_table
from repro.experiments.fig3_collision import run_collision_peaks
from repro.experiments.fig4_residual import run_residual_surface
from repro.experiments.fig5_isi import run_isi_windows
from repro.experiments.fig7_offsets import run_offset_cdf, run_offset_stability
from repro.experiments.fig8_density import run_density_vs_snr, run_density_vs_users
from repro.experiments.fig9_range import run_range_throughput, run_range_vs_team
from repro.experiments.fig10_resolution import run_resolution_vs_distance
from repro.experiments.fig11_correlation import run_grouping_error, run_mixed_throughput
from repro.experiments.fig12_mimo import run_mimo_comparison
from repro.experiments.extensions import run_multisf_demux, run_unb_separation
from repro.experiments.energy import run_energy_comparison
from repro.experiments.beacon_scheduling import run_beacon_scheduling
from repro.experiments.calibration import run_phy_calibration

__all__ = [
    "run_multisf_demux",
    "run_unb_separation",
    "run_energy_comparison",
    "run_beacon_scheduling",
    "run_phy_calibration",
    "ExperimentResult",
    "format_table",
    "run_collision_peaks",
    "run_residual_surface",
    "run_isi_windows",
    "run_offset_cdf",
    "run_offset_stability",
    "run_density_vs_snr",
    "run_density_vs_users",
    "run_range_throughput",
    "run_range_vs_team",
    "run_resolution_vs_distance",
    "run_grouping_error",
    "run_mixed_throughput",
    "run_mimo_comparison",
]
