"""Fig. 12: Choir vs uplink MU-MIMO on a 3-antenna base station.

Five sensors; the paper compares (1) ALOHA and (2) Oracle on one antenna,
(3) 3-antenna uplink MU-MIMO, (4) single-antenna Choir, (5) Choir run on
all three antennas.  MU-MIMO's gain is capped by the antenna count (it
must keep concurrency <= 3), while Choir decodes all five on one antenna
and antenna diversity adds a further margin on top.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.mac.phy import ChoirPhyModel, ComposedPhy, MuMimoPhyModel, SingleUserPhy
from repro.mac.protocols import AlohaMac, ChoirMac, OracleMac
from repro.mac.simulator import NetworkSimulator, NodeConfig
from repro.utils import ensure_rng


def run_mimo_comparison(
    n_users: int = 5,
    n_antennas: int = 3,
    duration_s: float = 30.0,
    snr_db: float = 12.0,
    seed: int = 13,
) -> ExperimentResult:
    """Fig. 12: throughput of the five systems with 5 sensors.

    MU-MIMO is driven at its best operating point (concurrency capped at
    the antenna count -- sending more would decode nothing).
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    nodes = [NodeConfig(i, snr_db=snr_db) for i in range(n_users)]
    systems = {
        "aloha": (AlohaMac(), SingleUserPhy(params)),
        "oracle": (OracleMac(), SingleUserPhy(params)),
        "mu_mimo": (
            ChoirMac(group_size=n_antennas),
            MuMimoPhyModel(params, n_antennas=n_antennas),
        ),
        "choir_1ant": (ChoirMac(), ChoirPhyModel(params)),
        "choir_mimo": (
            ChoirMac(),
            ComposedPhy(ChoirPhyModel(params), n_antennas=n_antennas),
        ),
    }
    result = ExperimentResult(
        name="fig12: Choir vs MU-MIMO",
        notes=(
            "paper: MU-MIMO 9.99x(3.04x) vs ALOHA(Oracle); Choir 1-ant "
            "11.07x(3.37x); Choir+MIMO 13.85x(4.22x)"
        ),
    )
    for name, (mac, phy) in systems.items():
        sim = NetworkSimulator(params, phy, mac, nodes, rng=rng)
        metrics = sim.run(duration_s)
        result.add(
            system=name,
            throughput_bps=round(metrics.throughput_bps, 1),
            latency_s=round(metrics.mean_latency_s, 4),
            tx_per_packet=round(metrics.transmissions_per_packet, 3),
        )
    return result
