"""Fig. 11: exploiting correlated sensor data.

(a) Grouping strategies: random vs per-floor vs distance-from-center bands
over a 36-sensor, four-floor deployment -- center distance groups sensors
whose readings agree best (smallest normalized disagreement).

(b) End-to-end throughput of a mixed near/far sensor population: nearby
sensors transmit individually, beyond-range sensors only deliver data via
beacon-scheduled teams; Choir therefore moves bits that the ALOHA/Oracle
baselines lose entirely, on top of its collision-decoding gain.
"""

from __future__ import annotations

import numpy as np

from repro.channel.link import LinkModel
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.mac.phy import (
    DEFAULT_DECODE_SNR_DB,
    ChoirPhyModel,
    PhyModel,
    SingleUserPhy,
    Transmission,
)
from repro.mac.protocols import AlohaMac, ChoirMac, OracleMac
from repro.mac.simulator import NetworkSimulator, NodeConfig
from repro.sensing.field import EnvironmentField
from repro.sensing.grouping import (
    group_by_center_distance,
    group_by_floor,
    group_random,
    grouping_error,
)
from repro.sensing.sensors import HUMIDITY_RANGE, TEMP_RANGE_C, SensorNode
from repro.utils import RngLike, ensure_rng


def _build_sensors(n_sensors: int, n_floors: int, rng) -> list[SensorNode]:
    sensors = []
    for i in range(n_sensors):
        sensors.append(
            SensorNode(
                sensor_id=i,
                u=float(rng.uniform(0.03, 0.97)),
                v=float(rng.uniform(0.03, 0.97)),
                floor=int(i % n_floors),
            )
        )
    return sensors


def run_grouping_error(
    n_sensors: int = 36, n_floors: int = 4, seed: int = 11
) -> ExperimentResult:
    """Fig. 11(a): grouping-strategy error for temperature and humidity."""
    rng = ensure_rng(seed)
    field = EnvironmentField(rng_seed=seed)
    sensors = _build_sensors(n_sensors, n_floors, rng)
    temp = {s.sensor_id: s.read_temperature(field, rng) for s in sensors}
    hum = {s.sensor_id: s.read_humidity(field, rng) for s in sensors}
    strategies = {
        "random": group_random(sensors, n_groups=n_floors, rng=rng),
        "floor": group_by_floor(sensors),
        "center_dist": group_by_center_distance(sensors, n_bands=n_floors),
    }
    result = ExperimentResult(
        name="fig11a: grouping strategy vs data error",
        notes="paper: center distance < floor < random (error ordering)",
    )
    for name, groups in strategies.items():
        result.add(
            strategy=name,
            temperature_error=round(grouping_error(groups, temp, TEMP_RANGE_C), 4),
            humidity_error=round(grouping_error(groups, hum, HUMIDITY_RANGE), 4),
        )
    return result


class _TeamAwareChoirPhy(PhyModel):
    """Choir PHY that pools below-range team members (Sec. 7.2).

    Transmissions flagged as team members (by node id membership) are
    decoded jointly: the team succeeds when the *pooled* SNR clears the
    floor.  Everyone else goes through the normal Choir collision model.
    """

    def __init__(self, params, team_ids: set[int]) -> None:
        self.choir = ChoirPhyModel(params)
        self.team_ids = team_ids
        self.params = params

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        team = [t for t in transmissions if t.node_id in self.team_ids]
        solo = [t for t in transmissions if t.node_id not in self.team_ids]
        decoded = self.choir.resolve(solo, rng=rng)
        if team:
            pooled = 10.0 * np.log10(
                np.sum([10.0 ** (t.snr_db / 10.0) for t in team])
            )
            # Teams fall back to the minimum rate (SF12) -- the paper's
            # beyond-range sensors cannot afford a faster one.
            if pooled >= DEFAULT_DECODE_SNR_DB[12]:
                decoded |= {t.node_id for t in team}
        return decoded


def run_mixed_throughput(
    n_near: int = 6,
    n_far: int = 4,
    duration_s: float = 30.0,
    seed: int = 12,
    link: LinkModel | None = None,
) -> ExperimentResult:
    """Fig. 11(b): end-to-end throughput, near sensors + below-range team.

    Near sensors have healthy SNRs; far sensors sit beyond the single-node
    range (negative decode margin) and can only deliver through Choir's
    team decoding -- and only their shared MSB chunks, so their packets
    carry fewer useful bits.  Rows give the network throughput per system.
    """
    link = link or LinkModel()
    rng = ensure_rng(seed)
    params = DEFAULT_PARAMS
    near_snr = 15.0
    far_snr = link.mean_snr_db(1100.0)  # beyond the ~1 km single range
    nodes = [NodeConfig(i, snr_db=near_snr) for i in range(n_near)]
    # Far sensors deliver only the shared-MSB chunks: half the payload.
    nodes += [
        NodeConfig(n_near + i, snr_db=far_snr, payload_bits=64) for i in range(n_far)
    ]
    team_ids = {n_near + i for i in range(n_far)}
    result = ExperimentResult(
        name="fig11b: mixed near/far end-to-end throughput",
        notes="paper: Choir 29.34x vs ALOHA, 5.61x vs Oracle",
    )
    systems = {
        "aloha": (AlohaMac(), SingleUserPhy(params)),
        "oracle": (OracleMac(), SingleUserPhy(params)),
        "choir": (ChoirMac(), _TeamAwareChoirPhy(params, team_ids)),
    }
    for name, (mac, phy) in systems.items():
        sim = NetworkSimulator(params, phy, mac, nodes, rng=rng)
        metrics = sim.run(duration_s)
        far_delivered = sum(
            metrics.per_node_delivered.get(nid, 0) for nid in team_ids
        )
        result.add(
            system=name,
            throughput_bps=round(metrics.throughput_bps, 1),
            far_packets_delivered=far_delivered,
            tx_per_packet=round(metrics.transmissions_per_packet, 3),
        )
    return result
