"""Fig. 8: throughput / latency / transmissions across SNR and user count.

MAC-level comparison of ALOHA, Oracle-scheduled LoRaWAN, and Choir.  The
PHY outcomes use :class:`repro.mac.phy.ChoirPhyModel` (calibrated against
the waveform decoder: offset-merge probability and residual symbol-error
rates) so multi-minute network simulations stay tractable; the waveform
decoder itself is exercised by the fig3-fig7 experiments and the tests.

(a)-(c): two users across the paper's SNR regimes, with LoRaWAN-style rate
adaptation picking the spreading factor per regime.
(d)-(f): 2..10 concurrent users at medium SNR, plus the Ideal line
(n_users x the single-user rate).
"""

from __future__ import annotations

from repro.experiments.runner import (
    DEFAULT_PARAMS,
    SNR_REGIMES,
    ExperimentResult,
    spreading_factor_for_snr,
)
from repro.mac.phy import ChoirPhyModel, SingleUserPhy
from repro.mac.protocols import AlohaMac, ChoirMac, OracleMac
from repro.mac.simulator import MacMetrics, NetworkSimulator, NodeConfig
from repro.phy.params import LoRaParams
from repro.utils import ensure_rng


def _simulate(
    params: LoRaParams,
    system: str,
    nodes: list[NodeConfig],
    duration_s: float,
    rng,
) -> MacMetrics:
    """Run one (system, population) MAC simulation."""
    if system == "aloha":
        mac, phy = AlohaMac(), SingleUserPhy(params)
    elif system == "oracle":
        mac, phy = OracleMac(), SingleUserPhy(params)
    elif system == "choir":
        mac, phy = ChoirMac(), ChoirPhyModel(params)
    else:
        raise ValueError(f"unknown system: {system!r}")
    sim = NetworkSimulator(params, phy, mac, nodes, rng=rng)
    return sim.run(duration_s)


def run_density_vs_snr(
    duration_s: float = 30.0, seed: int = 80, n_users: int = 2
) -> ExperimentResult:
    """Fig. 8(a)-(c): ALOHA / Oracle / Choir for 2 users per SNR regime.

    Rate adaptation maps each regime to the fastest spreading factor the
    SNR supports, so throughput rises with SNR for every system (the
    paper's within-group trend) while Choir wins within each regime.
    """
    result = ExperimentResult(
        name="fig8a-c: 2-user density vs SNR",
        notes="paper: Choir 2.58x(2.11x) throughput vs ALOHA(Oracle) at 2 users",
    )
    rng = ensure_rng(seed)
    for regime, snr_db in SNR_REGIMES.items():
        sf = spreading_factor_for_snr(snr_db)
        params = LoRaParams(
            spreading_factor=sf,
            bandwidth=DEFAULT_PARAMS.bandwidth,
            preamble_len=DEFAULT_PARAMS.preamble_len,
        )
        nodes = [NodeConfig(i, snr_db=snr_db) for i in range(n_users)]
        for system in ("aloha", "oracle", "choir"):
            metrics = _simulate(params, system, nodes, duration_s, rng)
            result.add(
                snr_regime=regime,
                system=system,
                spreading_factor=sf,
                throughput_bps=round(metrics.throughput_bps, 1),
                latency_s=round(metrics.mean_latency_s, 4),
                tx_per_packet=round(metrics.transmissions_per_packet, 3),
            )
    return result


def run_density_vs_users(
    duration_s: float = 30.0,
    seed: int = 81,
    user_counts: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    snr_db: float = 12.0,
) -> ExperimentResult:
    """Fig. 8(d)-(f): scaling with the number of concurrent users.

    Includes the Ideal series (n x the single-node airtime-limited rate)
    the paper plots in 8(d).
    """
    result = ExperimentResult(
        name="fig8d-f: density vs #users",
        notes=(
            "paper at 10 users: 29.02x(6.84x) throughput vs ALOHA(Oracle), "
            "19.37x(4.88x) latency, 4.54x fewer transmissions"
        ),
    )
    rng = ensure_rng(seed)
    params = DEFAULT_PARAMS
    for n_users in user_counts:
        nodes = [NodeConfig(i, snr_db=snr_db) for i in range(n_users)]
        # Ideal: every user delivers one packet per slot, no overhead waste.
        probe = NetworkSimulator(params, SingleUserPhy(params), OracleMac(), nodes, rng=rng)
        ideal_bps = n_users * nodes[0].payload_bits / probe.slot_s
        result.add(
            n_users=n_users,
            system="ideal",
            throughput_bps=round(ideal_bps, 1),
            latency_s=round(probe.slot_s, 4),
            tx_per_packet=1.0,
        )
        for system in ("aloha", "oracle", "choir"):
            metrics = _simulate(params, system, nodes, duration_s, rng)
            result.add(
                n_users=n_users,
                system=system,
                throughput_bps=round(metrics.throughput_bps, 1),
                latency_s=round(metrics.mean_latency_s, 4),
                tx_per_packet=round(metrics.transmissions_per_packet, 3),
            )
    return result


def summarize_gains(result: ExperimentResult, n_users: int = 10) -> dict[str, float]:
    """Headline gain ratios at a given user count (vs paper's Sec. 9.2)."""
    rows = [r for r in result.rows if r.get("n_users") == n_users]
    by_system = {r["system"]: r for r in rows}
    choir = by_system.get("choir")
    gains: dict[str, float] = {}
    if not choir:
        return gains
    for base in ("aloha", "oracle"):
        if base in by_system:
            gains[f"throughput_vs_{base}"] = (
                choir["throughput_bps"] / max(by_system[base]["throughput_bps"], 1e-9)
            )
            gains[f"latency_vs_{base}"] = (
                by_system[base]["latency_s"] / max(choir["latency_s"], 1e-9)
            )
            gains[f"tx_vs_{base}"] = (
                by_system[base]["tx_per_packet"] / max(choir["tx_per_packet"], 1e-9)
            )
    return gains
