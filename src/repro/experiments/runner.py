"""Shared experiment plumbing: results, tables, common configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.phy.params import LoRaParams

#: PHY configuration shared by all experiments unless stated otherwise.
DEFAULT_PARAMS = LoRaParams(spreading_factor=8, bandwidth=125_000.0, preamble_len=8)

#: SNR regimes as the paper buckets them (Sec. 9.2): low < 5 dB,
#: medium 5-20 dB, high > 20 dB.  Values are representative mid-points.
SNR_REGIMES = {"low": 2.0, "medium": 12.0, "high": 25.0}


from repro.mac.adr import spreading_factor_for_snr  # re-exported for harnesses


@dataclass
class ExperimentResult:
    """One experiment's output: named rows mirroring a paper figure."""

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, **kwargs: Any) -> None:
        """Append one row (keyword arguments become columns)."""
        self.rows.append(dict(kwargs))

    def column(self, key: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows]

    def to_csv(self) -> str:
        """Render rows as CSV (for plotting outside the terminal)."""
        if not self.rows:
            return ""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.rows[0].keys()))
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())

    def __str__(self) -> str:
        header = f"== {self.name} =="
        body = format_table(self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render rows as an aligned text table (the bench harness prints it)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered = [
        [_format_cell(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = ["  ".join(col.ljust(w) for col, w in zip(columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)
