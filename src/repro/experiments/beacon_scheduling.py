"""Beacon scheduling over the campus testbed (Sec. 7.1).

Places a sensor population across the synthetic campus, lets the
:class:`repro.mac.beacon.BeaconScheduler` partition it into singletons and
pooled teams from the link SNRs, and reports the resulting service map:
how group size (and therefore data resolution) degrades with distance --
"a system whose resolution of measured sensor data increases for sensors
that are geographically closer to the base station".
"""

from __future__ import annotations

import numpy as np

from repro.deployment.testbed import CampusTestbed
from repro.experiments.runner import DEFAULT_PARAMS, ExperimentResult
from repro.mac.beacon import BeaconRoundSimulator, BeaconScheduler
from repro.mac.phy import ChoirPhyModel
from repro.utils import ensure_rng


def run_beacon_scheduling(
    n_nodes: int = 60,
    max_distance_m: float = 2600.0,
    n_cycles: int = 4,
    seed: int = 71,
) -> ExperimentResult:
    """Schedule a mixed-distance population and report the service map.

    Rows bucket nodes by distance band and give the mean scheduled group
    size, the fraction served, and the effective data resolution (full for
    singletons, MSB-only for teams).
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    testbed = CampusTestbed(rng_seed=seed)
    placed = [
        testbed.place_at_distance(i, float(rng.uniform(60.0, max_distance_m)))
        for i in range(n_nodes)
    ]
    snrs = {node.node_id: testbed.mean_snr_db(node) for node in placed}
    distances = {node.node_id: testbed.distance(node) for node in placed}
    # Far sensors fall back to the minimum LoRaWAN rate (SF12): the
    # scheduler plans against its decode floor, exactly as the paper's
    # beyond-range teams do (Sec. 9.3 uses the minimum data rate).
    scheduler = BeaconScheduler(
        params, margin_db=3.0, max_team_size=30, decode_snr_db=-25.0
    )
    schedule = scheduler.build_schedule(snrs)
    simulator = BeaconRoundSimulator(
        params, ChoirPhyModel(params, decode_snr_db=-25.0), scheduler
    )
    metrics = simulator.run(snrs, n_cycles=n_cycles, rng=rng)
    result = ExperimentResult(
        name="beacon scheduling over the campus",
        notes=(
            f"{n_nodes} nodes to {max_distance_m:.0f} m; "
            f"{schedule.n_rounds} rounds/cycle, "
            f"{len(schedule.unreachable)} unreachable"
        ),
    )
    bands = [(0, 400), (400, 800), (800, 1500), (1500, 2600)]
    for lo, hi in bands:
        members = [nid for nid in snrs if lo <= distances[nid] < hi]
        if not members:
            continue
        group_sizes = []
        served = 0
        for nid in members:
            group = schedule.group_of(nid)
            if group is not None:
                group_sizes.append(group.size)
            served += nid in metrics.nodes_served
        result.add(
            distance_band_m=f"{lo}-{hi}",
            n_nodes=len(members),
            mean_group_size=round(float(np.mean(group_sizes)), 2)
            if group_sizes
            else None,
            fraction_served=round(served / len(members), 2),
            resolution="full" if (group_sizes and np.mean(group_sizes) < 1.5) else "coarse (MSB)",
        )
    return result
