"""Fig. 7: characterizing hardware offsets across boards and within packets.

(a)/(b): across 30 boards, the *fractional* aggregate offset (CFO+TO) and
the fractional CFO alone are spread essentially uniformly over their range
-- diversity is what makes offsets usable as user signatures.  We estimate
both from pairwise collisions with the Choir estimators and compare the
empirical CDF against the uniform ideal.

(c)/(d): within a packet the offsets are stable; re-estimating per symbol
and reporting the spread of the per-symbol estimates vs SNR reproduces the
paper's stability numbers (~1.84 % of a symbol for timing, ~0.04 % of a
subcarrier for CFO+TO).
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.dechirp import dechirp_windows
from repro.core.offsets import build_user_estimates, coarse_offsets, refine_offsets
from repro.experiments.runner import DEFAULT_PARAMS, SNR_REGIMES, ExperimentResult
from repro.hardware.radio import LoRaRadio
from repro.utils import circular_distance, ensure_rng


def _uniformity_ks(samples: np.ndarray) -> float:
    """Kolmogorov-Smirnov distance of samples in [0,1) from uniform."""
    samples = np.sort(np.asarray(samples, dtype=float))
    n = samples.size
    if n == 0:
        return 1.0
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(max(np.max(np.abs(ecdf_hi - samples)), np.max(np.abs(samples - ecdf_lo))))


def run_offset_cdf(
    n_boards: int = 30, snr_db: float = 20.0, seed: int = 7
) -> ExperimentResult:
    """Fig. 7(a)-(b): fractional offset diversity across boards.

    Each board collides (pairwise) with a reference board; Choir estimates
    the aggregate offset (CFO+TO) and decomposes out the CFO's fractional
    part.  Rows report the KS distance of both empirical CDFs from uniform
    (small = matches the paper's "equally likely to span the entire
    range"), plus the estimation error against ground truth.
    """
    params = DEFAULT_PARAMS
    rng = ensure_rng(seed)
    amplitude = 10.0 ** (snr_db / 20.0)
    channel = CollisionChannel(params, noise_power=1.0)
    boards = [LoRaRadio(params, node_id=i, rng=rng) for i in range(n_boards)]
    frac_aggregate, frac_cfo = [], []
    agg_errors = []
    n = params.samples_per_symbol
    for board in boards:
        packet = channel.receive([(board, np.zeros(6, dtype=int), amplitude + 0j)], rng=rng)
        windows = dechirp_windows(params, packet.samples, n_windows=5, start=n)
        peaks = coarse_offsets(windows, 10, max_users=1)
        if not peaks:
            continue
        positions = refine_offsets(windows, np.array([peaks[0].position_bins]))
        estimate = build_user_estimates(windows, positions)[0]
        frac_aggregate.append(estimate.fractional)
        frac_cfo.append(estimate.cfo_frac_bins)
        truth = packet.users[0].true_offset_bins(params) % params.chips_per_symbol
        agg_errors.append(
            float(circular_distance(estimate.position_bins, truth, period=params.chips_per_symbol))
        )
    result = ExperimentResult(
        name="fig7ab: offset diversity across boards",
        notes="KS distance from the uniform ideal (paper overlays 'Ideal' CDFs)",
    )
    result.add(
        quantity="CFO+TO fractional (7a)",
        n_boards=len(frac_aggregate),
        ks_distance=round(_uniformity_ks(np.array(frac_aggregate)), 3),
        mean_estimate_error_bins=round(float(np.mean(agg_errors)), 5),
    )
    result.add(
        quantity="CFO fractional (7b)",
        n_boards=len(frac_cfo),
        ks_distance=round(_uniformity_ks(np.array(frac_cfo)), 3),
        mean_estimate_error_bins="",
    )
    return result


def run_offset_stability(
    n_pairs: int = 6, n_symbols: int = 12, seed: int = 8
) -> ExperimentResult:
    """Fig. 7(c)-(d): within-packet offset stability vs SNR.

    For pairs of colliding boards, the aggregate offset is re-estimated on
    every individual preamble-like symbol; rows report the standard
    deviation of the per-symbol estimates relative to the symbol duration
    (timing, 7c) and the subcarrier width (CFO+TO, 7d), per SNR regime.
    """
    params = DEFAULT_PARAMS
    n = params.samples_per_symbol
    result = ExperimentResult(
        name="fig7cd: within-packet offset stability",
        notes="stdev of per-symbol re-estimates; paper: ~1.84% / ~0.04% mean",
    )
    rng = ensure_rng(seed)
    for regime, snr_db in SNR_REGIMES.items():
        amplitude = 10.0 ** (snr_db / 20.0)
        rel_to_spreads = []
        rel_freq_spreads = []
        for _ in range(n_pairs):
            boards = [LoRaRadio(params, node_id=i, rng=rng) for i in range(2)]
            channel = CollisionChannel(params, noise_power=1.0)
            packet = channel.receive(
                [(b, np.zeros(n_symbols, dtype=int), amplitude + 0j) for b in boards],
                rng=rng,
            )
            windows = dechirp_windows(
                params, packet.samples, n_windows=n_symbols - 1, start=n
            )
            # Anchor positions on the full preamble, then re-estimate per
            # symbol window around the anchors.
            peaks = coarse_offsets(windows, 10, max_users=2)
            if len(peaks) < 2:
                continue
            anchors = refine_offsets(
                windows, np.array([p.position_bins for p in peaks])
            )
            per_symbol = np.zeros((windows.shape[0], anchors.size))
            for m in range(windows.shape[0]):
                per_symbol[m] = refine_offsets(
                    windows[m : m + 1], anchors, half_width_bins=0.3, n_sweeps=1
                )
            # Relative offset between the two users per symbol (this is the
            # quantity that must stay constant for tracking to work).
            relative = per_symbol[:, 0] - per_symbol[:, 1]
            spread_bins = float(np.std(relative))
            # A spread of one bin == one sample of timing or one subcarrier
            # of frequency; report both normalizations as the paper does.
            rel_to_spreads.append(spread_bins / params.chips_per_symbol * 100.0)
            rel_freq_spreads.append(spread_bins * 100.0)
        result.add(
            snr_regime=regime,
            snr_db=snr_db,
            timing_stability_pct_of_symbol=round(float(np.mean(rel_to_spreads)), 4)
            if rel_to_spreads
            else None,
            cfo_to_stability_pct_of_bin=round(float(np.mean(rel_freq_spreads)), 4)
            if rel_freq_spreads
            else None,
        )
    return result
