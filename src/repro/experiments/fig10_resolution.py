"""Fig. 10: sensor-data resolution vs distance for below-range teams.

A team at distance ``d`` pools ``K x`` SNR; the pooled link budget decides
how many spliced MSB chunks of the sensed value survive (Sec. 7.2).  The
recovered reading keeps only the shared-and-delivered MSB prefix, so the
resolution error grows with distance -- the paper measures 13.2 % at
~2.5 km for teams of up to 30 sensors.
"""

from __future__ import annotations

import numpy as np

from repro.channel.link import LinkModel
from repro.experiments.runner import ExperimentResult
from repro.mac.phy import DEFAULT_DECODE_SNR_DB
from repro.sensing.field import EnvironmentField
from repro.sensing.sensors import (
    HUMIDITY_RANGE,
    TEMP_RANGE_C,
    SensorNode,
    bits_to_code,
    code_to_bits,
    dequantize_reading,
    quantize_reading,
)
from repro.sensing.splicing import merge_chunks, splice_bits
from repro.utils import ensure_rng

#: Reading resolution (bits) and the MSB-first splicing layout (Sec. 7.2).
#: The first chunk is larger: MSBs are the bits whole teams share, so the
#: scheduler spends its one guaranteed chunk on as much coarse information
#: as possible.
N_BITS = 12
CHUNK_SIZES = [4, 3, 3, 2]


def _chunks_delivered(pooled_snr_db: float) -> int:
    """How many spliced chunks a team delivers, most significant first.

    Every extra 6 dB of pooled margin above the SF12 floor buys one more
    chunk: only the shared MSB chunks add coherently across the *whole*
    team, while deeper chunks are shared by progressively smaller
    sub-teams (halving the pooled power, i.e. costing ~3 dB, and needing
    ~3 dB more margin for the extra retransmissions).
    """
    floor = DEFAULT_DECODE_SNR_DB[12]
    margin = pooled_snr_db - floor
    if margin < 0:
        return 0
    return int(min(len(CHUNK_SIZES), 1 + margin // 6.0))


def run_resolution_vs_distance(
    team_size: int = 30,
    distances_m: tuple[float, ...] = (250, 500, 1000, 1500, 2000, 2500, 3000),
    n_sensors_per_point: int = 24,
    seed: int = 10,
    link: LinkModel | None = None,
) -> ExperimentResult:
    """Average normalized reading error vs distance (temperature + humidity).

    At each distance, a team of co-located sensors reads the field, splices
    the quantized readings, and the base station reconstructs each value
    from the chunks the pooled link budget delivered.  Errors are
    normalized by the *observed data spread* across the deployment (the
    meaningful yardstick for "resolution of sensed data": the full ADC
    range would flatter every result by the unused headroom).
    """
    link = link or LinkModel()
    rng = ensure_rng(seed)
    field = EnvironmentField(rng_seed=seed)
    result = ExperimentResult(
        name="fig10: resolution vs distance",
        notes=f"{team_size}-sensor teams; paper: 13.2% error at ~2.5 km",
    )
    for distance in distances_m:
        pooled_snr_db = link.mean_snr_db(distance) + 10.0 * np.log10(team_size)
        n_chunks = _chunks_delivered(pooled_snr_db)
        errors: dict[str, list[float]] = {"temperature": [], "humidity": []}
        readings: dict[str, list[float]] = {"temperature": [], "humidity": []}
        for _ in range(n_sensors_per_point):
            sensor = SensorNode(
                sensor_id=0,
                u=float(rng.uniform(0.05, 0.95)),
                v=float(rng.uniform(0.05, 0.95)),
                floor=int(rng.integers(0, 4)),
            )
            for kind, read, value_range in (
                ("temperature", sensor.read_temperature(field, rng), TEMP_RANGE_C),
                ("humidity", sensor.read_humidity(field, rng), HUMIDITY_RANGE),
            ):
                code = quantize_reading(read, value_range, N_BITS)
                chunks = splice_bits(code_to_bits(code, N_BITS), CHUNK_SIZES)
                received = [
                    chunk if i < n_chunks else None for i, chunk in enumerate(chunks)
                ]
                bits, _ = merge_chunks(received, CHUNK_SIZES)
                recovered = dequantize_reading(bits_to_code(bits), value_range, N_BITS)
                errors[kind].append(abs(recovered - read))
                readings[kind].append(read)
        row: dict[str, object] = {
            "distance_m": distance,
            "pooled_snr_db": round(pooled_snr_db, 1),
            "chunks_delivered": n_chunks,
        }
        for kind in ("temperature", "humidity"):
            spread = max(np.ptp(readings[kind]), 1e-9)
            row[f"{kind}_error"] = round(float(np.mean(errors[kind]) / spread), 4)
        result.add(**row)
    return result
