"""Buildings and positions on the synthetic campus."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Position:
    """A point on the campus map (meters; z is height above ground)."""

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean 3-D distance in meters."""
        return float(
            np.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2
            )
        )


@dataclass(frozen=True)
class Building:
    """An axis-aligned building with several floors (paper Fig. 6a).

    The default footprint (40 m x 95 m, four floors) matches the building
    sketched in the paper's testbed figure.
    """

    origin_x: float
    origin_y: float
    width_m: float = 40.0
    depth_m: float = 95.0
    n_floors: int = 4
    floor_height_m: float = 3.5

    def floor_position(self, u: float, v: float, floor: int) -> Position:
        """Map a normalized in-floor point to campus coordinates."""
        if not 0.0 <= u <= 1.0 or not 0.0 <= v <= 1.0:
            raise ValueError(f"(u, v) must be in [0,1]^2, got ({u}, {v})")
        if not 0 <= floor < self.n_floors:
            raise ValueError(f"floor must be in [0, {self.n_floors}), got {floor}")
        return Position(
            x=self.origin_x + u * self.width_m,
            y=self.origin_y + v * self.depth_m,
            z=(floor + 0.5) * self.floor_height_m,
        )

    @property
    def center(self) -> Position:
        """Footprint center at ground level."""
        return Position(
            x=self.origin_x + self.width_m / 2.0,
            y=self.origin_y + self.depth_m / 2.0,
            z=0.0,
        )

    @property
    def roof_height_m(self) -> float:
        return self.n_floors * self.floor_height_m

    def contains(self, position: Position) -> bool:
        """Whether a map point falls within the footprint."""
        return (
            self.origin_x <= position.x <= self.origin_x + self.width_m
            and self.origin_y <= position.y <= self.origin_y + self.depth_m
        )
