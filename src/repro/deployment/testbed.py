"""The synthetic campus testbed (paper Fig. 6b: 3.4 km x 3.2 km).

Generates a reproducible campus: a base station on a tall central
building, a handful of instrumented buildings, and arbitrary outdoor/indoor
node placements across the ~10 km^2 area.  Links to the base station go
through the urban channel model, giving every placement a distance and an
SNR -- the two quantities all the range experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import LinkModel
from repro.deployment.geometry import Building, Position
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class PlacedNode:
    """A client node placed somewhere on the testbed."""

    node_id: int
    position: Position
    building_index: int | None = None
    floor: int | None = None


@dataclass
class CampusTestbed:
    """Node placement + link budget over the evaluation area.

    Parameters
    ----------
    extent_x_m / extent_y_m:
        Map size; the paper's testbed spans 3.4 km x 3.2 km.
    link:
        Distance -> gain/SNR model shared by all nodes.
    """

    extent_x_m: float = 3400.0
    extent_y_m: float = 3200.0
    link: LinkModel = field(default_factory=LinkModel)
    base_station_height_m: float = 30.0
    rng_seed: int | None = 0

    def __post_init__(self) -> None:
        rng = ensure_rng(self.rng_seed)
        self.base_station = Position(
            x=self.extent_x_m / 2.0, y=self.extent_y_m / 2.0, z=self.base_station_height_m
        )
        # Instrumented buildings near the center (the "two large buildings
        # across four floors" of Sec. 9.4) plus scattered others.
        self.buildings: list[Building] = [
            Building(self.extent_x_m / 2.0 - 150.0, self.extent_y_m / 2.0 - 50.0),
            Building(self.extent_x_m / 2.0 + 110.0, self.extent_y_m / 2.0 + 40.0),
        ]
        for _ in range(6):
            self.buildings.append(
                Building(
                    origin_x=float(rng.uniform(0.0, self.extent_x_m - 40.0)),
                    origin_y=float(rng.uniform(0.0, self.extent_y_m - 95.0)),
                )
            )
        self._rng = rng

    # ------------------------------------------------------------------
    def place_outdoor_nodes(self, n_nodes: int, rng: RngLike = None) -> list[PlacedNode]:
        """Scatter nodes uniformly over the map (roads/walkways of Sec. 8)."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        nodes = []
        for i in range(n_nodes):
            nodes.append(
                PlacedNode(
                    node_id=i,
                    position=Position(
                        x=float(rng.uniform(0.0, self.extent_x_m)),
                        y=float(rng.uniform(0.0, self.extent_y_m)),
                        z=1.0,
                    ),
                )
            )
        return nodes

    def place_indoor_nodes(
        self, n_nodes: int, building_index: int = 0, rng: RngLike = None
    ) -> list[PlacedNode]:
        """Place nodes across the floors of one instrumented building."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        building = self.buildings[building_index]
        nodes = []
        for i in range(n_nodes):
            floor = int(rng.integers(0, building.n_floors))
            position = building.floor_position(
                float(rng.uniform(0.05, 0.95)), float(rng.uniform(0.05, 0.95)), floor
            )
            nodes.append(
                PlacedNode(
                    node_id=i,
                    position=position,
                    building_index=building_index,
                    floor=floor,
                )
            )
        return nodes

    def place_at_distance(self, node_id: int, distance_m: float, rng: RngLike = None) -> PlacedNode:
        """Place one node at an exact ground distance from the base station."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        angle = float(rng.uniform(0.0, 2.0 * np.pi))
        return PlacedNode(
            node_id=node_id,
            position=Position(
                x=self.base_station.x + distance_m * np.cos(angle),
                y=self.base_station.y + distance_m * np.sin(angle),
                z=1.0,
            ),
        )

    # ------------------------------------------------------------------
    def distance(self, node: PlacedNode) -> float:
        """3-D distance from a node to the base station (meters)."""
        return node.position.distance_to(self.base_station)

    def mean_snr_db(self, node: PlacedNode) -> float:
        """Fading-free link SNR for a node."""
        return self.link.mean_snr_db(self.distance(node))

    def packet_gain(self, node: PlacedNode, rng: RngLike = None) -> complex:
        """Per-packet complex channel gain (includes shadowing/fading)."""
        return self.link.packet_gain(self.distance(node), rng=rng)
