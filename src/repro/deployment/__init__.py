"""Testbed geometry substrate.

Synthetic replacement for the paper's physical testbed: a campus map with
buildings (four-floor footprints like Fig. 6a), a base station on a tall
building, and node placements spread over the 10 km^2 evaluation area.
The geometry feeds the channel model (distance -> SNR) and the sensing
model (in-building position -> reading).
"""

from repro.deployment.geometry import Building, Position
from repro.deployment.testbed import CampusTestbed, PlacedNode

__all__ = ["Building", "Position", "CampusTestbed", "PlacedNode"]
