"""Command-line interface: run any paper experiment from the terminal.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig8d            # one experiment's table
    python -m repro run all              # everything (slow)
    python -m repro gateway --duration 5 --workers 4   # streaming runtime
    python -m repro gateway --trace-out trace.json     # + provenance trace
    python -m repro forensics trace.json               # per-packet post-mortem
    python -m repro server --gateways 2 --duration 120  # closed ADR loop
    python -m repro campaign --scenario scenarios/eu868_urban.yaml  # capacity sweep
    python -m repro gateway --profile-out run.json     # kernel profile + manifest
    python -m repro diff baseline.json candidate.json  # threshold-verdict diff

Each experiment prints the same rows/series the paper's figure reports;
ASCII charts accompany the series-shaped ones.  ``gateway`` runs the
streaming base-station runtime over synthetic traffic (or a recorded IQ
capture with ``--input``) and prints its telemetry summary; ``forensics``
ingests a trace written with ``--trace-out`` and explains every lost
packet.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    run_collision_peaks,
    run_density_vs_snr,
    run_density_vs_users,
    run_grouping_error,
    run_isi_windows,
    run_mimo_comparison,
    run_mixed_throughput,
    run_offset_cdf,
    run_offset_stability,
    run_range_throughput,
    run_range_vs_team,
    run_residual_surface,
    run_resolution_vs_distance,
)
from repro.experiments import (
    run_beacon_scheduling,
    run_energy_comparison,
    run_multisf_demux,
    run_phy_calibration,
    run_unb_separation,
)
from repro.experiments.ablations import (
    ablation_fft_oversampling,
    ablation_fine_vs_coarse,
    ablation_preamble_accumulation,
    ablation_sic_strategies,
    ablation_splicing,
)
from repro.utils.ascii_plot import ascii_bars, ascii_line

EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig3": (run_collision_peaks, "collided chirp peak structure"),
    "fig4": (run_residual_surface, "residual surface convexity"),
    "fig5": (run_isi_windows, "inter-symbol interference / dedup"),
    "fig7ab": (run_offset_cdf, "hardware offset diversity CDFs"),
    "fig7cd": (run_offset_stability, "within-packet offset stability"),
    "fig8ac": (run_density_vs_snr, "2-user density vs SNR"),
    "fig8d": (run_density_vs_users, "density scaling 2..10 users"),
    "fig9a": (run_range_throughput, "team throughput vs team size"),
    "fig9b": (run_range_vs_team, "max distance vs team size"),
    "fig10": (run_resolution_vs_distance, "sensor resolution vs distance"),
    "fig11a": (run_grouping_error, "grouping strategies"),
    "fig11b": (run_mixed_throughput, "mixed near/far throughput"),
    "fig12": (run_mimo_comparison, "Choir vs MU-MIMO"),
    "multisf": (run_multisf_demux, "multi-SF demultiplexing (ext)"),
    "unb": (run_unb_separation, "ultra-narrowband separation (ext)"),
    "energy": (run_energy_comparison, "battery life from retransmissions"),
    "beacon": (run_beacon_scheduling, "beacon team scheduling"),
    "calibration": (run_phy_calibration, "PHY model vs waveform decoder (slow)"),
    "ablation-fine": (ablation_fine_vs_coarse, "fine vs coarse offsets"),
    "ablation-sic": (ablation_sic_strategies, "SIC strategies"),
    "ablation-fft": (ablation_fft_oversampling, "FFT oversampling"),
    "ablation-accum": (ablation_preamble_accumulation, "preamble accumulation"),
    "ablation-splice": (ablation_splicing, "data splicing"),
}


def _chart_for(name: str, result) -> str | None:
    """An ASCII chart for series-shaped experiments."""
    if name == "fig8d":
        choir = [r["throughput_bps"] for r in result.rows if r["system"] == "choir"]
        return ascii_line(
            choir, label="Choir network throughput (bps) vs users 2..10"
        )
    if name == "fig9b":
        return ascii_bars(
            [r["band"] for r in result.rows],
            [r["max_distance_m"] for r in result.rows],
            unit=" m",
        )
    if name == "fig10":
        return ascii_line(
            [r["temperature_error"] for r in result.rows],
            label="temperature resolution error vs distance",
        )
    if name == "fig12":
        return ascii_bars(
            [r["system"] for r in result.rows],
            [r["throughput_bps"] for r in result.rows],
            unit=" bps",
        )
    return None


def cmd_list() -> int:
    """Print the experiment registry."""
    width = max(len(n) for n in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    return 0


def cmd_report(output_dir: str, names: list[str]) -> int:
    """Run experiments and write their tables (text + CSV) to a directory."""
    import pathlib

    targets = list(EXPERIMENTS) if not names or names == ["all"] else names
    unknown = [n for n in targets if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    index_lines = ["# Experiment report", ""]
    for name in targets:
        fn, description = EXPERIMENTS[name]
        start = time.time()
        result = fn()
        (out / f"{name}.txt").write_text(str(result) + "\n")
        csv_text = result.to_csv()
        if csv_text:
            (out / f"{name}.csv").write_text(csv_text)
        elapsed = time.time() - start
        index_lines.append(f"- `{name}` ({description}): {elapsed:.1f}s")
        print(f"{name}: wrote {name}.txt / {name}.csv [{elapsed:.1f}s]")
    (out / "INDEX.md").write_text("\n".join(index_lines) + "\n")
    print(f"\nreport written to {out}/")
    return 0


def _parse_sf_set(text: str) -> tuple[int, ...]:
    """Parse a ``--sf-set`` comma list like ``7,8`` into a tuple of ints."""
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad --sf-set {text!r}: {exc}") from exc
    if not values:
        raise argparse.ArgumentTypeError("--sf-set must name at least one SF")
    return values


def _write_profile_artifacts(
    args: argparse.Namespace,
    kind: str,
    config: dict,
    seed,
    digest=None,
    telemetry=None,
    profiler=None,
    resources=None,
    extra_metrics=None,
    points=None,
) -> None:
    """Write the run manifest / collapsed stacks the profile flags asked for."""
    if getattr(args, "profile_out", None):
        from repro.profile import build_manifest

        manifest = build_manifest(
            kind,
            config,
            seed=seed,
            digest=digest,
            telemetry=telemetry,
            profiler=profiler,
            resources=resources,
            extra_metrics=extra_metrics,
            points=points,
        )
        manifest.write(args.profile_out)
        print(
            f"run manifest written to {args.profile_out}"
            f" ({len(manifest.metrics)} comparable metric(s);"
            f" diff with `python -m repro diff`)"
        )
    if getattr(args, "stacks_out", None) and profiler is not None:
        with open(args.stacks_out, "w") as handle:
            handle.write(profiler.collapsed())
        print(
            f"collapsed stacks written to {args.stacks_out}"
            " (flamegraph.pl / speedscope ready)"
        )


def cmd_gateway(args: argparse.Namespace) -> int:
    """Run the streaming gateway and print its telemetry summary."""
    from repro.gateway import (
        Gateway,
        GatewayConfig,
        IqFileSource,
        ShardedGateway,
        ShardedGatewayConfig,
        SyntheticTrafficSource,
    )
    from repro.gateway.sources import SampleSource
    from repro.mac.simulator import NodeConfig
    from repro.phy.params import ChannelPlan, LoRaParams

    sf_set = args.sf_set if args.sf_set is not None else (args.sf,)
    multi_channel = args.channels > 1 or len(sf_set) > 1
    params = LoRaParams(spreading_factor=sf_set[0])
    profile = bool(args.profile_out or args.stacks_out)
    gateway: Gateway | ShardedGateway
    if multi_channel:
        if args.input is not None:
            print("--input replay is single-channel only", file=sys.stderr)
            return 2
        plan = ChannelPlan.eu868_style(args.channels)
        sharded_config = ShardedGatewayConfig(
            plan=plan,
            sf_set=sf_set,
            payload_len=args.payload_len,
            n_workers=args.workers,
            executor=args.executor,
            queue_capacity=args.queue_capacity,
            drop_policy=args.drop_policy,
            decode_tier=args.decode_tier,
            seed=args.seed,
            trace=bool(args.trace_out),
            trace_sample_rate=args.trace_sample_rate,
            profile=profile,
            profile_alloc=args.profile_alloc,
        )
        nodes = [
            NodeConfig(
                node_id=i,
                snr_db=args.snr,
                period_s=args.period,
                channel=i % plan.n_channels,
                spreading_factor=sf_set[i % len(sf_set)],
            )
            for i in range(args.nodes)
        ]
        source: SampleSource = SyntheticTrafficSource(
            params,
            nodes,
            duration_s=args.duration,
            payload_len=args.payload_len,
            plan=plan,
            rng=args.seed,
        )
        print(
            f"synthesizing {args.duration:.1f}s of wideband traffic:"
            f" {args.nodes} node(s) across {plan.n_channels} channel(s),"
            f" SF set {','.join(str(s) for s in sharded_config.sf_set)},"
            f" period {args.period}s, {args.snr:.0f} dB SNR,"
            f" {len(source.transmitted)} packets"
        )
        gateway = ShardedGateway(sharded_config)
    else:
        config = GatewayConfig(
            params=params,
            payload_len=args.payload_len,
            n_workers=args.workers,
            executor=args.executor,
            queue_capacity=args.queue_capacity,
            drop_policy=args.drop_policy,
            decode_tier=args.decode_tier,
            seed=args.seed,
            trace=bool(args.trace_out),
            trace_sample_rate=args.trace_sample_rate,
            profile=profile,
            profile_alloc=args.profile_alloc,
        )
        if args.input is not None:
            source = IqFileSource(params, args.input)
            print(f"replaying {args.input}")
        else:
            nodes = [
                NodeConfig(node_id=i, snr_db=args.snr, period_s=args.period)
                for i in range(args.nodes)
            ]
            source = SyntheticTrafficSource(
                params,
                nodes,
                duration_s=args.duration,
                payload_len=args.payload_len,
                rng=args.seed,
            )
            print(
                f"synthesizing {args.duration:.1f}s of traffic:"
                f" {args.nodes} node(s), period {args.period}s, {args.snr:.0f} dB SNR,"
                f" {len(source.transmitted)} packets"
            )
        gateway = Gateway(config)
    report = gateway.run(source)
    print(report.summary())
    if isinstance(source, SyntheticTrafficSource):
        sent = sorted(p.payload for p in source.transmitted)
        got = sorted(report.decoded_payloads)
        matched = sum(1 for p in got if p in sent)
        print(f"ground truth  {matched}/{len(sent)} transmitted payloads recovered")
    if args.telemetry_out:
        gateway.telemetry.write_jsonl(args.telemetry_out)
        print(f"telemetry written to {args.telemetry_out}")
    if args.metrics_out:
        gateway.telemetry.write_prometheus(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out and report.trace is not None:
        from repro.trace import write_trace

        write_trace(report.trace, args.trace_out, kernel_profile=report.profile)
        print(
            f"trace written to {args.trace_out}"
            f" ({len(report.trace)} packet trace(s);"
            f" inspect with `python -m repro forensics {args.trace_out}`)"
        )
    if profile:
        from repro.scenario.build import report_digest

        run_config = {
            "duration_s": args.duration,
            "n_nodes": args.nodes,
            "period_s": args.period,
            "snr_db": args.snr,
            "payload_len": args.payload_len,
            "n_workers": args.workers,
            "executor": args.executor,
            "seed": args.seed,
            "spreading_factor": args.sf,
            "n_channels": args.channels,
            "sf_set": list(sf_set),
            "decode_tier": args.decode_tier,
        }
        _write_profile_artifacts(
            args,
            "sharded-gateway" if multi_channel else "gateway",
            run_config,
            args.seed,
            digest=report_digest(report),
            telemetry=gateway.telemetry,
            profiler=report.profile,
            resources=report.resources,
            extra_metrics={
                "gateway.realtime_factor": report.realtime_factor,
                "gateway.wall_s": report.wall_s,
                "gateway.packets_decoded": float(report.packets_decoded),
            },
        )
    return 0


def cmd_server(args: argparse.Namespace) -> int:
    """Run the closed-loop multi-gateway network-server scenario."""
    from repro.server import ServerConfig, build_scenario, run_closed_loop

    node_snrs = [
        args.snr_hi if i % 2 == 0 else args.snr_lo for i in range(args.nodes)
    ]
    server_config = (
        ServerConfig(
            dedup_window_s=args.dedup_window,
            adr_initial_sf=args.initial_sf,
            decode_tier=args.decode_tier,
        )
        if args.dedup_window is not None
        else None  # build_scenario defaults the window to two slots
    )
    sim, phy, server = build_scenario(
        n_gateways=args.gateways,
        node_snrs_db=node_snrs,
        initial_sf=args.initial_sf,
        seed=args.seed,
        server_config=server_config,
        decode_tier=args.decode_tier,
    )
    if args.state_in:
        with open(args.state_in) as handle:
            n_loaded = server.restore_sessions(handle.read())
        print(f"restored {n_loaded} session(s) from {args.state_in}")
    print(
        f"closed-loop scenario: {args.gateways} gateway(s), {args.nodes} "
        f"node(s) at {args.snr_hi:.0f}/{args.snr_lo:.0f} dB, initial SF"
        f"{args.initial_sf}, {args.duration:.1f}s simulated, "
        f"{args.ingest} ingest, {server.config.decode_tier} decode tier"
    )
    accountant = None
    if args.profile_out:
        from repro.profile.resources import ResourceAccountant

        accountant = ResourceAccountant(alloc_top_n=args.profile_alloc)
        accountant.start()
    report = run_closed_loop(
        sim, phy, server, args.duration, ingest=args.ingest
    )
    resources = accountant.stop() if accountant is not None else None
    faster, slower = report.moved_faster(), report.moved_slower()
    print(
        f"ingested {report.server.n_ingested} gateway copies -> "
        f"{report.server.n_delivered} delivered "
        f"({report.server.n_duplicates} duplicates collapsed, "
        f"{report.server.n_replays} replays rejected)"
    )
    print(f"downlink commands: {report.n_commands}")
    for nid in sorted(report.final_sf):
        trajectory = " -> ".join(str(sf) for sf in report.sf_trajectory[nid])
        print(
            f"  node {nid}: SF {trajectory}"
            f" (best gateway {report.best_gateway_truth.get(nid, '-')})"
        )
    print(
        f"ADR moved {len(faster)} node(s) faster, {len(slower)} node(s) slower"
    )
    print(server.telemetry.summary())
    if args.metrics_out:
        server.telemetry.write_prometheus(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.state_out:
        with open(args.state_out, "w") as handle:
            handle.write(report.server.sessions_jsonl)
        print(f"session state written to {args.state_out}")
    if args.profile_out:
        _write_profile_artifacts(
            args,
            "server",
            {
                "n_gateways": args.gateways,
                "n_nodes": args.nodes,
                "duration_s": args.duration,
                "snr_hi_db": args.snr_hi,
                "snr_lo_db": args.snr_lo,
                "initial_sf": args.initial_sf,
                "ingest": args.ingest,
                "seed": args.seed,
                "decode_tier": args.decode_tier,
            },
            args.seed,
            telemetry=server.telemetry,
            resources=resources,
            extra_metrics={
                "server.ingested": float(report.server.n_ingested),
                "server.delivered": float(report.server.n_delivered),
                "server.duplicates": float(report.server.n_duplicates),
                "server.commands": float(report.n_commands),
            },
        )
    if args.assert_adr and (not faster or not slower):
        print(
            "ADR convergence assertion failed: expected at least one node "
            "to speed up and one to slow down",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run the node-count capacity sweep described by a scenario file."""
    from repro.scenario import (
        ScenarioError,
        load_scenario,
        run_campaign,
    )

    try:
        spec = load_scenario(args.scenario)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    node_counts = args.nodes if args.nodes else None
    counts = node_counts if node_counts is not None else list(spec.sweep.node_counts)
    duration = args.duration if args.duration is not None else spec.sweep.duration_s
    print(
        f"campaign '{spec.name}': sweeping "
        f"{', '.join(str(n) for n in counts)} node(s) for {duration:.0f}s "
        f"simulated air time each, {spec.plan.n_channels}-channel "
        f"{spec.plan.region} plan, choir tier '{spec.gateway.decode_tier}' "
        f"vs baseline tier '{spec.baseline.decode_tier}' "
        f"(max_users={spec.baseline.max_users})"
    )

    profiler = None
    if args.profile_out or args.stacks_out:
        from repro.profile import KernelProfiler

        profiler = KernelProfiler()

    # Heartbeat state: completed points weight the ETA by node count
    # (cost scales superlinearly, but linear already beats uniform).
    total_weight = float(sum(counts)) or 1.0
    done_weight = 0.0
    started_at = time.time()

    def _progress(point) -> None:
        nonlocal done_weight
        done_weight += point.n_nodes
        elapsed = time.time() - started_at
        remaining = total_weight - done_weight
        eta = elapsed / done_weight * remaining if done_weight else 0.0
        print(
            f"  n={point.n_nodes}: offered G={point.offered_load_erlangs:.3f}, "
            f"choir {point.choir.delivery_rate:.3f} "
            f"({point.choir.packets_delivered}/{point.choir.packets_offered}), "
            f"baseline {point.baseline.delivery_rate:.3f} "
            f"({point.baseline.packets_delivered}/"
            f"{point.baseline.packets_offered}), "
            f"active peak {point.source_active_peak}"
        )
        print(
            f"    [heartbeat] elapsed {elapsed:.1f}s, eta ~{eta:.0f}s, "
            f"cpu {point.choir.cpu_s + point.baseline.cpu_s:.1f}s, "
            f"peak rss {point.choir.max_rss_kb / 1024.0:.0f}MB"
        )
        sys.stdout.flush()

    accountant = None
    if args.profile_out:
        from repro.profile.resources import ResourceAccountant

        accountant = ResourceAccountant(alloc_top_n=args.profile_alloc)
        accountant.start()
    try:
        curve = run_campaign(
            spec,
            node_counts=node_counts,
            duration_s=args.duration,
            seed=args.seed,
            on_point=_progress,
            profiler=profiler,
        )
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    resources = accountant.stop() if accountant is not None else None
    print()
    print(curve.chart())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(curve.to_json() + "\n")
        print(f"curve JSON written to {args.json_out}")
    if args.csv_out:
        with open(args.csv_out, "w") as handle:
            handle.write(curve.to_csv())
        print(f"curve CSV written to {args.csv_out}")
    if args.profile_out or args.stacks_out:
        point_metrics: dict[str, float] = {}
        for p in curve.points:
            for variant in (p.choir, p.baseline):
                prefix = f"campaign.n{p.n_nodes}.{variant.variant}"
                point_metrics[f"{prefix}.delivery_rate"] = variant.delivery_rate
                point_metrics[f"{prefix}.wall_s"] = variant.wall_s
                point_metrics[f"{prefix}.cpu_s"] = variant.cpu_s
                point_metrics[f"{prefix}.max_rss_kb"] = float(
                    variant.max_rss_kb
                )
        _write_profile_artifacts(
            args,
            "campaign",
            {
                "scenario": spec.name,
                "node_counts": list(counts),
                "duration_s": duration,
                "seed": args.seed if args.seed is not None else spec.sweep.seed,
            },
            args.seed if args.seed is not None else spec.sweep.seed,
            profiler=profiler,
            resources=resources,
            extra_metrics=point_metrics,
            points=[p.to_dict() for p in curve.points],
        )
    if args.assert_ordering:
        problems = curve.ordering_violations(strict_above=args.strict_above)
        if problems:
            print(
                "capacity ordering assertion failed:\n  "
                + "\n  ".join(problems),
                file=sys.stderr,
            )
            return 1
        print(
            "capacity ordering holds: choir >= baseline at every point, "
            f"strictly above at n >= {args.strict_above}"
        )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Compare two run manifests; exit 1 on thresholded regressions."""
    from repro.profile import diff_metrics, load_manifest

    try:
        baseline = load_manifest(args.baseline)
        candidate = load_manifest(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"diff error: {exc}", file=sys.stderr)
        return 2
    print(
        f"baseline : {args.baseline} "
        f"(kind={baseline.kind}, seed={baseline.seed})"
    )
    print(
        f"candidate: {args.candidate} "
        f"(kind={candidate.kind}, seed={candidate.seed})"
    )
    if baseline.kind != candidate.kind:
        print(
            f"note: comparing different run kinds "
            f"({baseline.kind} vs {candidate.kind})"
        )
    report = diff_metrics(
        baseline.metrics,
        candidate.metrics,
        tolerance=args.tolerance,
        slack=args.slack,
    )
    for line in report.lines(show_ok=args.show_ok):
        print(line)
    print(report.summary())
    code = report.exit_code(strict=args.assert_no_regression)
    if code:
        tally = len(report.regressions)
        missing = len(report.missing)
        parts = [f"{tally} regression(s)"]
        if args.assert_no_regression and missing:
            parts.append(f"{missing} missing baseline metric(s)")
        print("REGRESSION: " + ", ".join(parts), file=sys.stderr)
    else:
        print("no regressions")
    return code


def cmd_run(names: list[str]) -> int:
    """Run the named experiments and print their tables."""
    targets = list(EXPERIMENTS) if names == ["all"] else names
    unknown = [n for n in targets if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in targets:
        fn, _ = EXPERIMENTS[name]
        start = time.time()
        result = fn()
        print(result)
        chart = _chart_for(name, result)
        if chart:
            print()
            print(chart)
        print(f"[{time.time() - start:.1f}s]\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Choir (SIGCOMM 2017) reproduction -- experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments by name (or 'all')")
    run_parser.add_argument("names", nargs="+", help="experiment names")
    report_parser = sub.add_parser(
        "report", help="write experiment tables (text + CSV) to a directory"
    )
    report_parser.add_argument("output_dir", help="directory to write into")
    report_parser.add_argument(
        "names", nargs="*", help="experiment names (default: all)"
    )
    gw = sub.add_parser(
        "gateway", help="run the streaming gateway over synthetic or recorded IQ"
    )
    gw.add_argument("--duration", type=float, default=5.0, help="stream seconds")
    gw.add_argument("--workers", type=int, default=1, help="decode workers")
    gw.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="thread"
    )
    gw.add_argument("--sf", type=int, default=7, help="spreading factor")
    gw.add_argument(
        "--channels",
        type=int,
        default=1,
        help="channels in the (EU868-style) plan; >1 runs the sharded gateway",
    )
    gw.add_argument(
        "--sf-set",
        type=_parse_sf_set,
        default=None,
        help="comma list of SFs to scan per channel (e.g. 7,8); implies sharding",
    )
    gw.add_argument("--nodes", type=int, default=2, help="synthetic node count")
    gw.add_argument(
        "--period", type=float, default=0.5, help="per-node transmit period (s)"
    )
    gw.add_argument("--snr", type=float, default=15.0, help="per-node SNR (dB)")
    gw.add_argument("--payload-len", type=int, default=4, help="payload bytes")
    gw.add_argument("--seed", type=int, default=0, help="master seed")
    gw.add_argument("--queue-capacity", type=int, default=8)
    gw.add_argument("--drop-policy", choices=("newest", "oldest", "block"), default="newest")
    gw.add_argument(
        "--decode-tier",
        choices=("full", "cascade", "fast"),
        default="full",
        help="decode pipeline per window: full Choir, tiered cascade, or"
        " Tier-0 fast path only",
    )
    gw.add_argument("--input", default=None, help="IQ capture to replay (.npy or raw complex64)")
    gw.add_argument("--telemetry-out", default=None, help="write telemetry JSON-lines here")
    gw.add_argument(
        "--metrics-out",
        default=None,
        help="write Prometheus text exposition here (e.g. metrics.prom)",
    )
    gw.add_argument(
        "--trace-out",
        default=None,
        help="write a decode provenance trace here"
        " (.jsonl, or .json for chrome://tracing)",
    )
    gw.add_argument(
        "--trace-sample-rate",
        type=float,
        default=1.0,
        help="fraction of jobs traced unconditionally (failures always kept)",
    )
    gw.add_argument(
        "--profile-out",
        default=None,
        help="write a diffable run manifest JSON here (enables the kernel"
        " profiler; compare runs with `python -m repro diff`)",
    )
    gw.add_argument(
        "--profile-alloc",
        type=int,
        default=0,
        metavar="N",
        help="also record the top-N allocation sites via tracemalloc"
        " (0 = off; tracing roughly doubles allocator cost)",
    )
    gw.add_argument(
        "--stacks-out",
        default=None,
        help="write collapsed kernel stacks here (flamegraph.pl /"
        " speedscope input; enables the kernel profiler)",
    )
    srv = sub.add_parser(
        "server",
        help="run the closed-loop multi-gateway network-server scenario",
    )
    srv.add_argument(
        "--gateways", type=int, default=2, help="overlapping gateways"
    )
    srv.add_argument(
        "--nodes",
        type=int,
        default=4,
        help="devices (alternating high/low SNR)",
    )
    srv.add_argument(
        "--duration", type=float, default=120.0, help="simulated seconds"
    )
    srv.add_argument(
        "--snr-hi", type=float, default=20.0, help="strong devices' SNR (dB)"
    )
    srv.add_argument(
        "--snr-lo", type=float, default=-4.0, help="weak devices' SNR (dB)"
    )
    srv.add_argument(
        "--initial-sf", type=int, default=10, help="starting spreading factor"
    )
    srv.add_argument(
        "--dedup-window",
        type=float,
        default=None,
        help="dedup window seconds (default: two slot times)",
    )
    srv.add_argument(
        "--ingest",
        choices=("serial", "thread", "async"),
        default="serial",
        help="ingest transport (all three are deterministic and agree)",
    )
    srv.add_argument("--seed", type=int, default=0, help="master seed")
    srv.add_argument(
        "--decode-tier",
        choices=("full", "cascade", "fast"),
        default="full",
        help="decode pipeline the fronting IQ gateways run (recorded in"
        " the server config; the packet-level scenario reports it)",
    )
    srv.add_argument(
        "--metrics-out",
        default=None,
        help="write server Prometheus exposition here",
    )
    srv.add_argument(
        "--state-out", default=None, help="write session JSONL snapshot here"
    )
    srv.add_argument(
        "--state-in", default=None, help="restore session JSONL snapshot first"
    )
    srv.add_argument(
        "--assert-adr",
        action="store_true",
        help="exit 1 unless ADR moved a node faster AND one slower (CI gate)",
    )
    srv.add_argument(
        "--profile-out",
        default=None,
        help="write a diffable run manifest JSON here (server runs record"
        " telemetry and resource usage; no DSP kernels)",
    )
    srv.add_argument(
        "--profile-alloc",
        type=int,
        default=0,
        metavar="N",
        help="also record the top-N allocation sites via tracemalloc (0 = off)",
    )
    camp = sub.add_parser(
        "campaign",
        help="run a scenario file's node-count capacity sweep"
        " (Choir vs standard LoRa)",
    )
    camp.add_argument(
        "--scenario",
        required=True,
        help="scenario file (.yaml/.yml/.json; see scenarios/)",
    )
    camp.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=None,
        help="override the sweep's node counts (e.g. --nodes 50 200 800)",
    )
    camp.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override simulated air seconds per sweep point",
    )
    camp.add_argument(
        "--seed", type=int, default=None, help="override the sweep seed"
    )
    camp.add_argument(
        "--json-out", default=None, help="write the capacity curve JSON here"
    )
    camp.add_argument(
        "--csv-out", default=None, help="write the plot-ready CSV here"
    )
    camp.add_argument(
        "--assert-ordering",
        action="store_true",
        help="exit 1 unless choir delivery >= baseline at every point"
        " (strictly above at n >= --strict-above); the CI capacity gate",
    )
    camp.add_argument(
        "--strict-above",
        type=int,
        default=200,
        help="node count from which choir must be strictly above baseline",
    )
    camp.add_argument(
        "--profile-out",
        default=None,
        help="write a diffable run manifest JSON here (whole-campaign kernel"
        " table, per-point resource curves)",
    )
    camp.add_argument(
        "--profile-alloc",
        type=int,
        default=0,
        metavar="N",
        help="also record the top-N allocation sites via tracemalloc (0 = off)",
    )
    camp.add_argument(
        "--stacks-out",
        default=None,
        help="write the campaign's collapsed kernel stacks here",
    )
    diff_parser = sub.add_parser(
        "diff",
        help="compare two run manifests written with --profile-out",
    )
    diff_parser.add_argument("baseline", help="baseline run manifest JSON")
    diff_parser.add_argument("candidate", help="candidate run manifest JSON")
    diff_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative drift allowed before a metric is flagged (default 25%%)",
    )
    diff_parser.add_argument(
        "--slack",
        type=float,
        default=0.0,
        help="absolute drift allowed on top of the tolerance (metric units)",
    )
    diff_parser.add_argument(
        "--assert-no-regression",
        action="store_true",
        help="strict CI gate: also exit 1 when baseline metrics are missing"
        " from the candidate",
    )
    diff_parser.add_argument(
        "--show-ok",
        action="store_true",
        help="print every compared metric, not just the interesting ones",
    )
    forensics_parser = sub.add_parser(
        "forensics",
        help="per-packet post-mortem of a trace written with --trace-out",
    )
    forensics_parser.add_argument("trace", help="trace file (.jsonl or .json)")
    forensics_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.names)
    if args.command == "report":
        return cmd_report(args.output_dir, args.names)
    if args.command == "gateway":
        return cmd_gateway(args)
    if args.command == "server":
        return cmd_server(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "diff":
        return cmd_diff(args)
    if args.command == "forensics":
        from repro.trace.forensics import main as forensics_main

        forensics_argv = [args.trace] + (["--json"] if args.json else [])
        return forensics_main(forensics_argv)
    parser.print_help()
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
