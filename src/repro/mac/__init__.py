"""MAC-layer discrete-event simulation.

The paper's Figs. 8, 11 and 12 compare network-level metrics (throughput,
per-packet latency, transmissions per delivered packet) across three MACs
sharing one PHY:

* **ALOHA** -- LoRaWAN's slotted ALOHA with binary exponential backoff;
* **Oracle** -- an idealized TDMA scheduler that serializes transmissions
  perfectly (no collisions, no wasted slots);
* **Choir** -- beacon-solicited concurrent transmissions, decoded by the
  collision-disentangling receiver.

The PHY is pluggable: :class:`repro.mac.phy.SingleUserPhy` (classic
receiver: any collision destroys all packets), :class:`repro.mac.phy.ChoirPhyModel`
(offset-separation + SNR model calibrated against the waveform decoder) and
:class:`repro.mac.phy.MuMimoPhyModel` (antenna-limited spatial separation).
"""

from repro.mac.events import EventScheduler
from repro.mac.phy import (
    ChoirPhyModel,
    MuMimoPhyModel,
    PhyModel,
    SingleUserPhy,
    Transmission,
)
from repro.mac.protocols import AlohaMac, ChoirMac, Mac, OracleMac
from repro.mac.simulator import MacMetrics, NetworkSimulator, NodeConfig, SlotResult

__all__ = [
    "SlotResult",
    "EventScheduler",
    "PhyModel",
    "SingleUserPhy",
    "ChoirPhyModel",
    "MuMimoPhyModel",
    "Transmission",
    "Mac",
    "AlohaMac",
    "OracleMac",
    "ChoirMac",
    "NetworkSimulator",
    "NodeConfig",
    "MacMetrics",
]
