"""MAC protocols: slotted ALOHA, oracle TDMA, and Choir's beacon MAC.

All three share a slot-synchronous contract with the simulator: each slot
the MAC nominates transmitters from the backlogged nodes, the PHY model
resolves the collision, and the MAC is told the outcome so it can update
its backoff/scheduling state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import ensure_rng


class Mac:
    """Interface the simulator drives."""

    def select_transmitters(self, slot: int, backlogged: list[int], rng) -> list[int]:
        """Which of the backlogged nodes transmit in this slot."""
        raise NotImplementedError

    def on_result(self, slot: int, attempted: list[int], decoded: set[int]) -> None:
        """Feedback after the PHY resolved the slot (ACK emulation)."""


@dataclass
class AlohaMac(Mac):
    """Slotted ALOHA with binary exponential backoff (LoRaWAN's mode 1).

    A backlogged node transmits as soon as its backoff expires; every
    failure doubles its contention window up to ``max_window`` slots
    (paper Sec. 3: "transmit as soon as they wake up and apply random
    exponential back-off when faced with a collision").
    """

    initial_window: int = 1
    max_window: int = 32
    _windows: dict[int, int] = field(default_factory=dict)
    _wait_until: dict[int, int] = field(default_factory=dict)

    def select_transmitters(self, slot: int, backlogged: list[int], rng) -> list[int]:
        """Backlogged nodes whose backoff has expired."""
        rng = ensure_rng(rng)
        ready = []
        for node in backlogged:
            if self._wait_until.get(node, 0) <= slot:
                ready.append(node)
        return ready

    def on_result(self, slot: int, attempted: list[int], decoded: set[int]) -> None:
        """Reset or exponentially grow each attempter's backoff window."""
        rng = self._rng
        for node in attempted:
            if node in decoded:
                self._windows[node] = self.initial_window
                self._wait_until[node] = slot + 1
            else:
                window = min(
                    self._windows.get(node, self.initial_window) * 2, self.max_window
                )
                self._windows[node] = window
                self._wait_until[node] = slot + 1 + int(rng.integers(0, window))

    def __post_init__(self) -> None:
        self._rng = ensure_rng(None)

    def seed(self, rng) -> None:
        """Share the simulation's RNG stream for reproducible backoffs."""
        self._rng = ensure_rng(rng)


@dataclass
class OracleMac(Mac):
    """Perfect TDMA: exactly one backlogged node per slot, round robin.

    The paper's "LoRaWAN+Oracle" baseline -- an upper bound for any
    collision-*avoiding* scheduler, with zero scheduling overhead and
    zero collisions.
    """

    _next_index: int = 0

    def select_transmitters(self, slot: int, backlogged: list[int], rng) -> list[int]:
        """Exactly one backlogged node, round robin."""
        if not backlogged:
            return []
        ordered = sorted(backlogged)
        choice = ordered[self._next_index % len(ordered)]
        self._next_index += 1
        return [choice]


@dataclass
class ChoirMac(Mac):
    """Beacon-solicited concurrent transmissions (Sec. 7.1).

    Every slot opens with a base-station beacon; all backlogged nodes (or a
    scheduled subset of at most ``group_size``) respond concurrently in the
    next slot, coarsely time-synchronized.  The Choir receiver disentangles
    the collision; nodes that were not decoded simply respond to the next
    beacon again.
    """

    group_size: int | None = None

    def select_transmitters(self, slot: int, backlogged: list[int], rng) -> list[int]:
        """All backlogged nodes (or a random group of ``group_size``)."""
        rng = ensure_rng(rng)
        nodes = sorted(backlogged)
        if self.group_size is not None and len(nodes) > self.group_size:
            picked = rng.choice(len(nodes), size=self.group_size, replace=False)
            return [nodes[i] for i in sorted(picked)]
        return nodes
