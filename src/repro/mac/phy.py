"""PHY outcome models used by the MAC simulator.

Running the full waveform decoder for every slot of a long MAC simulation
is accurate but slow; these models capture the decoder's *outcome
statistics* so network-level sweeps stay tractable.  The key model,
:class:`ChoirPhyModel`, reproduces the two mechanisms that decide whether a
Choir user survives a collision (and that the waveform experiments in
:mod:`repro.experiments` calibrate):

* **offset merging** -- each transmission draws an aggregate hardware
  offset; users whose offsets land within the resolvability threshold of a
  stronger user's are lost (Sec. 5.2's "overlapping frequency offsets");
* **SNR floor** -- a user below the decode threshold for its data rate is
  lost regardless of separation, and phased SIC lets weak users tolerate
  strong interferers only down to a near-far dynamic-range limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.params import LoRaParams
from repro.utils import RngLike, circular_distance, db_to_linear, ensure_rng

#: Minimum per-symbol SNR (dB) for reliable CSS demodulation.  CSS has a
#: processing gain of 2**SF, so this is the post-despreading requirement
#: mapped back to per-sample SNR; ~-15 dB at SF8 matches SX1276 datasheet
#: sensitivity within a couple of dB.
DEFAULT_DECODE_SNR_DB = {7: -12.0, 8: -15.0, 9: -17.5, 10: -20.0, 11: -22.5, 12: -25.0}


@dataclass(frozen=True)
class Transmission:
    """One node's attempt in a slot, as seen by the PHY model.

    ``channel`` records which uplink channel of the network's
    :class:`repro.phy.params.ChannelPlan` carried the attempt; the
    simulator groups transmissions by it before resolving collisions, so
    the PHY models themselves only ever see same-channel contention.
    ``spreading_factor`` is the data rate the node transmitted at
    (``None`` falls back to the model's shared params) -- the network
    server's ADR loop retunes it per node, which moves the node's decode
    floor along the SF sensitivity ladder.
    """

    node_id: int
    snr_db: float
    n_payload_bits: int = 160
    channel: int = 0
    spreading_factor: int | None = None


class PhyModel:
    """Interface: given simultaneous transmissions, which nodes decode?"""

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """Node ids successfully decoded from this slot's collision."""
        raise NotImplementedError


@dataclass
class SingleUserPhy(PhyModel):
    """The commodity LoRaWAN receiver: collisions destroy everything.

    A single transmission succeeds when its SNR clears the decode
    threshold; two or more concurrent transmissions on the same spreading
    factor are all lost (the standard capture-free model; footnote 1 of the
    paper).
    """

    params: LoRaParams
    decode_snr_db: float | None = None
    capture_margin_db: float | None = None

    def _threshold(self, spreading_factor: int | None = None) -> float:
        if self.decode_snr_db is not None:
            return self.decode_snr_db
        sf = (
            spreading_factor
            if spreading_factor is not None
            else self.params.spreading_factor
        )
        return DEFAULT_DECODE_SNR_DB.get(sf, -15.0)

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """See :meth:`PhyModel.resolve`."""
        if not transmissions:
            return set()
        if len(transmissions) == 1:
            tx = transmissions[0]
            if tx.snr_db >= self._threshold(tx.spreading_factor):
                return {tx.node_id}
            return set()
        if self.capture_margin_db is not None:
            # Optional capture effect: the strongest survives if it
            # dominates the sum of the rest by the margin.
            powers = np.array([db_to_linear(t.snr_db) for t in transmissions])
            strongest = int(np.argmax(powers))
            rest = powers.sum() - powers[strongest]
            sinr = powers[strongest] / max(rest + 1.0, 1e-30)
            if 10 * np.log10(sinr) >= self.capture_margin_db:
                return {transmissions[strongest].node_id}
        return set()


@dataclass
class ChoirPhyModel(PhyModel):
    """Outcome model of the Choir collision decoder.

    Parameters
    ----------
    params:
        PHY configuration (sets the decode SNR floor and bin count).
    offset_span_bins:
        Width of the aggregate-offset distribution across boards, in FFT
        bins (crystal tolerance times carrier over bin width; ~90 bins for
        +/-25 ppm at 902 MHz / SF8 / 125 kHz).
    separation_bins:
        Minimum offset separation for two users to be disentangled
        (the waveform decoder resolves ~0.75 bins).
    near_far_limit_db:
        Maximum power deficit a user can have relative to the strongest
        colliding user and still be recovered by phased SIC.
    symbol_error_scale:
        Residual per-symbol error probability (per interferer) for users
        whose fractional signature is clean (calibrated against the
        waveform decoder; per-packet success applies FEC-style tolerance).
    frac_collision_threshold / collateral_symbol_error:
        Users whose *fractional* offsets land within the threshold of
        another user's are still separable (their aggregate offsets
        differ) but suffer occasional decision swaps -- the waveform
        decoder shows ~1 corrupted symbol in 16 for such pairs, hence the
        elevated collateral error rate.
    """

    params: LoRaParams
    offset_span_bins: float = 90.0
    separation_bins: float = 0.75
    near_far_limit_db: float = 33.0
    decode_snr_db: float | None = None
    symbol_error_scale: float = 0.002
    frac_collision_threshold: float = 0.1
    collateral_symbol_error: float = 0.05
    max_decodable: int | None = None

    def _threshold(self, spreading_factor: int | None = None) -> float:
        if self.decode_snr_db is not None:
            return self.decode_snr_db
        sf = (
            spreading_factor
            if spreading_factor is not None
            else self.params.spreading_factor
        )
        return DEFAULT_DECODE_SNR_DB.get(sf, -15.0)

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """See :meth:`PhyModel.resolve`."""
        rng = ensure_rng(rng)
        if not transmissions:
            return set()
        offsets = rng.uniform(0.0, self.offset_span_bins, len(transmissions))
        snrs = np.array([t.snr_db for t in transmissions])
        strongest = float(snrs.max())
        decoded: set[int] = set()
        order = np.argsort(snrs)[::-1]
        survivors: list[int] = []
        for i in order:
            # Offset merge test against every *stronger* survivor.
            merged = any(
                circular_distance(
                    offsets[i], offsets[j], period=self.params.chips_per_symbol
                )
                < self.separation_bins
                for j in survivors
            )
            if merged:
                continue
            survivors.append(int(i))
        if self.max_decodable is not None:
            survivors = survivors[: self.max_decodable]
        for rank, i in enumerate(survivors):
            tx = transmissions[i]
            if tx.snr_db < self._threshold(tx.spreading_factor):
                continue
            if strongest - tx.snr_db > self.near_far_limit_db:
                continue
            # Fractional-signature collision: separable (aggregate offsets
            # differ) but occasionally swaps decisions with the colliding
            # user -- the bimodal behaviour the waveform decoder exhibits.
            frac_collision = any(
                j != i
                and circular_distance(offsets[i] % 1.0, offsets[j] % 1.0)
                < self.frac_collision_threshold
                for j in range(len(transmissions))
            )
            n_interferers = len(transmissions) - 1
            if frac_collision:
                p_symbol_error = self.collateral_symbol_error
            else:
                p_symbol_error = min(self.symbol_error_scale * n_interferers, 0.9)
            sf_bits = (
                tx.spreading_factor
                if tx.spreading_factor is not None
                else self.params.spreading_factor
            )
            n_symbols = max(tx.n_payload_bits // sf_bits, 1)
            # Hamming(8,4)+interleaving tolerates scattered symbol errors up
            # to ~6% of symbols; beyond that the packet CRC fails.
            tolerated = max(int(0.06 * n_symbols), 1)
            n_errors = rng.binomial(n_symbols, p_symbol_error)
            if n_errors <= tolerated:
                decoded.add(tx.node_id)
        return decoded


@dataclass
class MuMimoPhyModel(PhyModel):
    """Uplink MU-MIMO baseline: antennas bound concurrent decodes.

    Zero-forcing across ``n_antennas`` separates at most ``n_antennas``
    concurrent streams (Sec. 2: "at best separate as many sensor nodes as
    there are base station antennas"); beyond that the system is
    interference-limited and everything is lost.  Within the antenna
    budget each stream pays a ZF noise-enhancement penalty.
    """

    params: LoRaParams
    n_antennas: int = 3
    zf_penalty_db: float = 3.0
    decode_snr_db: float | None = None

    def _threshold(self, spreading_factor: int | None = None) -> float:
        if self.decode_snr_db is not None:
            return self.decode_snr_db
        sf = (
            spreading_factor
            if spreading_factor is not None
            else self.params.spreading_factor
        )
        return DEFAULT_DECODE_SNR_DB.get(sf, -15.0)

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """See :meth:`PhyModel.resolve`."""
        if not transmissions:
            return set()
        if len(transmissions) > self.n_antennas:
            return set()
        penalty = self.zf_penalty_db if len(transmissions) > 1 else 0.0
        return {
            t.node_id
            for t in transmissions
            if t.snr_db - penalty >= self._threshold(t.spreading_factor)
        }


@dataclass
class ComposedPhy(PhyModel):
    """Choir running on a multi-antenna base station (Sec. 9.5).

    Antenna diversity (i) averages independent fades -- an SNR gain of
    ``10*log10(n_antennas)`` -- and (ii) votes independent per-antenna
    symbol decisions (see :func:`repro.mimo.decode_choir_multiantenna`),
    which suppresses the residual symbol-error rate by roughly the antenna
    count.  Both effects are applied before the Choir outcome model runs.
    """

    choir: ChoirPhyModel
    n_antennas: int = 3

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """See :meth:`PhyModel.resolve`."""
        gain = 10.0 * np.log10(self.n_antennas)
        boosted = [
            Transmission(
                t.node_id,
                t.snr_db + gain,
                t.n_payload_bits,
                channel=t.channel,
                spreading_factor=t.spreading_factor,
            )
            for t in transmissions
        ]
        diversity_model = ChoirPhyModel(
            params=self.choir.params,
            offset_span_bins=self.choir.offset_span_bins,
            separation_bins=self.choir.separation_bins,
            near_far_limit_db=self.choir.near_far_limit_db + gain,
            decode_snr_db=self.choir.decode_snr_db,
            symbol_error_scale=self.choir.symbol_error_scale / self.n_antennas,
            frac_collision_threshold=self.choir.frac_collision_threshold,
            collateral_symbol_error=self.choir.collateral_symbol_error
            / self.n_antennas,
            max_decodable=self.choir.max_decodable,
        )
        return diversity_model.resolve(boosted, rng=rng)
