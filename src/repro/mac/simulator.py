"""Slot-synchronous network simulator tying MAC + PHY + traffic together.

Reproduces the measurement loop behind Figs. 8, 11 and 12: N client nodes
with given link SNRs generate packets (saturated or periodic), a MAC
protocol nominates transmitters per slot, a PHY model resolves each slot's
collision, and the simulator accounts throughput, latency and
transmissions-per-delivered-packet exactly as the paper reports them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mac.phy import PhyModel, Transmission
from repro.mac.protocols import AlohaMac, Mac
from repro.phy.params import VALID_SPREADING_FACTORS, LoRaParams
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class NodeConfig:
    """Traffic and link configuration of one client node.

    Parameters
    ----------
    node_id:
        Stable identifier.
    snr_db:
        Link SNR at the base station (from :class:`repro.channel.LinkModel`).
    payload_bits:
        Application payload per packet.
    period_s:
        Packet generation period; ``None`` means saturated (a new packet is
        created the moment the previous one is delivered).
    channel:
        Uplink channel index within the network's
        :class:`repro.phy.params.ChannelPlan`.  Nodes on different
        channels never collide; the default single-channel plans keep
        every node on channel 0.
    spreading_factor:
        Per-node SF override (``None`` uses the network-wide
        :class:`repro.phy.params.LoRaParams`); multi-SF populations are
        what the sharded gateway demultiplexes.
    """

    node_id: int
    snr_db: float
    payload_bits: int = 160
    period_s: float | None = None
    channel: int = 0
    spreading_factor: int | None = None

    def __post_init__(self) -> None:
        # Validated here (not in each consumer) so the scenario loader can
        # surface a population-spec mistake with the node that carries it.
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.payload_bits <= 0:
            raise ValueError(f"payload_bits must be positive, got {self.payload_bits}")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError(
                f"period_s must be positive or None (saturated), got {self.period_s}"
            )
        if self.channel < 0:
            raise ValueError(f"channel must be >= 0, got {self.channel}")
        if (
            self.spreading_factor is not None
            and self.spreading_factor not in VALID_SPREADING_FACTORS
        ):
            raise ValueError(
                f"spreading_factor must be one of {VALID_SPREADING_FACTORS}, "
                f"got {self.spreading_factor}"
            )


@dataclass
class MacMetrics:
    """The three paper metrics plus raw counters."""

    duration_s: float = 0.0
    delivered_packets: int = 0
    delivered_bits: int = 0
    total_transmissions: int = 0
    latencies_s: list[float] = field(default_factory=list)
    per_node_delivered: dict[int, int] = field(default_factory=dict)

    @property
    def throughput_bps(self) -> float:
        """Network throughput in useful payload bits per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.delivered_bits / self.duration_s

    @property
    def mean_latency_s(self) -> float:
        """Mean creation-to-delivery latency."""
        if not self.latencies_s:
            return float("inf")
        return float(np.mean(self.latencies_s))

    @property
    def transmissions_per_packet(self) -> float:
        """Average (re)transmissions spent per delivered packet."""
        if self.delivered_packets == 0:
            return float("inf")
        return self.total_transmissions / self.delivered_packets


@dataclass
class _Packet:
    node_id: int
    created_s: float
    attempts: int = 0


@dataclass(frozen=True)
class SlotResult:
    """What one contended slot looked like, for external observers.

    The network server's closed ADR loop consumes these: each attempted
    transmission (with the SF the node actually used) plus which node ids
    the PHY decoded, stamped with the slot's delivery time.  Only slots
    with at least one attempted transmission are reported.
    """

    slot: int
    now_s: float
    delivery_s: float
    transmissions: tuple[Transmission, ...]
    decoded: frozenset[int]
    delivered: tuple[int, ...]


class NetworkSimulator:
    """Run one MAC + PHY combination over a node population.

    Parameters
    ----------
    params:
        PHY configuration; sets the slot duration (packet airtime).
    phy:
        Outcome model resolving each slot's set of transmissions.
    mac:
        Protocol nominating transmitters per slot.
    nodes:
        Traffic/link configuration per node.
    slot_overhead_s:
        Guard/beacon time added to each slot beyond the packet airtime
        (Choir's beacon and LoRaWAN's RX windows are both ~1 preamble).
    """

    def __init__(
        self,
        params: LoRaParams,
        phy: PhyModel,
        mac: Mac,
        nodes: list[NodeConfig],
        slot_overhead_s: float | None = None,
        rng: RngLike = None,
    ) -> None:
        self.params = params
        self.phy = phy
        self.mac = mac
        self.nodes = {cfg.node_id: cfg for cfg in nodes}
        if len(self.nodes) != len(nodes):
            raise ValueError("node_ids must be unique")
        self._rng = ensure_rng(rng)
        if isinstance(mac, AlohaMac):
            mac.seed(self._rng)
        self._queues: dict[int, deque[_Packet]] = {
            cfg.node_id: deque() for cfg in nodes
        }
        self._next_arrival: dict[int, float] = {}
        # Downlink-programmed per-node SF overrides (the ADR loop's knob);
        # NodeConfig.spreading_factor seeds the initial assignment.
        self._sf_override: dict[int, int] = {}
        airtime = self.packet_airtime_s(nodes[0].payload_bits if nodes else 160)
        self.slot_s = airtime + (
            slot_overhead_s
            if slot_overhead_s is not None
            else params.preamble_len * params.symbol_duration * 0.5
        )

    # ------------------------------------------------------------------
    def packet_airtime_s(self, payload_bits: int) -> float:
        """Airtime of one frame: preamble + data symbols."""
        n_data_symbols = max(int(np.ceil(payload_bits / self.params.spreading_factor)), 1)
        return (self.params.preamble_len + n_data_symbols) * self.params.symbol_duration

    def _generate_arrivals(self, node: NodeConfig, now: float) -> None:
        """Create pending packets for one node up to the current time."""
        if node.period_s is None:
            if not self._queues[node.node_id]:
                self._queues[node.node_id].append(_Packet(node.node_id, now))
            return
        next_time = self._next_arrival.get(node.node_id, 0.0)
        while next_time <= now:
            self._queues[node.node_id].append(_Packet(node.node_id, next_time))
            next_time += node.period_s
        self._next_arrival[node.node_id] = next_time

    # ------------------------------------------------------------------
    # Downlink command ingestion (the network server's ADR loop)
    # ------------------------------------------------------------------
    def node_sf(self, node_id: int) -> int:
        """The spreading factor ``node_id`` currently transmits at.

        Downlink overrides (:meth:`apply_downlink`) win over the node's
        configured ``spreading_factor``, which wins over the shared
        network params.
        """
        override = self._sf_override.get(node_id)
        if override is not None:
            return override
        configured = self.nodes[node_id].spreading_factor
        if configured is not None:
            return configured
        return self.params.spreading_factor

    def apply_downlink(self, node_id: int, spreading_factor: int) -> None:
        """Program ``node_id`` to a new data rate (LinkADRReq emulation).

        Takes effect from the node's next transmission: its decode floor
        moves along the SF sensitivity ladder via
        :attr:`Transmission.spreading_factor`.
        """
        if node_id not in self.nodes:
            raise ValueError(f"unknown node_id {node_id}")
        if not 7 <= spreading_factor <= 12:
            raise ValueError(
                f"spreading_factor must be 7..12, got {spreading_factor}"
            )
        self._sf_override[node_id] = spreading_factor

    # ------------------------------------------------------------------
    def _resolve_by_channel(self, transmissions: list[Transmission]) -> set[int]:
        """Resolve a slot's transmissions channel by channel.

        Nodes on different uplink channels of the plan occupy disjoint
        spectrum, so only same-channel transmissions contend; the PHY
        outcome model runs once per occupied channel (ascending order for
        a deterministic RNG draw sequence).  A single-channel population
        reduces to exactly one ``resolve`` call, preserving the historical
        behaviour draw for draw.
        """
        by_channel: dict[int, list[Transmission]] = {}
        for tx in transmissions:
            by_channel.setdefault(tx.channel, []).append(tx)
        decoded: set[int] = set()
        for channel in sorted(by_channel):
            decoded |= self.phy.resolve(by_channel[channel], rng=self._rng)
        return decoded

    # ------------------------------------------------------------------
    def run(
        self,
        duration_s: float,
        on_slot: Callable[[SlotResult], None] | None = None,
    ) -> MacMetrics:
        """Simulate ``duration_s`` of network time and return the metrics.

        ``on_slot`` (when given) observes every slot that carried at
        least one transmission, *after* the PHY resolved it and the MAC
        was told -- the hook the network server's closed loop hangs off:
        it may call :meth:`apply_downlink` from inside the callback and
        the new assignment applies from the next slot on.
        """
        metrics = MacMetrics()
        n_slots = max(int(duration_s / self.slot_s), 1)
        for slot in range(n_slots):
            now = slot * self.slot_s
            for node in self.nodes.values():
                self._generate_arrivals(node, now)
            backlogged = [nid for nid, q in self._queues.items() if q]
            if not backlogged:
                continue
            attempted = self.mac.select_transmitters(slot, backlogged, self._rng)
            if not attempted:
                self.mac.on_result(slot, [], set())
                continue
            transmissions = []
            for nid in attempted:
                packet = self._queues[nid][0]
                packet.attempts += 1
                metrics.total_transmissions += 1
                transmissions.append(
                    Transmission(
                        node_id=nid,
                        snr_db=self.nodes[nid].snr_db,
                        n_payload_bits=self.nodes[nid].payload_bits,
                        channel=self.nodes[nid].channel,
                        spreading_factor=self.node_sf(nid),
                    )
                )
            decoded = self._resolve_by_channel(transmissions)
            delivery_time = now + self.slot_s
            delivered: list[int] = []
            for nid in attempted:
                if nid not in decoded:
                    continue
                packet = self._queues[nid].popleft()
                metrics.delivered_packets += 1
                metrics.delivered_bits += self.nodes[nid].payload_bits
                metrics.latencies_s.append(delivery_time - packet.created_s)
                metrics.per_node_delivered[nid] = (
                    metrics.per_node_delivered.get(nid, 0) + 1
                )
                delivered.append(nid)
            self.mac.on_result(slot, list(attempted), decoded)
            if on_slot is not None:
                on_slot(
                    SlotResult(
                        slot=slot,
                        now_s=now,
                        delivery_s=delivery_time,
                        transmissions=tuple(transmissions),
                        decoded=frozenset(decoded),
                        delivered=tuple(delivered),
                    )
                )
        metrics.duration_s = n_slots * self.slot_s
        return metrics
