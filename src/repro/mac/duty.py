"""Regulatory duty-cycle accounting.

The 900 MHz US ISM band the paper deploys in imposes per-channel dwell
limits, and the EU 868 band imposes 1 % duty cycles -- either way, a
client's airtime is a regulated budget and retransmissions burn it.  This
tracker answers "may this node transmit now?" over a sliding window, which
the MAC simulations use to show that Choir's fewer retransmissions also
translate into staying inside the regulatory envelope at higher offered
load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class DutyCycleTracker:
    """Sliding-window duty-cycle enforcement for one transmitter.

    Parameters
    ----------
    duty_cycle:
        Allowed fraction of air time (EU: 0.01 for most sub-bands).
    window_s:
        Averaging window (regulations typically use 1 hour).
    """

    duty_cycle: float = 0.01
    window_s: float = 3600.0
    _history: deque = field(default_factory=deque, repr=False)  # (start, duration)
    _airtime_in_window: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(f"duty_cycle must be in (0, 1], got {self.duty_cycle}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")

    def _expire(self, now: float) -> None:
        while self._history and self._history[0][0] < now - self.window_s:
            _, duration = self._history.popleft()
            self._airtime_in_window -= duration

    def airtime_used_s(self, now: float) -> float:
        """Airtime spent within the trailing window."""
        self._expire(now)
        return max(self._airtime_in_window, 0.0)

    def budget_remaining_s(self, now: float) -> float:
        """Airtime still allowed within the trailing window."""
        return max(self.duty_cycle * self.window_s - self.airtime_used_s(now), 0.0)

    def can_transmit(self, now: float, duration_s: float) -> bool:
        """Whether a ``duration_s`` transmission at ``now`` is permitted."""
        return duration_s <= self.budget_remaining_s(now)

    def record_transmission(self, now: float, duration_s: float) -> None:
        """Account one transmission (call after actually transmitting)."""
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        self._expire(now)
        self._history.append((now, duration_s))
        self._airtime_in_window += duration_s

    def max_packet_rate_hz(self, airtime_s: float) -> float:
        """Long-run sustainable packets/second for a given packet airtime."""
        if airtime_s <= 0:
            raise ValueError(f"airtime must be positive, got {airtime_s}")
        return self.duty_cycle / airtime_s
