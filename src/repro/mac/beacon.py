"""Beacon-driven team scheduling (paper Sec. 7.1).

The base station periodically broadcasts a beacon soliciting responses
from a chosen *group* of sensors in the next slot.  Choosing whom to
coordinate is the scheduler's job: nearby sensors can afford to transmit
alone (full resolution), while far sensors must be pooled into teams large
enough that their summed SNR clears the decode floor -- "a system whose
resolution of measured sensor data increases for sensors that are
geographically closer to the base station".

:class:`BeaconScheduler` implements exactly that policy: it sorts nodes by
estimated SNR, keeps every node that clears the floor alone as a singleton
group, and greedily packs the rest (strongest-first) into minimal teams
whose pooled SNR clears the floor with a configurable margin.  Nodes that
cannot clear the floor even with everyone pooled are reported as
unreachable.  :class:`BeaconRoundSimulator` plays the schedule against a
PHY model and accounts per-group outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mac.phy import DEFAULT_DECODE_SNR_DB, PhyModel, Transmission
from repro.phy.params import LoRaParams
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class ScheduledGroup:
    """One beacon round's transmitter set."""

    node_ids: tuple[int, ...]
    pooled_snr_db: float
    is_team: bool

    @property
    def size(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class BeaconSchedule:
    """The scheduler's output: groups in transmission order."""

    groups: tuple[ScheduledGroup, ...]
    unreachable: tuple[int, ...]

    @property
    def n_rounds(self) -> int:
        return len(self.groups)

    def group_of(self, node_id: int) -> ScheduledGroup | None:
        """The group containing ``node_id``, or None if unscheduled."""
        for group in self.groups:
            if node_id in group.node_ids:
                return group
        return None


def pooled_snr_db(snrs_db: list[float] | np.ndarray) -> float:
    """Sum of linear SNRs, in dB (the team decoding gain of Sec. 7.2)."""
    snrs_db = np.asarray(snrs_db, dtype=float)
    if snrs_db.size == 0:
        return float("-inf")
    return float(10.0 * np.log10(np.sum(10.0 ** (snrs_db / 10.0))))


class BeaconScheduler:
    """SNR-driven grouping of sensors into beacon rounds.

    Parameters
    ----------
    params:
        PHY configuration; sets the decode floor via the spreading factor.
    margin_db:
        Headroom above the floor each group must have (fading insurance).
    max_team_size:
        Cap on one team (the paper evaluates up to 30).
    decode_snr_db:
        Override the floor (defaults to the SF's demodulation floor).
    """

    def __init__(
        self,
        params: LoRaParams,
        margin_db: float = 3.0,
        max_team_size: int = 30,
        decode_snr_db: float | None = None,
    ) -> None:
        if max_team_size < 1:
            raise ValueError(f"max_team_size must be >= 1, got {max_team_size}")
        self.params = params
        self.margin_db = margin_db
        self.max_team_size = max_team_size
        self.floor_db = (
            decode_snr_db
            if decode_snr_db is not None
            else DEFAULT_DECODE_SNR_DB.get(params.spreading_factor, -15.0)
        )

    # ------------------------------------------------------------------
    def build_schedule(self, node_snrs_db: dict[int, float]) -> BeaconSchedule:
        """Partition nodes into singleton groups and pooled teams."""
        threshold = self.floor_db + self.margin_db
        singles = sorted(
            (nid for nid, snr in node_snrs_db.items() if snr >= threshold),
            key=lambda nid: -node_snrs_db[nid],
        )
        groups: list[ScheduledGroup] = [
            ScheduledGroup(
                node_ids=(nid,),
                pooled_snr_db=node_snrs_db[nid],
                is_team=False,
            )
            for nid in singles
        ]
        # Far nodes: greedy strongest-first packing into minimal teams.
        far = sorted(
            (nid for nid, snr in node_snrs_db.items() if snr < threshold),
            key=lambda nid: -node_snrs_db[nid],
        )
        unreachable: list[int] = []
        current: list[int] = []
        for index, nid in enumerate(far):
            current.append(nid)
            pooled = pooled_snr_db([node_snrs_db[n] for n in current])
            if pooled >= threshold:
                groups.append(
                    ScheduledGroup(
                        node_ids=tuple(current), pooled_snr_db=pooled, is_team=True
                    )
                )
                current = []
            elif len(current) >= self.max_team_size:
                # The strongest `max_team_size` remaining nodes cannot pool
                # to the floor; every node after them is weaker still, so
                # no further team can either -- everything left is
                # unreachable (continuing would only let ultra-far nodes
                # leapfrog mid-range ones via the tail merge).
                unreachable.extend(current)
                unreachable.extend(far[index + 1 :])
                current = []
                break
        if current:
            pooled = pooled_snr_db([node_snrs_db[n] for n in current])
            if pooled >= threshold:
                groups.append(
                    ScheduledGroup(
                        node_ids=tuple(current), pooled_snr_db=pooled, is_team=True
                    )
                )
            else:
                # Leftover tail that cannot form its own team: fold it into
                # the last team if capacity allows (serving a node in an
                # oversized team beats not serving it at all).
                last_team_idx = next(
                    (i for i in range(len(groups) - 1, -1, -1) if groups[i].is_team),
                    None,
                )
                if (
                    last_team_idx is not None
                    and groups[last_team_idx].size + len(current) <= self.max_team_size
                ):
                    merged_ids = groups[last_team_idx].node_ids + tuple(current)
                    groups[last_team_idx] = ScheduledGroup(
                        node_ids=merged_ids,
                        pooled_snr_db=pooled_snr_db(
                            [node_snrs_db[n] for n in merged_ids]
                        ),
                        is_team=True,
                    )
                else:
                    unreachable.extend(current)
        return BeaconSchedule(groups=tuple(groups), unreachable=tuple(unreachable))


@dataclass
class BeaconRoundMetrics:
    """Outcome accounting over beacon rounds."""

    rounds: int = 0
    singleton_deliveries: int = 0
    team_deliveries: int = 0
    nodes_served: set[int] = field(default_factory=set)

    @property
    def total_deliveries(self) -> int:
        return self.singleton_deliveries + self.team_deliveries


class BeaconRoundSimulator:
    """Play a beacon schedule against a PHY outcome model.

    Each group gets one round (one beacon + one response slot); singleton
    groups go through the PHY model as ordinary transmissions, teams are
    delivered when their pooled SNR clears the floor (the Sec. 7.2 joint
    decoder's operating condition).
    """

    def __init__(self, params: LoRaParams, phy: PhyModel, scheduler: BeaconScheduler) -> None:
        self.params = params
        self.phy = phy
        self.scheduler = scheduler

    def run(
        self, node_snrs_db: dict[int, float], n_cycles: int = 1, rng: RngLike = None
    ) -> BeaconRoundMetrics:
        """Run ``n_cycles`` passes over the full schedule."""
        rng = ensure_rng(rng)
        schedule = self.scheduler.build_schedule(node_snrs_db)
        metrics = BeaconRoundMetrics()
        for _ in range(n_cycles):
            for group in schedule.groups:
                metrics.rounds += 1
                if group.is_team:
                    if group.pooled_snr_db >= self.scheduler.floor_db:
                        metrics.team_deliveries += 1
                        metrics.nodes_served.update(group.node_ids)
                else:
                    transmissions = [
                        Transmission(node_id=nid, snr_db=node_snrs_db[nid])
                        for nid in group.node_ids
                    ]
                    decoded = self.phy.resolve(transmissions, rng=rng)
                    metrics.singleton_deliveries += len(decoded)
                    metrics.nodes_served.update(decoded)
        return metrics
