"""A minimal discrete-event scheduler (heap-based).

The MAC simulations are slot-synchronous, but packet arrivals and latency
accounting live on a continuous clock; this scheduler provides both: events
are (time, sequence, callback) triples executed in time order, and the
simulation advances by draining the heap up to a horizon.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventScheduler:
    """Time-ordered event execution with a stable tie-break."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        heapq.heappush(self._heap, (time, self._counter, callback))
        self._counter += 1

    def run_until(self, horizon: float) -> None:
        """Execute events in order until the heap is empty or past horizon."""
        while self._heap and self._heap[0][0] <= horizon:
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            callback()
        self._now = max(self._now, horizon)

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)
