"""A PHY that resolves MAC slots by running the *real* waveform decoder.

:class:`repro.mac.phy.ChoirPhyModel` makes long network sweeps tractable;
this class is its ground truth.  Each node gets a persistent
:class:`repro.hardware.LoRaRadio` (so its crystal offset is stable across
retransmissions, like a real board), every slot's collision is synthesized
at the waveform level, and the full :class:`repro.core.ChoirDecoder` runs
on it.  A node's packet is delivered when a decoded user matches its
offset signature and the symbol stream survives the FEC tolerance.

Use it directly in :class:`repro.mac.NetworkSimulator` for small scenarios
or through :func:`repro.experiments.calibration.run_phy_calibration` to
check the fast model's statistics against it.
"""

from __future__ import annotations

import numpy as np

from repro.channel.collider import CollisionChannel
from repro.core.decoder import ChoirDecoder
from repro.hardware.radio import LoRaRadio
from repro.mac.phy import PhyModel, Transmission
from repro.metrics.accuracy import packet_delivery
from repro.phy.params import LoRaParams
from repro.utils import RngLike, circular_distance, db_to_linear, ensure_rng


class WaveformPhy(PhyModel):
    """Slot resolution by actual collision synthesis + Choir decoding.

    Parameters
    ----------
    params:
        Shared PHY configuration.
    fec_tolerance:
        Fraction of symbol errors the coding chain absorbs before the
        packet CRC fails (matches :func:`repro.metrics.packet_delivery`).
    rng:
        Seeds both the per-node radio draws and the channel noise.
    """

    def __init__(
        self,
        params: LoRaParams,
        fec_tolerance: float = 0.06,
        rng: RngLike = None,
    ) -> None:
        self.params = params
        self.fec_tolerance = fec_tolerance
        self._rng = ensure_rng(rng)
        self._radios: dict[int, LoRaRadio] = {}
        self._channel = CollisionChannel(params, noise_power=1.0)
        self._decoder = ChoirDecoder(params, rng=self._rng)

    def _radio_for(self, node_id: int) -> LoRaRadio:
        if node_id not in self._radios:
            self._radios[node_id] = LoRaRadio(
                self.params, node_id=node_id, rng=self._rng
            )
        return self._radios[node_id]

    def resolve(self, transmissions: list[Transmission], rng: RngLike = None) -> set[int]:
        """Synthesize the slot's collision and decode it (see PhyModel)."""
        rng = ensure_rng(rng if rng is not None else self._rng)
        if not transmissions:
            return set()
        n_bins = self.params.chips_per_symbol
        n_symbols = max(
            max(t.n_payload_bits for t in transmissions)
            // self.params.spreading_factor,
            1,
        )
        entries = []
        for t in transmissions:
            radio = self._radio_for(t.node_id)
            symbols = rng.integers(0, n_bins, n_symbols)
            amplitude = float(np.sqrt(db_to_linear(t.snr_db)))
            entries.append((radio, symbols, amplitude + 0j))
        packet = self._channel.receive(entries, rng=rng)
        decoded_users = self._decoder.decode(packet.samples, n_symbols)
        delivered: set[int] = set()
        for user, (radio, symbols, _) in zip(packet.users, entries):
            truth_mu = user.true_offset_bins(self.params) % n_bins
            for du in decoded_users:
                if (
                    circular_distance(du.offset_bins, truth_mu, period=n_bins)
                    < 0.5
                    and packet_delivery(du.symbols, symbols, self.fec_tolerance)
                ):
                    delivered.add(radio.node_id)
                    break
        return delivered
