"""Adaptive data rate (the paper's Sec. 3 "Rate Adaptation").

"LoRaWAN base stations program each client to operate on a suitable data
rate based on its received signal-quality."  This module implements that
control loop: an SNR ladder with provisioned link margin, hysteresis so a
client does not flap between spreading factors on fading wiggles, and an
EWMA of the per-packet SNR reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.params import LoRaParams

#: Default urban fading margin used by the hysteresis controller.
DEFAULT_ASSIGNMENT_MARGIN_DB = 16.0

#: SNR (dB) required to *assign* each spreading factor.  The spacing is
#: wider than the raw decode-floor ladder (whose steps are only ~2.5 dB):
#: assigning a faster rate shrinks the fade margin AND doubles the symbol
#: rate the FEC must protect, so deployments grade the requirement ~6 dB
#: per step (this is also what puts the paper's low/medium/high SNR
#: regimes on distinct data rates in Fig. 8(a)).
ASSIGNMENT_SNR_DB = {7: 16.0, 8: 8.0, 9: 2.0, 10: -2.0, 11: -6.0}


def spreading_factor_for_snr(snr_db: float, margin_db: float | None = None) -> int:
    """Fastest spreading factor the SNR supports under the graded ladder.

    ``margin_db`` shifts every requirement by the same amount (``None``
    keeps the calibrated defaults).
    """
    shift = 0.0 if margin_db is None else margin_db - DEFAULT_ASSIGNMENT_MARGIN_DB
    for sf in range(7, 12):
        if snr_db >= ASSIGNMENT_SNR_DB[sf] + shift:
            return sf
    return 12


@dataclass
class AdrController:
    """Per-client ADR state machine with EWMA smoothing and hysteresis.

    Parameters
    ----------
    margin_db:
        Link margin provisioned on top of each SF's decode floor.
    hysteresis_db:
        Extra headroom required before *upgrading* to a faster SF (moving
        down a SF happens as soon as the smoothed SNR drops below the
        current assignment's requirement -- losing packets is worse than
        wasting airtime).
    smoothing:
        EWMA coefficient for per-packet SNR reports (0 = frozen, 1 = last
        report only).
    """

    margin_db: float = DEFAULT_ASSIGNMENT_MARGIN_DB
    hysteresis_db: float = 3.0
    smoothing: float = 0.25
    initial_sf: int = 12
    _snr_ewma_db: float | None = field(default=None, repr=False)
    _current_sf: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 7 <= self.initial_sf <= 12:
            raise ValueError(f"initial_sf must be 7..12, got {self.initial_sf}")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {self.smoothing}")
        self._current_sf = self.initial_sf

    @property
    def spreading_factor(self) -> int:
        """The currently assigned spreading factor."""
        return self._current_sf

    @property
    def smoothed_snr_db(self) -> float | None:
        return self._snr_ewma_db

    def report_snr(self, snr_db: float) -> int:
        """Feed one packet's measured SNR; returns the (new) assignment."""
        if self._snr_ewma_db is None:
            self._snr_ewma_db = float(snr_db)
        else:
            self._snr_ewma_db += self.smoothing * (snr_db - self._snr_ewma_db)
        target = spreading_factor_for_snr(self._snr_ewma_db, self.margin_db)
        if target < self._current_sf:
            # Upgrade (faster SF) only with hysteresis headroom.
            with_hysteresis = spreading_factor_for_snr(
                self._snr_ewma_db - self.hysteresis_db, self.margin_db
            )
            if with_hysteresis < self._current_sf:
                self._current_sf = with_hysteresis
        elif target > self._current_sf:
            # Downgrade immediately: reliability first.
            self._current_sf = target
        return self._current_sf

    def params_for(self, base: LoRaParams) -> LoRaParams:
        """The client's PHY parameters under the current assignment."""
        return LoRaParams(
            spreading_factor=self._current_sf,
            bandwidth=base.bandwidth,
            preamble_len=base.preamble_len,
            oversampling=base.oversampling,
            carrier_hz=base.carrier_hz,
        )
