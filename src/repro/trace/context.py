"""Ambient trace context: how deep pipeline stages reach the span tree.

The decode pipeline is many layers deep (worker -> align -> decoder ->
phased SIC -> residual engine); threading a trace handle through every
signature would couple the core DSP modules to the gateway.  Instead the
worker installs its job's :class:`repro.trace.model.TraceBuilder` into a
:class:`contextvars.ContextVar` for the duration of the decode, and any
stage can call :func:`add_event` / :func:`span` without knowing whether
tracing is on.  When no builder is installed every call is a cheap no-op
(a single ContextVar read), which is what keeps the tracing-off hot path
within the <2% overhead budget.

``ContextVar`` (rather than a module global) makes the propagation
correct under every executor: each worker thread sees only its own job's
builder, and the process executor installs the builder inside the worker
process where the spans are built and shipped back with the outcome.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

from repro.trace.model import TraceBuilder

_ACTIVE: ContextVar[Optional[TraceBuilder]] = ContextVar(
    "repro_trace_builder", default=None
)


def current() -> Optional[TraceBuilder]:
    """The builder installed for the running job, or None."""
    return _ACTIVE.get()


def trace_active() -> bool:
    """Whether the calling code runs under an installed trace builder."""
    return _ACTIVE.get() is not None


@contextmanager
def use_builder(builder: Optional[TraceBuilder]) -> Iterator[None]:
    """Install ``builder`` as the ambient trace context for the block.

    Passing ``None`` is allowed and leaves tracing inactive, so callers
    can use one ``with`` statement for both the traced and untraced
    paths.
    """
    token = _ACTIVE.set(builder)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def add_event(name: str, **attrs: Any) -> None:
    """Record an event on the active span; no-op when tracing is off."""
    builder = _ACTIVE.get()
    if builder is not None:
        builder.event(name, **attrs)


def annotate(**attrs: Any) -> None:
    """Merge attributes into the active span; no-op when tracing is off."""
    builder = _ACTIVE.get()
    if builder is not None:
        builder.annotate(**attrs)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Open a child span on the active builder; no-op when tracing is off."""
    builder = _ACTIVE.get()
    if builder is None:
        yield
        return
    with builder.span(name, **attrs):
        yield
