"""Packet forensics: per-packet post-mortems from a decode trace.

Answers "why did packet X die, at which stage, with what evidence" for
every transmitted packet of a traced gateway run.  The input is the
serialized trace (:func:`repro.trace.export.load_trace`); the output is
one :class:`PostMortem` per ground-truth packet plus an aggregate
failure-class histogram.

Drop-reason taxonomy (ordered by pipeline stage)::

    not-detected                 no detection near the packet's start
    dispatch-dropped             detected, but backpressure shed the job
    decode-error                 the decode worker raised
    sic-tier-k-residual-floor    phased SIC gave up after k tiers with
                                 no user above the residual noise floor
    misaligned                   users found, but the window never
                                 snapped to the preamble grid
    cluster-ambiguous            users found, but fractional signatures
                                 (near-)collided or the decoder hit tone
                                 conflicts -- symbols went to the wrong
                                 transmitter
    crc-fail                     everything upstream looked healthy; the
                                 symbol stream still failed the CRC

Every non-recovered ground-truth packet is assigned exactly one reason;
``unknown`` exists only as a guard value and is structurally unreachable
when the trace carries outcome rows (the classifier always falls
through to ``crc-fail``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.export import load_packets, load_trace
from repro.trace.model import PacketTrace
from repro.utils import circular_distance

NOT_DETECTED = "not-detected"
DISPATCH_DROPPED = "dispatch-dropped"
DECODE_ERROR = "decode-error"
MISALIGNED = "misaligned"
CLUSTER_AMBIGUOUS = "cluster-ambiguous"
CRC_FAIL = "crc-fail"
UNKNOWN = "unknown"


def sic_tier_reason(tier: int) -> str:
    """The residual-floor reason for a SIC search that ran ``tier`` tiers."""
    return f"sic-tier-{tier}-residual-floor"


def tier0_reason(escalation_reason: str) -> str:
    """The drop reason for a fast-path decode with no escalation target.

    Only the never-escalate ``fast`` decode tier produces these: under
    ``cascade`` every declined window re-runs on the full pipeline and is
    classified by the ordinary taxonomy (with ``escalation_reason``
    attached as context rather than as the verdict).
    """
    return f"tier0-{escalation_reason}"


#: Alignment-span score below which a failed decode is called misaligned:
#: the ridge statistic (max/median of the accumulated span) sits in the
#: noise plateau, so the grid search never locked onto a preamble.
MISALIGNED_SCORE = 6.0

#: Fractional-signature distance (in bins, circular mod 1) below which
#: two decoded users are considered ambiguous -- the same threshold the
#: decoder's junk-absorption stage uses to recognize a user's own tone.
AMBIGUOUS_FRACTION = 0.12


@dataclass
class PostMortem:
    """The verdict on one ground-truth packet (or untracked outcome)."""

    index: int
    node_id: Optional[int]
    channel: int
    spreading_factor: Optional[int]
    start_sample: int
    payload: Optional[str]
    recovered: bool
    reason: Optional[str]
    stage_reached: str
    job_id: Optional[int]
    detail: str = ""
    tier: Optional[str] = None
    escalation_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what ``repro forensics --json`` emits)."""
        return {
            "index": self.index,
            "node_id": self.node_id,
            "channel": self.channel,
            "spreading_factor": self.spreading_factor,
            "start_sample": self.start_sample,
            "payload": self.payload,
            "recovered": self.recovered,
            "reason": self.reason,
            "stage_reached": self.stage_reached,
            "job_id": self.job_id,
            "detail": self.detail,
            "tier": self.tier,
            "escalation_reason": self.escalation_reason,
        }


@dataclass
class ForensicsReport:
    """Every packet's verdict plus the aggregate failure histogram."""

    packets: List[PostMortem]
    n_outcomes: int = 0
    n_traced: int = 0
    histogram: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.histogram:
            for packet in self.packets:
                if packet.reason is not None:
                    self.histogram[packet.reason] = (
                        self.histogram.get(packet.reason, 0) + 1
                    )

    @property
    def n_recovered(self) -> int:
        """Packets whose payload was CRC-verified somewhere in the run."""
        return sum(1 for p in self.packets if p.recovered)

    def summary(self) -> str:
        """Human-readable post-mortem table (what ``repro forensics`` prints)."""
        lines = [
            f"packet forensics: {len(self.packets)} packets,"
            f" {self.n_recovered} recovered,"
            f" {len(self.packets) - self.n_recovered} lost"
            f" ({self.n_outcomes} decode outcomes, {self.n_traced} traced)"
        ]
        for packet in self.packets:
            shard = f"ch{packet.channel}" + (
                f".sf{packet.spreading_factor}"
                if packet.spreading_factor is not None
                else ""
            )
            who = f"node {packet.node_id}" if packet.node_id is not None else "?"
            head = (
                f"  #{packet.index:<3d} {who:<8s} {shard:<9s}"
                f" start={packet.start_sample:<8d}"
                f" payload={packet.payload or '?':<10s}"
            )
            if packet.recovered:
                tier = f" [{packet.tier}]" if packet.tier else ""
                lines.append(f"{head} RECOVERED (job {packet.job_id}){tier}")
            else:
                job = f" job {packet.job_id}" if packet.job_id is not None else ""
                detail = f": {packet.detail}" if packet.detail else ""
                tier = f" [{packet.tier}]" if packet.tier else ""
                escalated = (
                    f" (escalated: {packet.escalation_reason})"
                    if packet.escalation_reason
                    else ""
                )
                lines.append(
                    f"{head} LOST at {packet.stage_reached}"
                    f" -- {packet.reason}{job}{detail}{tier}{escalated}"
                )
        if self.histogram:
            lines.append("drop-reason histogram")
            width = max(len(reason) for reason in self.histogram)
            for reason in sorted(self.histogram):
                lines.append(
                    f"  {reason.ljust(width)}  {self.histogram[reason]}"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "packets": [p.to_dict() for p in self.packets],
            "recovered": self.n_recovered,
            "outcomes": self.n_outcomes,
            "traced": self.n_traced,
            "histogram": dict(self.histogram),
        }


def _align_score(trace: Optional[PacketTrace]) -> Optional[float]:
    """The grid-alignment ridge score recorded in a job's trace."""
    if trace is None:
        return None
    for span in trace.root.walk():
        if span.name == "align" and "score" in span.attrs:
            return float(span.attrs["score"])
    return None


def _sic_tiers(trace: Optional[PacketTrace]) -> Tuple[int, Optional[float]]:
    """SIC tiers attempted and the final residual power, from trace events."""
    if trace is None:
        return 1, None
    events = trace.root.find_events("sic.tier")
    if not events:
        return 1, None
    tiers = max(int(event.attrs.get("tier", 0)) + 1 for event in events)
    residual = events[-1].attrs.get("residual_power")
    return tiers, None if residual is None else float(residual)


def _has_conflicts(trace: Optional[PacketTrace]) -> bool:
    """Whether the decoder's tone-conflict resolver fired for this job."""
    return trace is not None and bool(trace.root.find_events("decode.conflict"))


def _ambiguous_fractionals(users: Sequence[Dict[str, Any]]) -> bool:
    """Whether two decoded users' fractional signatures nearly collide."""
    fractions = [float(u["offset_bins"]) % 1.0 for u in users]
    return any(
        circular_distance(fractions[i], fractions[j]) < AMBIGUOUS_FRACTION
        for i in range(len(fractions))
        for j in range(i + 1, len(fractions))
    )


def classify_outcome(
    outcome: Dict[str, Any], trace: Optional[PacketTrace]
) -> Tuple[str, str, str]:
    """Classify one failed decode outcome into ``(reason, stage, detail)``.

    The checks run in pipeline order and always terminate in ``crc-fail``,
    so every outcome-bearing packet gets a reason from the taxonomy.
    """
    error = outcome.get("error")
    if error:
        return DECODE_ERROR, "decode", str(error)
    if outcome.get("tier") == "tier0" and outcome.get("escalation_reason"):
        # The never-escalate fast tier declined or misdecoded the window;
        # the fast path itself is the terminal stage.
        return (
            tier0_reason(str(outcome["escalation_reason"])),
            "tier0",
            "fast path declined, no escalation target",
        )
    if int(outcome.get("n_users", 0)) == 0:
        tiers, residual = _sic_tiers(trace)
        detail = (
            f"residual power {residual:.3g}" if residual is not None else ""
        )
        return sic_tier_reason(tiers), "sic", detail
    score = _align_score(trace)
    if score is not None and score < MISALIGNED_SCORE:
        return MISALIGNED, "align", f"align score {score:.2f}"
    users = outcome.get("users", [])
    if _has_conflicts(trace) or _ambiguous_fractionals(users):
        fractions = ", ".join(
            f"{float(u['offset_bins']) % 1.0:.3f}" for u in users
        )
        return CLUSTER_AMBIGUOUS, "cluster", f"fractionals {fractions}"
    n_users = int(outcome.get("n_users", 0))
    return CRC_FAIL, "crc", f"{n_users} user(s), none matched this payload"


def _sf_matches(a: Optional[int], b: Optional[int]) -> bool:
    return a is None or b is None or int(a) == int(b)


def analyze(data: Dict[str, Any]) -> ForensicsReport:
    """Build the full forensics report from loaded trace data.

    With ground truth (synthetic runs) the report is per transmitted
    packet; without it (replay runs), per decode outcome -- the
    detection-stage reasons then cannot apply, but the decode-stage
    taxonomy still does.
    """
    outcomes = list(data.get("outcomes", []))
    detections = list(data.get("detections", []))
    truth = list(data.get("truth", []))
    traces = {tuple(p.key): p for p in load_packets(data)}
    outcomes_by_key = {tuple(o["key"]): o for o in outcomes}

    # CRC-verified payload pool: every verified user payload in the run,
    # as (payload, outcome) pairs consumed one per matching truth packet.
    payload_pool: Dict[str, List[Dict[str, Any]]] = {}
    for outcome in outcomes:
        user_payloads = [
            u["payload"]
            for u in outcome.get("users", [])
            if u.get("crc_ok") and u.get("payload")
        ]
        if not user_payloads and outcome.get("crc_ok") and outcome.get("payload"):
            user_payloads = [outcome["payload"]]
        for payload in user_payloads:
            payload_pool.setdefault(payload, []).append(outcome)

    packets: List[PostMortem] = []
    if truth:
        for index, row in enumerate(truth):
            payload = row.get("payload")
            start = int(row.get("start_sample", 0))
            channel = int(row.get("channel", 0))
            sf = row.get("spreading_factor")
            frame = int(row.get("frame_samples", 0)) or None
            claimants = payload_pool.get(payload or "", [])
            if claimants:
                winner = claimants.pop(0)
                packets.append(
                    PostMortem(
                        index=index,
                        node_id=row.get("node_id"),
                        channel=channel,
                        spreading_factor=sf,
                        start_sample=start,
                        payload=payload,
                        recovered=True,
                        reason=None,
                        stage_reached="recovered",
                        job_id=winner.get("job_id"),
                        tier=winner.get("tier"),
                        escalation_reason=winner.get("escalation_reason"),
                    )
                )
                continue
            # Not recovered: walk the pipeline stages front to back.
            tolerance = frame if frame is not None else 1 << 30
            nearby = [
                d
                for d in detections
                if int(d.get("channel", 0)) == channel
                and _sf_matches(d.get("spreading_factor"), sf)
                and abs(int(d.get("start_sample", 0)) - start) <= tolerance
            ]
            if not nearby:
                packets.append(
                    PostMortem(
                        index=index,
                        node_id=row.get("node_id"),
                        channel=channel,
                        spreading_factor=sf,
                        start_sample=start,
                        payload=payload,
                        recovered=False,
                        reason=NOT_DETECTED,
                        stage_reached="detect",
                        job_id=None,
                        detail="no detection within one frame of the start",
                    )
                )
                continue
            detection = min(
                nearby, key=lambda d: abs(int(d["start_sample"]) - start)
            )
            key = tuple(detection["key"])
            outcome = outcomes_by_key.get(key)
            if outcome is None:
                packets.append(
                    PostMortem(
                        index=index,
                        node_id=row.get("node_id"),
                        channel=channel,
                        spreading_factor=sf,
                        start_sample=start,
                        payload=payload,
                        recovered=False,
                        reason=DISPATCH_DROPPED,
                        stage_reached="dispatch",
                        job_id=detection.get("job_id"),
                        detail="job shed by the queue drop policy",
                    )
                )
                continue
            reason, stage, detail = classify_outcome(outcome, traces.get(key))
            packets.append(
                PostMortem(
                    index=index,
                    node_id=row.get("node_id"),
                    channel=channel,
                    spreading_factor=sf,
                    start_sample=start,
                    payload=payload,
                    recovered=False,
                    reason=reason,
                    stage_reached=stage,
                    job_id=outcome.get("job_id"),
                    detail=detail,
                    tier=outcome.get("tier"),
                    escalation_reason=outcome.get("escalation_reason"),
                )
            )
    else:
        # No ground truth (replay run): report per decode outcome.
        for index, outcome in enumerate(outcomes):
            key = tuple(outcome["key"])
            if outcome.get("crc_ok"):
                packets.append(
                    PostMortem(
                        index=index,
                        node_id=None,
                        channel=int(outcome.get("channel", 0)),
                        spreading_factor=outcome.get("spreading_factor"),
                        start_sample=int(outcome.get("start_sample", 0)),
                        payload=outcome.get("payload"),
                        recovered=True,
                        reason=None,
                        stage_reached="recovered",
                        job_id=outcome.get("job_id"),
                        tier=outcome.get("tier"),
                        escalation_reason=outcome.get("escalation_reason"),
                    )
                )
                continue
            reason, stage, detail = classify_outcome(outcome, traces.get(key))
            packets.append(
                PostMortem(
                    index=index,
                    node_id=None,
                    channel=int(outcome.get("channel", 0)),
                    spreading_factor=outcome.get("spreading_factor"),
                    start_sample=int(outcome.get("start_sample", 0)),
                    payload=outcome.get("payload"),
                    recovered=False,
                    reason=reason,
                    stage_reached=stage,
                    job_id=outcome.get("job_id"),
                    detail=detail,
                    tier=outcome.get("tier"),
                    escalation_reason=outcome.get("escalation_reason"),
                )
            )
    return ForensicsReport(
        packets=packets, n_outcomes=len(outcomes), n_traced=len(traces)
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro forensics`` entry point: trace in, post-mortem out."""
    parser = argparse.ArgumentParser(
        prog="repro forensics",
        description="Per-packet post-mortem of a traced gateway run.",
    )
    parser.add_argument("trace", help="trace file (.jsonl or Chrome .json)")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    try:
        data = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro forensics: {exc}", file=sys.stderr)
        return 2
    report = analyze(data)
    try:
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
