"""Span-tree data model for decode provenance traces.

A *packet trace* is the full story of one detection->decode job: a tree
of :class:`Span` stages (align, per-offset decode attempts, ...), each
carrying timestamped :class:`SpanEvent` records emitted by the pipeline
stages themselves (per-SIC-tier residual power, conflict resolutions,
CRC verdicts).  The model is deliberately plain-dataclass + dict-of-JSON
so traces pickle cleanly across the process executor and serialize to
both JSONL and Chrome trace-event form without translation layers.

Determinism contract: everything in a trace except wall-clock timestamps
is a pure function of the job's ``rng_key`` and samples.  The
``structure()`` views strip the timestamps, so two runs of the same
stream under different executors can be compared for exact equality.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


def _wall_clock() -> float:
    """Epoch timestamp for trace records.

    Traces use ``time.time()`` rather than ``perf_counter`` because span
    timestamps must be comparable *across processes* (the process
    executor builds spans in workers; ``perf_counter`` epochs differ per
    process, the wall clock does not).
    """
    return time.time()


@dataclass
class SpanEvent:
    """One point-in-time observation inside a span."""

    name: str
    ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def structure(self) -> Dict[str, Any]:
        """Timestamp-free view for determinism comparisons."""
        return {"name": self.name, "attrs": self.attrs}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"name": self.name, "ts": self.ts, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            ts=float(data.get("ts", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass
class Span:
    """One pipeline stage: a named interval with events and child spans."""

    name: str
    start_ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    end_ts: float = 0.0
    events: List[SpanEvent] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0 until the span is closed)."""
        return max(self.end_ts - self.start_ts, 0.0)

    def structure(self) -> Dict[str, Any]:
        """Timestamp-free tree view for determinism comparisons."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "events": [event.structure() for event in self.events],
            "children": [child.structure() for child in self.children],
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the whole subtree."""
        return {
            "name": self.name,
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            start_ts=float(data.get("start_ts", 0.0)),
            end_ts=float(data.get("end_ts", 0.0)),
            attrs=dict(data.get("attrs", {})),
            events=[SpanEvent.from_dict(e) for e in data.get("events", [])],
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_events(self, name: str) -> List[SpanEvent]:
        """All events named ``name`` anywhere in the subtree, in order."""
        return [
            event
            for span in self.walk()
            for event in span.events
            if event.name == name
        ]


@dataclass
class PacketTrace:
    """The complete provenance record of one detection->decode job."""

    key: Tuple[int, ...]
    job_id: int
    channel: int
    spreading_factor: Optional[int]
    start_sample: int
    detection_score: float
    sampled: bool
    root: Span
    label: str = ""

    def structure(self) -> Dict[str, Any]:
        """Timestamp-free view: equal across executors for the same seed."""
        return {
            "key": list(self.key),
            "job_id": self.job_id,
            "channel": self.channel,
            "spreading_factor": self.spreading_factor,
            "start_sample": self.start_sample,
            "root": self.root.structure(),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "key": list(self.key),
            "job_id": self.job_id,
            "channel": self.channel,
            "spreading_factor": self.spreading_factor,
            "start_sample": self.start_sample,
            "detection_score": self.detection_score,
            "sampled": self.sampled,
            "label": self.label,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PacketTrace":
        """Inverse of :meth:`to_dict`."""
        sf = data.get("spreading_factor")
        return cls(
            key=tuple(int(k) for k in data.get("key", ())),
            job_id=int(data["job_id"]),
            channel=int(data.get("channel", 0)),
            spreading_factor=None if sf is None else int(sf),
            start_sample=int(data.get("start_sample", 0)),
            detection_score=float(data.get("detection_score", 0.0)),
            sampled=bool(data.get("sampled", True)),
            label=str(data.get("label", "")),
            root=Span.from_dict(data["root"]),
        )


class TraceBuilder:
    """Incremental span-tree builder for one decode job.

    Not thread-safe by design: one builder belongs to exactly one job,
    and a job runs on exactly one worker.  The builder is installed as
    the ambient trace context (:mod:`repro.trace.context`) for the
    duration of the job, which is how deep pipeline stages
    (:func:`repro.core.sic.phased_sic`, the decoder's conflict loop)
    emit events without threading a handle through every signature.
    """

    def __init__(self, name: str, **attrs: Any) -> None:
        self.root = Span(name=name, start_ts=_wall_clock(), attrs=dict(attrs))
        self._stack: List[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        child = Span(name=name, start_ts=_wall_clock(), attrs=dict(attrs))
        self.current.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.end_ts = _wall_clock()
            self._stack.pop()

    def event(self, name: str, **attrs: Any) -> SpanEvent:
        """Record an event on the innermost open span."""
        event = SpanEvent(name=name, ts=_wall_clock(), attrs=dict(attrs))
        self.current.events.append(event)
        return event

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span."""
        self.current.attrs.update(attrs)

    def finish(self) -> Span:
        """Close every open span (idempotent) and return the root."""
        now = _wall_clock()
        while self._stack:
            span = self._stack.pop()
            if span.end_ts == 0.0:
                span.end_ts = now
        self._stack = []
        return self.root
