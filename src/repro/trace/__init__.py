"""Decode provenance tracing and packet forensics.

This package is the observability layer under the gateway's telemetry
registry: span trees per detection->decode job (:mod:`repro.trace.model`),
ambient context propagation through the DSP stack
(:mod:`repro.trace.context`), deterministic sampling and collection
(:mod:`repro.trace.recorder`), JSONL / Chrome trace-event export
(:mod:`repro.trace.export`), and per-packet drop-reason post-mortems
(:mod:`repro.trace.forensics`).
"""

from repro.trace.context import (
    add_event,
    annotate,
    current,
    span,
    trace_active,
    use_builder,
)
from repro.trace.export import (
    TRACE_FORMAT,
    chrome_trace,
    load_packets,
    load_trace,
    to_jsonl,
    trace_data,
    write_trace,
)
from repro.trace.forensics import ForensicsReport, PostMortem, analyze
from repro.trace.model import PacketTrace, Span, SpanEvent, TraceBuilder
from repro.trace.recorder import (
    TraceConfig,
    TraceDirective,
    TraceRecorder,
    sample_key,
)

__all__ = [
    "TRACE_FORMAT",
    "ForensicsReport",
    "PacketTrace",
    "PostMortem",
    "Span",
    "SpanEvent",
    "TraceBuilder",
    "TraceConfig",
    "TraceDirective",
    "TraceRecorder",
    "add_event",
    "analyze",
    "annotate",
    "chrome_trace",
    "current",
    "load_packets",
    "load_trace",
    "sample_key",
    "span",
    "to_jsonl",
    "trace_active",
    "trace_data",
    "use_builder",
    "write_trace",
]
