"""The gateway-side trace registry: sampling, collection, deterministic merge.

A :class:`TraceRecorder` sits next to the telemetry registry for one
gateway run.  The scanner records every detection, the worker pool
records every decode outcome (with its span tree when the job was
traced), and the run front-end contributes a header plus the synthetic
ground truth when available.  ``repro.trace.export`` serializes the
whole thing; ``repro.trace.forensics`` consumes the serialized form.

Sampling is *deterministic by rng_key*: whether a job is traced depends
only on its key and the configured rate, never on wall clock or worker
identity, so serial / thread / process runs of the same stream sample
the same packets.  ``always_sample_failures`` additionally builds every
job's trace but keeps only the ones whose decode failed -- the mode that
makes the forensics post-mortem complete without paying full-rate trace
retention on healthy traffic.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.model import PacketTrace


@dataclass(frozen=True)
class TraceConfig:
    """Sampling policy for one gateway run.

    ``sample_rate`` is the fraction of jobs whose trace is retained
    regardless of outcome (1.0 = every job, 0.0 = none);
    ``always_sample_failures`` retains the trace of every job that does
    not produce a CRC-verified payload, whatever the rate.
    """

    sample_rate: float = 1.0
    always_sample_failures: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )


@dataclass(frozen=True)
class TraceDirective:
    """Per-job tracing instruction, computed before dispatch.

    Frozen and picklable so the process executor can ship it to workers
    alongside the job.  ``build`` says whether the worker should build a
    span tree at all; ``sampled`` says whether the trace is kept
    unconditionally (vs. only on failure, per ``keep_failures``).
    """

    key: Tuple[int, ...]
    sampled: bool
    keep_failures: bool

    @property
    def build(self) -> bool:
        """Whether the decode worker should build a span tree."""
        return self.sampled or self.keep_failures

    def keep(self, crc_ok: bool) -> bool:
        """Whether a finished job's trace is retained."""
        return self.sampled or (self.keep_failures and not crc_ok)


def sample_key(key: Sequence[int]) -> float:
    """Deterministic uniform-[0,1) hash of an rng_key.

    CRC32 of the decimal key rendering: stable across processes and
    Python versions (unlike ``hash()``), uniform enough for sampling.
    """
    text = ",".join(str(int(k)) for k in key)
    return zlib.crc32(text.encode("utf-8")) / 2.0**32


class TraceRecorder:
    """Thread-safe collection point for one run's provenance records."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.base_ts = time.time()
        self.header: Dict[str, Any] = {}
        self.truth: List[Dict[str, Any]] = []
        self._detections: List[Dict[str, Any]] = []
        self._outcomes: List[Dict[str, Any]] = []
        self._packets: List[PacketTrace] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Run-level context
    # ------------------------------------------------------------------
    def set_header(self, **fields: Any) -> None:
        """Merge run-level metadata (config, executor, seed, ...)."""
        with self._lock:
            self.header.update(fields)

    def set_ground_truth(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Attach synthetic-source ground truth for forensics matching."""
        with self._lock:
            self.truth = [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # Per-job records
    # ------------------------------------------------------------------
    def directive(self, key: Tuple[int, ...]) -> TraceDirective:
        """The tracing instruction for the job keyed by ``key``."""
        sampled = (
            self.config.sample_rate > 0.0
            and sample_key(key) < self.config.sample_rate
        )
        return TraceDirective(
            key=key,
            sampled=sampled,
            keep_failures=self.config.always_sample_failures,
        )

    def record_detection(
        self,
        *,
        job_id: int,
        key: Tuple[int, ...],
        channel: int,
        spreading_factor: Optional[int],
        start_sample: int,
        score: float,
        label: str = "",
    ) -> None:
        """Record one scanner detection (pre-dispatch, pre-decode)."""
        with self._lock:
            self._detections.append(
                {
                    "job_id": job_id,
                    "key": list(key),
                    "channel": channel,
                    "spreading_factor": spreading_factor,
                    "start_sample": start_sample,
                    "score": score,
                    "label": label,
                }
            )

    def record_outcome(
        self,
        *,
        job_id: int,
        key: Tuple[int, ...],
        channel: int,
        spreading_factor: Optional[int],
        start_sample: int,
        detection_score: float,
        crc_ok: bool,
        n_users: int,
        sync_retries: int,
        error: Optional[str],
        payload: Optional[bytes],
        users: Sequence[Tuple[float, str, bool]] = (),
        tier: str = "full",
        escalation_reason: Optional[str] = None,
        trace: Optional[PacketTrace] = None,
    ) -> None:
        """Record one decode outcome; keep its trace per the directive.

        ``users`` rows are ``(offset_bins, payload_hex, crc_ok)``
        triples, one per disentangled user -- the forensics layer uses
        the fractional parts of the offsets to recognize near-collided
        signatures.  ``tier`` / ``escalation_reason`` carry the decode
        cascade's verdict (which pipeline produced the outcome, and why
        Tier 0 declined the window, when it did).
        """
        row: Dict[str, Any] = {
            "job_id": job_id,
            "key": list(key),
            "channel": channel,
            "spreading_factor": spreading_factor,
            "start_sample": start_sample,
            "detection_score": detection_score,
            "crc_ok": crc_ok,
            "n_users": n_users,
            "sync_retries": sync_retries,
            "error": error,
            "tier": tier,
            "escalation_reason": escalation_reason,
            "payload": payload.hex() if payload is not None else None,
            "users": [
                {"offset_bins": off, "payload": hex_payload, "crc_ok": ok}
                for off, hex_payload, ok in users
            ],
        }
        keep = trace is not None and self.directive(key).keep(crc_ok)
        with self._lock:
            self._outcomes.append(row)
            if keep and trace is not None:
                self._packets.append(trace)

    # ------------------------------------------------------------------
    # Deterministic views
    # ------------------------------------------------------------------
    @property
    def detections(self) -> List[Dict[str, Any]]:
        """Detection rows sorted by key (stream order within a shard)."""
        with self._lock:
            return sorted(self._detections, key=lambda d: tuple(d["key"]))

    @property
    def outcomes(self) -> List[Dict[str, Any]]:
        """Outcome rows sorted by key, independent of decode interleaving."""
        with self._lock:
            return sorted(self._outcomes, key=lambda o: tuple(o["key"]))

    @property
    def packets(self) -> List[PacketTrace]:
        """Retained span trees, merged deterministically by rng_key.

        Workers append in completion order (racy across executors); the
        sort by key restores a canonical order, which is what makes the
        serial-vs-thread span-tree equality tests meaningful.
        """
        with self._lock:
            return sorted(self._packets, key=lambda p: p.key)

    def __len__(self) -> int:
        # Workers may be appending concurrently; snapshot under the lock
        # so the count is consistent with the views above.
        with self._lock:
            return len(self._packets)
