"""Trace serialization: JSONL and Chrome/Perfetto trace-event JSON.

Two machine formats, one source of truth:

* **JSONL** (``*.jsonl``) -- one self-describing record per line
  (``kind``: header / truth / detection / outcome / packet), greppable
  and streamable; the canonical forensics input.
* **Chrome trace-event JSON** (``*.json``) -- loadable in
  ``chrome://tracing`` / Perfetto: every traced job's span tree becomes
  complete (``"ph": "X"``) events on a per-shard track, with pipeline
  events as instants.  The full JSONL-equivalent payload rides along
  under the ``reproTrace`` key, so ``repro forensics`` ingests either
  format.

:func:`write_trace` picks the format from the file extension;
:func:`load_trace` auto-detects on read.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.trace.model import PacketTrace, Span
from repro.trace.recorder import TraceRecorder

#: Format tag stamped into every export.
TRACE_FORMAT = "repro-trace/v1"


def trace_data(recorder: TraceRecorder) -> Dict[str, Any]:
    """The JSON-ready dict equivalent of a recorder's full state."""
    return {
        "format": TRACE_FORMAT,
        "base_ts": recorder.base_ts,
        "header": dict(recorder.header),
        "truth": recorder.truth,
        "detections": recorder.detections,
        "outcomes": recorder.outcomes,
        "packets": [packet.to_dict() for packet in recorder.packets],
    }


def to_jsonl(recorder: TraceRecorder) -> str:
    """Render the recorder as one self-describing JSON record per line."""
    data = trace_data(recorder)
    # Header fields are spread first so the reserved row keys (kind,
    # format, base_ts) always win over run-level metadata of that name.
    rows: List[Dict[str, Any]] = [
        {
            **data["header"],
            "kind": "header",
            "format": data["format"],
            "base_ts": data["base_ts"],
        }
    ]
    rows.extend({"kind": "truth", **row} for row in data["truth"])
    rows.extend({"kind": "detection", **row} for row in data["detections"])
    rows.extend({"kind": "outcome", **row} for row in data["outcomes"])
    rows.extend({"kind": "packet", **row} for row in data["packets"])
    return "\n".join(json.dumps(row, sort_keys=True) for row in rows) + "\n"


def _span_events(
    span: Span,
    base_ts: float,
    pid: int,
    tid: int,
    events: List[Dict[str, Any]],
) -> None:
    """Flatten one span subtree into Chrome trace events (ts/dur in us)."""
    ts_us = max(span.start_ts - base_ts, 0.0) * 1e6
    events.append(
        {
            "name": span.name,
            "ph": "X",
            "ts": ts_us,
            "dur": max(span.duration_s, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": span.attrs,
        }
    )
    for event in span.events:
        events.append(
            {
                "name": event.name,
                "ph": "i",
                "s": "t",
                "ts": max(event.ts - base_ts, 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": event.attrs,
            }
        )
    for child in span.children:
        _span_events(child, base_ts, pid, tid, events)


def chrome_trace(
    recorder: TraceRecorder, kernel_profile: Any = None
) -> Dict[str, Any]:
    """Chrome trace-event JSON with per-shard tracks + embedded raw data.

    ``kernel_profile`` (an optional
    :class:`repro.profile.KernelProfiler`) adds the run's aggregate
    kernel flame strip as its own track and embeds the raw profile
    state under the ``reproKernelProfile`` key, so one Perfetto load
    shows per-packet spans and the where-did-the-time-go summary side
    by side.
    """
    data = trace_data(recorder)
    packets = recorder.packets
    # One track (tid) per shard label; unlabeled single-channel traffic
    # shares track 0.  Labels sort deterministically, so track numbering
    # is stable across runs.
    labels = sorted({packet.label for packet in packets})
    tids = {label: index for index, label in enumerate(labels)}
    pid = 1
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro-gateway"},
        }
    ]
    for label in labels:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[label],
                "args": {"name": label if label else "ch0"},
            }
        )
    for packet in packets:
        _span_events(
            packet.root, recorder.base_ts, pid, tids[packet.label], events
        )
    out: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproTrace": data,
    }
    if kernel_profile is not None and len(kernel_profile):
        events.extend(kernel_profile.chrome_events(pid=pid))
        out["reproKernelProfile"] = kernel_profile.state()
    return out


def write_trace(
    recorder: TraceRecorder,
    path: Union[str, Path],
    kernel_profile: Any = None,
) -> None:
    """Write the trace to ``path``; ``.jsonl`` selects JSONL, else Chrome.

    ``kernel_profile`` is merged into the Chrome export (see
    :func:`chrome_trace`); the JSONL format ignores it.
    """
    target = Path(path)
    if target.suffix == ".jsonl":
        target.write_text(to_jsonl(recorder))
    else:
        target.write_text(
            json.dumps(
                chrome_trace(recorder, kernel_profile=kernel_profile),
                sort_keys=True,
            )
        )


def _assemble_jsonl(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reassemble the ``trace_data`` dict from parsed JSONL rows."""
    data: Dict[str, Any] = {
        "format": TRACE_FORMAT,
        "base_ts": 0.0,
        "header": {},
        "truth": [],
        "detections": [],
        "outcomes": [],
        "packets": [],
    }
    for row in rows:
        kind = row.pop("kind", None)
        if kind == "header":
            data["format"] = row.pop("format", TRACE_FORMAT)
            data["base_ts"] = row.pop("base_ts", 0.0)
            data["header"] = row
        elif kind == "truth":
            data["truth"].append(row)
        elif kind == "detection":
            data["detections"].append(row)
        elif kind == "outcome":
            data["outcomes"].append(row)
        elif kind == "packet":
            data["packets"].append(row)
    return data


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load either export format back into the ``trace_data`` dict."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"empty trace file: {path}")
    if stripped.startswith("{") and "\n" not in stripped.strip():
        obj = json.loads(stripped)
    else:
        try:
            rows = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
        except json.JSONDecodeError:
            rows = []
        if rows and all(isinstance(row, dict) for row in rows) and "kind" in rows[0]:
            return _assemble_jsonl(rows)
        obj = json.loads(text)
    if "reproTrace" in obj:
        return dict(obj["reproTrace"])
    if obj.get("format") == TRACE_FORMAT:
        return obj
    raise ValueError(f"not a repro trace file: {path}")


def load_packets(data: Dict[str, Any]) -> List[PacketTrace]:
    """Rehydrate the retained span trees from loaded trace data."""
    return [PacketTrace.from_dict(row) for row in data.get("packets", [])]
