"""Data splicing (Sec. 7.2, "Dealing with Collisions" note).

LoRa's whitening/FEC/interleaving make codes diverge even when raw values
differ by one LSB, which would destroy the MSB overlap teams rely on.  The
paper's fix: splice a reading into chunks of consecutive bits and send
each chunk in its own (small) packet, so packets carrying only shared MSBs
are bit-identical across the team even after coding.
"""

from __future__ import annotations

import numpy as np


def splice_bits(bits: np.ndarray, chunk_sizes: list[int]) -> list[np.ndarray]:
    """Split an MSB-first bit vector into consecutive chunks.

    ``chunk_sizes`` must sum to ``len(bits)``; chunk 0 carries the most
    significant bits (the ones a co-located team shares).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if sum(chunk_sizes) != bits.size:
        raise ValueError(
            f"chunk_sizes sum to {sum(chunk_sizes)} but there are {bits.size} bits"
        )
    if any(size <= 0 for size in chunk_sizes):
        raise ValueError("chunk sizes must be positive")
    chunks = []
    start = 0
    for size in chunk_sizes:
        chunks.append(bits[start : start + size].copy())
        start += size
    return chunks


def merge_chunks(chunks: list[np.ndarray | None], chunk_sizes: list[int]) -> tuple[np.ndarray, int]:
    """Reassemble chunks at the base station.

    ``None`` entries are chunks that never decoded (e.g. non-overlapping
    LSB chunks from a below-range team).  Returns ``(bits, n_known)``
    where ``n_known`` counts leading bits actually recovered; missing
    chunks are midpoint-filled (first missing bit 1, rest 0), matching
    :func:`repro.sensing.correlation.group_value_estimate`.
    """
    if len(chunks) != len(chunk_sizes):
        raise ValueError("chunks and chunk_sizes must align")
    total = sum(chunk_sizes)
    bits = np.zeros(total, dtype=np.uint8)
    n_known = 0
    start = 0
    truncated = False
    for chunk, size in zip(chunks, chunk_sizes):
        if chunk is None or truncated:
            if not truncated:
                bits[start] = 1  # midpoint completion
                truncated = True
            start += size
            continue
        chunk = np.asarray(chunk, dtype=np.uint8)
        if chunk.size != size:
            raise ValueError(f"chunk has {chunk.size} bits, expected {size}")
        bits[start : start + size] = chunk
        n_known = start + size
        start += size
    return bits, n_known
