"""Sensor nodes: position, field sampling, fixed-point quantization.

Stands in for the paper's BME280 boards: each sensor reads the local
temperature/humidity, quantizes to a fixed-point code (MSB-first), and
hands the bits to its LP-WAN radio.  The MSB-first layout is what makes
co-located sensors' codes share prefixes -- the raw material of Sec. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.field import EnvironmentField
from repro.utils import RngLike, ensure_rng

#: Fixed-point ranges for the two sensed quantities.
TEMP_RANGE_C = (-20.0, 60.0)
HUMIDITY_RANGE = (0.0, 100.0)


def quantize_reading(value: float, value_range: tuple[float, float], n_bits: int = 12) -> int:
    """Quantize ``value`` to an ``n_bits`` fixed-point code (clipped)."""
    lo, hi = value_range
    if hi <= lo:
        raise ValueError(f"invalid range: {value_range}")
    levels = (1 << n_bits) - 1
    scaled = (value - lo) / (hi - lo) * levels
    return int(np.clip(np.round(scaled), 0, levels))


def dequantize_reading(code: int, value_range: tuple[float, float], n_bits: int = 12) -> float:
    """Invert :func:`quantize_reading` (to the level center)."""
    lo, hi = value_range
    levels = (1 << n_bits) - 1
    return lo + (hi - lo) * (code / levels)


def code_to_bits(code: int, n_bits: int) -> np.ndarray:
    """MSB-first bit array of a fixed-point code."""
    return np.array([(code >> (n_bits - 1 - i)) & 1 for i in range(n_bits)], dtype=np.uint8)


def bits_to_code(bits: np.ndarray) -> int:
    """Inverse of :func:`code_to_bits`."""
    code = 0
    for b in np.asarray(bits, dtype=int):
        code = (code << 1) | int(b)
    return code


@dataclass
class SensorNode:
    """One environmental sensor at a normalized in-building position.

    Parameters
    ----------
    sensor_id:
        Stable identifier (matches the co-located radio's node id).
    u, v:
        Normalized in-floor position in ``[0, 1]^2``.
    floor:
        Floor index (0-based).
    noise_c:
        Measurement noise standard deviation (BME280 accuracy ~0.5 C).
    """

    sensor_id: int
    u: float
    v: float
    floor: int = 0
    noise_c: float = 0.1
    noise_humidity: float = 0.5

    def read_temperature(self, field: EnvironmentField, rng: RngLike = None) -> float:
        """Sample the local temperature with measurement noise."""
        rng = ensure_rng(rng)
        return field.temperature(self.u, self.v, self.floor) + rng.normal(0.0, self.noise_c)

    def read_humidity(self, field: EnvironmentField, rng: RngLike = None) -> float:
        """Sample the local relative humidity with measurement noise."""
        rng = ensure_rng(rng)
        value = field.humidity(self.u, self.v, self.floor) + rng.normal(
            0.0, self.noise_humidity
        )
        return float(np.clip(value, 0.0, 100.0))

    def temperature_code(
        self, field: EnvironmentField, n_bits: int = 12, rng: RngLike = None
    ) -> int:
        """Quantized temperature reading."""
        return quantize_reading(self.read_temperature(field, rng), TEMP_RANGE_C, n_bits)

    def humidity_code(self, field: EnvironmentField, n_bits: int = 12, rng: RngLike = None) -> int:
        """Quantized humidity reading."""
        return quantize_reading(self.read_humidity(field, rng), HUMIDITY_RANGE, n_bits)

    def center_distance(self) -> float:
        """Normalized distance from the floor center (grouping feature)."""
        return float(np.hypot(self.u - 0.5, self.v - 0.5))
