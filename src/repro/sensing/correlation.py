"""MSB-overlap analysis of correlated sensor readings (Sec. 7).

Co-located sensors read similar values, so their MSB-first fixed-point
codes share a prefix; the length of that shared prefix is exactly the
number of bits a team can transmit *identically* (and therefore
concurrently, with coherent power gain).
"""

from __future__ import annotations

import numpy as np

from repro.sensing.sensors import bits_to_code, code_to_bits


def msb_overlap(codes: list[int] | np.ndarray, n_bits: int = 12) -> int:
    """Length of the MSB prefix shared by every code in the group."""
    codes = [int(c) for c in codes]
    if not codes:
        return 0
    if len(codes) == 1:
        return n_bits
    bit_rows = np.stack([code_to_bits(c, n_bits) for c in codes])
    for i in range(n_bits):
        if not np.all(bit_rows[:, i] == bit_rows[0, i]):
            return i
    return n_bits


def consensus_bits(codes: list[int] | np.ndarray, n_bits: int = 12) -> np.ndarray:
    """Per-position majority bit across a group's codes.

    What a base station would report as the group's coarse reading when
    only the overlapping chunks survive: positions where the group agrees
    carry information, the rest default to the majority (ties to 0).
    """
    codes = [int(c) for c in codes]
    if not codes:
        return np.zeros(n_bits, dtype=np.uint8)
    bit_rows = np.stack([code_to_bits(c, n_bits) for c in codes])
    sums = bit_rows.sum(axis=0)
    return (sums * 2 > len(codes)).astype(np.uint8)


def group_value_estimate(
    codes: list[int] | np.ndarray,
    n_bits: int,
    recovered_prefix: int,
) -> int:
    """Code the base station reconstructs from ``recovered_prefix`` MSBs.

    The recovered MSBs come from the consensus; the unknown LSBs are set to
    the midpoint (``100...``), the minimum-worst-case completion.
    """
    consensus = consensus_bits(codes, n_bits)
    bits = consensus.copy()
    if recovered_prefix < n_bits:
        bits[recovered_prefix:] = 0
        bits[recovered_prefix] = 1  # midpoint completion
    return bits_to_code(bits)
