"""Spatial temperature/humidity field over a building.

Models the physics behind Fig. 11(a)'s observation that distance from the
floor center is the best grouping predictor: HVAC holds the building core
near a setpoint while the envelope tracks the outdoor condition, so a
sensor's reading interpolates between setpoint and outdoor value as a
function of its distance from the exterior.  A smooth random micro-climate
term and per-floor offsets (heat rises; roofs are warmer) complete the
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import ensure_rng


@dataclass
class EnvironmentField:
    """Deterministic-plus-random environment over one building.

    Parameters
    ----------
    outdoor_temp_c / indoor_setpoint_c:
        Envelope and core temperatures the field interpolates between.
    outdoor_humidity / indoor_humidity:
        Same for relative humidity (percent).
    envelope_scale_m:
        E-folding distance of the exterior influence: sensors within
        ~one scale of a wall track the outdoor condition.
    floor_gradient_c:
        Temperature increase per floor (stratification).
    microclimate_sigma:
        Amplitude of the smooth random spatial term (same units as the
        field), realized from a fixed set of Gaussian bumps so nearby
        sensors stay correlated.
    """

    outdoor_temp_c: float = 4.0
    indoor_setpoint_c: float = 21.5
    outdoor_humidity: float = 78.0
    indoor_humidity: float = 32.0
    envelope_scale_m: float = 6.0
    floor_gradient_c: float = 0.4
    microclimate_sigma: float = 0.5
    n_bumps: int = 12
    rng_seed: int | None = 0

    def __post_init__(self) -> None:
        rng = ensure_rng(self.rng_seed)
        # Fixed random bumps define the micro-climate; they live in the
        # unit square and are scaled to each queried building's footprint.
        self._bump_centers = rng.uniform(0.0, 1.0, size=(self.n_bumps, 2))
        self._bump_amps = rng.normal(0.0, self.microclimate_sigma, self.n_bumps)
        self._bump_width = 0.25

    # ------------------------------------------------------------------
    def _microclimate(self, u: float, v: float) -> float:
        """Smooth random term at normalized in-floor position (u, v)."""
        d2 = (self._bump_centers[:, 0] - u) ** 2 + (self._bump_centers[:, 1] - v) ** 2
        return float(np.sum(self._bump_amps * np.exp(-d2 / (2 * self._bump_width**2))))

    def _envelope_weight(self, u: float, v: float, width_m: float, depth_m: float) -> float:
        """How strongly the exterior dominates at (u, v): 1 at walls, ->0 inside."""
        dist_to_wall = min(u, 1.0 - u) * width_m, min(v, 1.0 - v) * depth_m
        d = min(dist_to_wall)
        return float(np.exp(-d / self.envelope_scale_m))

    # ------------------------------------------------------------------
    def temperature(
        self, u: float, v: float, floor: int = 0, width_m: float = 40.0, depth_m: float = 95.0
    ) -> float:
        """Temperature (deg C) at normalized floor position (u, v) in [0,1]^2."""
        w = self._envelope_weight(u, v, width_m, depth_m)
        base = (1.0 - w) * self.indoor_setpoint_c + w * self.outdoor_temp_c
        return base + self.floor_gradient_c * floor + self._microclimate(u, v)

    def humidity(
        self, u: float, v: float, floor: int = 0, width_m: float = 40.0, depth_m: float = 95.0
    ) -> float:
        """Relative humidity (percent) at normalized floor position (u, v)."""
        w = self._envelope_weight(u, v, width_m, depth_m)
        base = (1.0 - w) * self.indoor_humidity + w * self.outdoor_humidity
        micro = self._microclimate(1.0 - u, 1.0 - v) * 2.0  # decorrelated from temp
        return float(np.clip(base + micro - 0.5 * floor, 0.0, 100.0))
