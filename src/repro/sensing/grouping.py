"""Sensor grouping strategies and their data-agreement error (Fig. 11a).

The scheduler must decide *which* sensors to make transmit concurrently
(Sec. 7.1, "Whom do we coordinate?").  A group is useful when its members'
readings agree, so the figure of merit is the mean disagreement between a
member's reading and the group consensus, normalized by the sensed range.
The paper compares three strategies -- random, per-floor, and
distance-from-floor-center bands -- and finds center distance best.
"""

from __future__ import annotations

import numpy as np

from repro.sensing.sensors import SensorNode
from repro.utils import RngLike, ensure_rng


def group_random(
    sensors: list[SensorNode], n_groups: int, rng: RngLike = None
) -> list[list[SensorNode]]:
    """Partition sensors uniformly at random into ``n_groups`` groups."""
    rng = ensure_rng(rng)
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    order = rng.permutation(len(sensors))
    groups: list[list[SensorNode]] = [[] for _ in range(n_groups)]
    for rank, idx in enumerate(order):
        groups[rank % n_groups].append(sensors[idx])
    return [g for g in groups if g]


def group_by_floor(sensors: list[SensorNode]) -> list[list[SensorNode]]:
    """One group per building floor."""
    floors: dict[int, list[SensorNode]] = {}
    for sensor in sensors:
        floors.setdefault(sensor.floor, []).append(sensor)
    return [floors[f] for f in sorted(floors)]


def group_by_center_distance(
    sensors: list[SensorNode], n_bands: int = 3
) -> list[list[SensorNode]]:
    """Bands of equal population by distance from the floor center.

    Sensors near the envelope track the outdoor condition and sensors in
    the core track the HVAC setpoint, so equal-distance bands group
    sensors with similar readings (the strategy Fig. 11a finds best).
    """
    if n_bands < 1:
        raise ValueError(f"n_bands must be >= 1, got {n_bands}")
    ordered = sorted(sensors, key=lambda s: s.center_distance())
    bands: list[list[SensorNode]] = [[] for _ in range(n_bands)]
    per_band = max(int(np.ceil(len(ordered) / n_bands)), 1)
    for i, sensor in enumerate(ordered):
        bands[min(i // per_band, n_bands - 1)].append(sensor)
    return [b for b in bands if b]


def grouping_error(
    groups: list[list[SensorNode]],
    readings: dict[int, float],
    value_range: tuple[float, float],
) -> float:
    """Mean normalized disagreement between members and group consensus.

    For each group, the consensus is the member median; the error is the
    mean absolute deviation from it, normalized by the sensing range, then
    averaged over groups weighted by membership (this is the quantity
    Fig. 11a compares across strategies).
    """
    lo, hi = value_range
    span = hi - lo
    if span <= 0:
        raise ValueError(f"invalid range: {value_range}")
    total = 0.0
    count = 0
    for group in groups:
        values = np.array([readings[s.sensor_id] for s in group], dtype=float)
        if values.size == 0:
            continue
        consensus = float(np.median(values))
        total += float(np.sum(np.abs(values - consensus))) / span
        count += values.size
    if count == 0:
        return 0.0
    return total / count
