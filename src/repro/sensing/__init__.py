"""Correlated sensor-data substrate (Secs. 7 and 9.4).

Choir's range extension feeds on *spatially correlated* sensor readings:
co-located temperature/humidity sensors agree in their most-significant
bits, so teams can transmit identical MSB chunks concurrently.  This
package provides the spatial field model (replacing the paper's BME280
deployment over four building floors), sensor sampling/quantization,
grouping strategies (random / per-floor / distance-from-center, Fig. 11a),
MSB-overlap analysis, and the data splicing of Sec. 7.2.
"""

from repro.sensing.field import EnvironmentField
from repro.sensing.sensors import SensorNode, quantize_reading, dequantize_reading
from repro.sensing.grouping import (
    group_by_center_distance,
    group_by_floor,
    group_random,
    grouping_error,
)
from repro.sensing.correlation import consensus_bits, msb_overlap
from repro.sensing.splicing import merge_chunks, splice_bits

__all__ = [
    "EnvironmentField",
    "SensorNode",
    "quantize_reading",
    "dequantize_reading",
    "group_random",
    "group_by_floor",
    "group_by_center_distance",
    "grouping_error",
    "msb_overlap",
    "consensus_bits",
    "splice_bits",
    "merge_chunks",
]
