"""Choir: decoding LP-WAN collisions and extending range via hardware offsets.

A from-scratch Python reproduction of *"Empowering Low-Power Wide Area
Networks in Urban Settings"* (SIGCOMM 2017): the LoRa chirp-spread-spectrum
PHY, client hardware-imperfection models, an urban wireless channel, the
Choir collision decoder (offset estimation, phased SIC, user tracking,
below-noise team decoding), MAC-layer simulation against LoRaWAN
ALOHA/Oracle baselines, an uplink MU-MIMO comparator, and the correlated
sensor-data substrate behind the range-extension results.

Quick start::

    from repro import (
        ChoirDecoder, CollisionChannel, LoRaParams, LoRaRadio, ensure_rng,
    )

    params = LoRaParams(spreading_factor=8)
    rng = ensure_rng(0)
    radios = [LoRaRadio(params, node_id=i, rng=rng) for i in range(3)]
    channel = CollisionChannel(params)
    packet = channel.receive(
        [(r, rng.integers(0, 256, 20), 10 + 0j) for r in radios], rng=rng
    )
    users = ChoirDecoder(params, rng=rng).decode(packet.samples, 20)
    for user in users:
        print(f"offset {user.offset_bins:.2f} bins -> {user.symbols[:5]}")
"""

from repro.phy import LoRaParams, LoRaFramer, CssModulator, CssDemodulator
from repro.hardware import AdcModel, LoRaRadio, OscillatorModel, TimingModel
from repro.channel import (
    CollisionChannel,
    FlatFadingChannel,
    LinkBudget,
    LinkModel,
    ReceivedPacket,
    UrbanPathLoss,
)
from repro.core import ChoirDecoder, DecodedUser
from repro.gateway import Gateway, GatewayConfig, GatewayReport
from repro.mac import (
    AlohaMac,
    ChoirMac,
    ChoirPhyModel,
    MuMimoPhyModel,
    NetworkSimulator,
    NodeConfig,
    OracleMac,
    SingleUserPhy,
)
from repro.mimo import ZfMimoDecoder, decode_choir_multiantenna, receive_multiantenna
from repro.server import NetworkServer, ServerConfig
from repro.sensing import EnvironmentField, SensorNode
from repro.deployment import Building, CampusTestbed, Position
from repro.utils.rng import RngLike, ensure_rng

__version__ = "1.0.0"

__all__ = [
    "LoRaParams",
    "LoRaFramer",
    "CssModulator",
    "CssDemodulator",
    "AdcModel",
    "LoRaRadio",
    "OscillatorModel",
    "TimingModel",
    "CollisionChannel",
    "FlatFadingChannel",
    "LinkBudget",
    "LinkModel",
    "ReceivedPacket",
    "UrbanPathLoss",
    "ChoirDecoder",
    "DecodedUser",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "AlohaMac",
    "OracleMac",
    "ChoirMac",
    "ChoirPhyModel",
    "MuMimoPhyModel",
    "SingleUserPhy",
    "NetworkServer",
    "NetworkSimulator",
    "NodeConfig",
    "ServerConfig",
    "ZfMimoDecoder",
    "decode_choir_multiantenna",
    "receive_multiantenna",
    "EnvironmentField",
    "SensorNode",
    "Building",
    "CampusTestbed",
    "Position",
    "RngLike",
    "ensure_rng",
    "__version__",
]
