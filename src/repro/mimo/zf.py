"""Zero-forcing uplink MU-MIMO decoding of CSS collisions.

Per received symbol window, the M antenna signals are a linear mix of the
K users' chirps through the channel matrix H (M x K).  Zero-forcing applies
the pseudo-inverse ``H^+`` to un-mix the streams sample by sample, then
demodulates each separated stream with the standard single-user dechirp.
Requires ``K <= M`` -- the antenna-count cap that motivates Choir.

Channel estimation uses the preamble: all users transmit the base chirp,
so after dechirping, user ``k``'s contribution at antenna ``a`` is a tone
at its offset ``mu_k`` with amplitude ``H[a, k]``; evaluating each
antenna's spectrum at the known offsets recovers H column by column (the
per-user offsets come from the same machinery Choir uses, which is fair:
MU-MIMO needs per-user channel sounding anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chanest import estimate_channels
from repro.core.dechirp import dechirp_windows
from repro.core.offsets import coarse_offsets, refine_offsets
from repro.mimo.array import MultiAntennaCapture
from repro.phy.chirp import downchirp
from repro.phy.params import LoRaParams


@dataclass
class ZfMimoDecoder:
    """Zero-forcing separation + per-stream CSS demodulation."""

    params: LoRaParams
    oversample: int = 10
    threshold_snr: float = 4.0

    def estimate_mixing(
        self, capture: MultiAntennaCapture, n_users: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Estimate per-user offsets and the channel matrix from preambles.

        Returns ``(positions_bins, H)`` with ``H`` of shape
        ``(n_antennas, n_users)``.
        """
        params = self.params
        n = params.samples_per_symbol
        all_windows = [
            dechirp_windows(params, capture.samples[a], n_windows=params.preamble_len - 1, start=n)
            for a in range(capture.n_antennas)
        ]
        combined = np.concatenate(all_windows, axis=0)
        peaks = coarse_offsets(
            combined, self.oversample, threshold_snr=self.threshold_snr, max_users=n_users
        )
        positions = np.array([p.position_bins for p in peaks], dtype=float)
        if positions.size == 0:
            return positions, np.zeros((capture.n_antennas, 0), dtype=complex)
        positions = refine_offsets(combined, positions)
        h = np.zeros((capture.n_antennas, positions.size), dtype=complex)
        for a in range(capture.n_antennas):
            per_window = np.atleast_2d(estimate_channels(all_windows[a], positions))
            h[a] = per_window.mean(axis=0)
        return positions, h

    def decode(
        self, capture: MultiAntennaCapture, n_data_symbols: int, n_users: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """ZF-separate and demodulate every user.

        Returns ``(positions_bins, symbols)`` where ``symbols`` has shape
        ``(n_users, n_data_symbols)``.  Raises ``ValueError`` when more
        users than antennas are discernible (the MU-MIMO hard cap).
        """
        params = self.params
        positions, h = self.estimate_mixing(capture, n_users)
        n_found = positions.size
        if n_found == 0:
            return positions, np.zeros((0, n_data_symbols), dtype=np.int64)
        if n_found > capture.n_antennas:
            raise ValueError(
                f"{n_found} users exceed the {capture.n_antennas}-antenna ZF cap"
            )
        # ZF un-mix: x_hat = pinv(H) @ y, applied to the raw samples.
        unmix = np.linalg.pinv(h)
        start = params.preamble_len * params.samples_per_symbol
        stop = start + n_data_symbols * params.samples_per_symbol
        mixed = capture.samples[:, start:stop]
        separated = unmix @ mixed  # (n_users, samples)
        n = params.samples_per_symbol
        dc = downchirp(params)
        symbols = np.zeros((n_found, n_data_symbols), dtype=np.int64)
        for k in range(n_found):
            stream = separated[k].reshape(n_data_symbols, n)
            spectra = np.fft.fft(stream * dc[None, :], n, axis=-1)
            # Correct this user's own frequency offset (integer part) the
            # way a standard receiver does, using the estimated position.
            raw = np.argmax(np.abs(spectra), axis=-1)
            offset = int(np.round(positions[k])) % n
            symbols[k] = (raw - offset) % n
        return positions, symbols
