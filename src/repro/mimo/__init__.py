"""Uplink MU-MIMO baseline (the paper's Sec. 9.5 comparator).

A base station with M antennas receives each transmission through M
independent channels; zero-forcing inverts the per-symbol mixing matrix to
separate up to M concurrent users.  This is the state of the art Choir is
compared against -- its gain is hard-capped by the antenna count, whereas
Choir separates users in the frequency domain on a single antenna.

Also provided: multi-antenna *Choir* (run the collision decoder per
antenna, combine decisions), showing the two techniques compose
(Fig. 12's "Choir + MU-MIMO" bar).
"""

from repro.mimo.array import MultiAntennaCapture, receive_multiantenna
from repro.mimo.zf import ZfMimoDecoder
from repro.mimo.choir_array import decode_choir_multiantenna

__all__ = [
    "MultiAntennaCapture",
    "receive_multiantenna",
    "ZfMimoDecoder",
    "decode_choir_multiantenna",
]
