"""Multi-antenna reception: one collision seen through M antenna channels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.noise import awgn
from repro.hardware.radio import LoRaRadio, TransmitterState
from repro.phy.params import LoRaParams
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class MultiAntennaCapture:
    """Samples at each antenna plus per-user/antenna ground truth."""

    samples: np.ndarray  # (n_antennas, n_samples)
    params: LoRaParams
    channel_matrix: np.ndarray  # (n_antennas, n_users) complex gains
    states: tuple[TransmitterState, ...]
    symbols: tuple[np.ndarray, ...]

    @property
    def n_antennas(self) -> int:
        return int(self.samples.shape[0])

    @property
    def n_users(self) -> int:
        return int(self.channel_matrix.shape[1])


def receive_multiantenna(
    params: LoRaParams,
    transmissions: list[tuple[LoRaRadio, np.ndarray]],
    channel_matrix: np.ndarray,
    noise_power: float = 1.0,
    rng: RngLike = None,
) -> MultiAntennaCapture:
    """Render a collision at an M-antenna base station.

    ``channel_matrix[a, k]`` is the complex gain from user ``k`` to antenna
    ``a`` (independent fades per antenna -- the rich-scattering assumption
    MU-MIMO relies on).  Noise is i.i.d. per antenna.
    """
    rng = ensure_rng(rng)
    channel_matrix = np.asarray(channel_matrix, dtype=complex)
    n_antennas, n_users = channel_matrix.shape
    if n_users != len(transmissions):
        raise ValueError(
            f"channel_matrix has {n_users} users but {len(transmissions)} transmissions given"
        )
    rendered = []
    states = []
    symbols = []
    for radio, data_symbols in transmissions:
        waveform, state = radio.transmit_symbols(np.asarray(data_symbols, dtype=int))
        rendered.append(waveform)
        states.append(state)
        symbols.append(np.asarray(data_symbols, dtype=int).copy())
    total_len = max(w.size for w in rendered) + params.samples_per_symbol
    mixed = np.zeros((n_antennas, total_len), dtype=complex)
    for k, waveform in enumerate(rendered):
        for a in range(n_antennas):
            mixed[a, : waveform.size] += channel_matrix[a, k] * waveform
    noisy = np.stack([awgn(mixed[a], noise_power, rng=rng) for a in range(n_antennas)])
    return MultiAntennaCapture(
        samples=noisy,
        params=params,
        channel_matrix=channel_matrix,
        states=tuple(states),
        symbols=tuple(symbols),
    )
