"""Choir on a multi-antenna base station (Fig. 12's rightmost bar).

Runs the single-antenna Choir decoder independently on each antenna and
combines per-user decisions by majority vote across antennas, matching
users between antennas by their fractional offset signature (which is a
transmitter property and therefore identical at every antenna).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.decoder import ChoirDecoder, DecodedUser
from repro.mimo.array import MultiAntennaCapture
from repro.utils import circular_distance


def decode_choir_multiantenna(
    decoder: ChoirDecoder,
    capture: MultiAntennaCapture,
    n_data_symbols: int,
    match_tolerance_bins: float = 0.5,
) -> list[DecodedUser]:
    """Decode each antenna with Choir and majority-vote the symbols.

    Users are anchored to the antenna that saw the most users (ties:
    strongest channels); other antennas' user lists are matched by
    aggregate-offset proximity.  Per-symbol decisions are combined by
    majority vote, which fixes errors on antennas that faded.
    """
    per_antenna: list[list[DecodedUser]] = [
        decoder.decode(capture.samples[a], n_data_symbols)
        for a in range(capture.n_antennas)
    ]
    anchor_idx = int(np.argmax([len(users) for users in per_antenna]))
    anchors = per_antenna[anchor_idx]
    if not anchors:
        return []
    n_bins = decoder.params.chips_per_symbol
    combined: list[DecodedUser] = []
    for anchor in anchors:
        votes = [anchor.symbols]
        for a, users in enumerate(per_antenna):
            if a == anchor_idx:
                continue
            matches = [
                u
                for u in users
                if circular_distance(
                    u.offset_bins, anchor.offset_bins, period=n_bins
                )
                < match_tolerance_bins
            ]
            if matches:
                best = min(
                    matches,
                    key=lambda u: circular_distance(
                        u.offset_bins, anchor.offset_bins, period=n_bins
                    ),
                )
                votes.append(best.symbols)
        stacked = np.stack(votes)
        majority = np.zeros(n_data_symbols, dtype=np.int64)
        for m in range(n_data_symbols):
            counts = Counter(int(v) for v in stacked[:, m])
            majority[m] = counts.most_common(1)[0][0]
        combined.append(DecodedUser(estimate=anchor.estimate, symbols=majority))
    return combined
