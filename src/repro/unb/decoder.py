"""Channelizing receiver for colliding ultra-narrowband transmissions.

The receive window is kilohertz wide while each client occupies ~200 Hz at
a crystal-determined position, so separation is (as the paper predicts)
"significantly simpler" than in the chirp case:

1. **Find users**: the capture's power spectrum shows one narrow hump per
   transmitter; peaks further apart than the occupied bandwidth are
   distinct users.
2. **Channelize**: derotate the capture by each peak frequency and
   low-pass by integrating over a bit period (a boxcar matched to the
   rectangular pulse); other users, now kilohertz away, integrate to
   nearly zero.
3. **Time-align**: timing offsets do *not* turn into frequency offsets
   here (the paper's caveat), so each user's bit boundary is recovered by
   maximizing the per-bit integral energy over candidate alignments.
4. **Demodulate** DBPSK differentially, immune to the residual sub-bin
   frequency error of the FFT-grid estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.noise import awgn
from repro.unb.phy import UnbParams, demodulate_dbpsk_baseband, modulate_dbpsk
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class UnbUser:
    """One separated UNB transmitter."""

    carrier_hz: float
    timing_offset_samples: int
    bits: np.ndarray
    peak_snr_db: float


def receive_unb_collision(
    params: UnbParams,
    transmissions: list[tuple[np.ndarray, float, float]],
    noise_power: float = 1.0,
    rng: RngLike = None,
    guard_bits: int = 2,
) -> tuple[np.ndarray, list[dict]]:
    """Render colliding UNB uplinks into one wideband capture.

    ``transmissions`` holds ``(bits, cfo_hz, amplitude)`` per user; each
    user also gets a random sub-bit timing offset and phase.  Returns the
    noisy capture and the ground truth records.
    """
    rng = ensure_rng(rng)
    if not transmissions:
        raise ValueError("at least one transmission is required")
    spb = int(params.samples_per_bit)
    max_bits = max(len(bits) for bits, _, _ in transmissions)
    total = (max_bits + 1 + guard_bits) * spb
    capture = np.zeros(total, dtype=complex)
    truth = []
    for bits, cfo_hz, amplitude in transmissions:
        if abs(cfo_hz) > params.max_cfo_hz:
            raise ValueError(f"cfo {cfo_hz} exceeds the receive window")
        waveform = modulate_dbpsk(params, np.asarray(bits, dtype=np.uint8))
        delay = int(rng.integers(0, spb))
        phase = float(rng.uniform(0, 2 * np.pi))
        n = np.arange(waveform.size)
        shifted = (
            amplitude
            * np.exp(1j * phase)
            * waveform
            * np.exp(2j * np.pi * cfo_hz * (n + delay) / params.sample_rate)
        )
        end = min(delay + shifted.size, total)
        capture[delay:end] += shifted[: end - delay]
        truth.append(
            {"bits": np.asarray(bits, dtype=np.uint8), "cfo_hz": cfo_hz, "delay": delay}
        )
    return awgn(capture, noise_power, rng=rng), truth


class UnbCollisionDecoder:
    """Separate and decode every discernible UNB transmitter."""

    def __init__(self, params: UnbParams, threshold_snr: float = 5.0) -> None:
        self.params = params
        self.threshold_snr = threshold_snr

    # ------------------------------------------------------------------
    def find_carriers(
        self, capture: np.ndarray, max_users: int | None = None
    ) -> list[tuple[float, float]]:
        """Locate occupied subchannels: ``(carrier_hz, peak_snr_db)`` pairs.

        Peaks are found in the capture's smoothed power spectrum; maxima
        within one occupied bandwidth of a stronger carrier are its own
        spectral structure, not another user.
        """
        capture = np.asarray(capture)
        spectrum = np.abs(np.fft.fft(capture)) ** 2
        freqs = np.fft.fftfreq(capture.size, 1.0 / self.params.sample_rate)
        # Smooth over ~ the occupied bandwidth to get one hump per user.
        width = max(
            int(self.params.occupied_bandwidth_hz / (freqs[1] - freqs[0]) / 2), 1
        )
        kernel = np.ones(width) / width
        smooth = np.convolve(spectrum, kernel, mode="same")
        noise = np.median(smooth)
        carriers: list[tuple[float, float]] = []
        order = np.argsort(smooth)[::-1]
        # Two users closer than ~2x the occupied bandwidth are not
        # separable by filtering (and a lone transmitter's spectral skirt
        # extends that far) -- the UNB separability limit.
        min_separation = self.params.occupied_bandwidth_hz * 2.0
        for idx in order:
            if smooth[idx] < self.threshold_snr * noise:
                break
            freq = float(freqs[idx])
            if any(abs(freq - c) < min_separation for c, _ in carriers):
                continue
            # Skirt rejection: the sinc^2 spectral skirt of an accepted
            # (stronger) carrier falls off as (R/df)^2; with a 10x margin
            # for multi-user beating, anything under it is that carrier's
            # own structure, not a new user.
            under_skirt = False
            for c_freq, c_snr_db in carriers:
                df = abs(freq - c_freq)
                skirt = (
                    10.0 ** (c_snr_db / 10.0)
                    * (self.params.bit_rate / max(df, self.params.bit_rate)) ** 2
                    * 10.0
                )
                if smooth[idx] / max(noise, 1e-30) < skirt:
                    under_skirt = True
                    break
            if under_skirt:
                continue
            snr_db = float(10 * np.log10(smooth[idx] / max(noise, 1e-30)))
            carriers.append((freq, snr_db))
            if max_users is not None and len(carriers) >= max_users:
                break
        return carriers

    def _channelize(self, capture: np.ndarray, carrier_hz: float) -> np.ndarray:
        """Shift one carrier to baseband (bit-period integration follows)."""
        n = np.arange(capture.size)
        return capture * np.exp(-2j * np.pi * carrier_hz * n / self.params.sample_rate)

    def _align_bits(self, baseband: np.ndarray, n_bits: int) -> int:
        """Recover the bit boundary: maximize per-bit integral energy."""
        spb = int(self.params.samples_per_bit)
        best_offset, best_energy = 0, -1.0
        for offset in range(0, spb, max(spb // 32, 1)):
            usable = baseband[offset : offset + (n_bits + 1) * spb]
            if usable.size < (n_bits + 1) * spb:
                break
            integrals = usable.reshape(n_bits + 1, spb).mean(axis=1)
            energy = float(np.sum(np.abs(integrals) ** 2))
            if energy > best_energy:
                best_energy, best_offset = energy, offset
        return best_offset

    def decode(
        self, capture: np.ndarray, n_bits: int, max_users: int | None = None
    ) -> list[UnbUser]:
        """Separate every discernible user and decode its DBPSK payload."""
        users = []
        for carrier_hz, snr_db in self.find_carriers(capture, max_users):
            baseband = self._channelize(capture, carrier_hz)
            offset = self._align_bits(baseband, n_bits)
            try:
                bits = demodulate_dbpsk_baseband(
                    self.params, baseband[offset:], n_bits
                )
            except ValueError:
                continue
            users.append(
                UnbUser(
                    carrier_hz=carrier_hz,
                    timing_offset_samples=offset,
                    bits=bits,
                    peak_snr_db=snr_db,
                )
            )
        return users
