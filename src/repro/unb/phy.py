"""A minimal ultra-narrowband DBPSK PHY (SigFox-class numbers).

SigFox uplinks send DBPSK at 100 bps in ~100 Hz of spectrum; the base
station digitizes a much wider window (here 48 kHz) and every client lands
wherever its crystal puts it.  Differential encoding makes the link immune
to the residual carrier-phase drift left after coarse frequency
correction, which is what lets the channelizer get away with FFT-grid
frequency estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class UnbParams:
    """Static parameters of the UNB link and receive window.

    Parameters
    ----------
    bit_rate:
        DBPSK symbol (=bit) rate; SigFox uses 100 bps.
    sample_rate:
        Receiver capture rate (the whole multi-user window).
    max_cfo_hz:
        Crystal spread: clients land anywhere in +/- this of nominal.
    """

    bit_rate: float = 100.0
    sample_rate: float = 48_000.0
    max_cfo_hz: float = 12_000.0

    def __post_init__(self) -> None:
        if self.bit_rate <= 0 or self.sample_rate <= 0:
            raise ValueError("rates must be positive")
        if self.sample_rate < 8 * self.bit_rate:
            raise ValueError("sample_rate must comfortably oversample the bit rate")
        if self.samples_per_bit != int(self.samples_per_bit):
            raise ValueError("sample_rate must be an integer multiple of bit_rate")

    @property
    def samples_per_bit(self) -> float:
        return self.sample_rate / self.bit_rate

    @property
    def occupied_bandwidth_hz(self) -> float:
        """Main-lobe bandwidth of the DBPSK signal (~2x the bit rate)."""
        return 2.0 * self.bit_rate


def random_bits(n: int, rng: RngLike = None) -> np.ndarray:
    """Convenience: a random payload bit vector."""
    rng = ensure_rng(rng)
    return rng.integers(0, 2, n).astype(np.uint8)


def modulate_dbpsk(params: UnbParams, bits: np.ndarray) -> np.ndarray:
    """Differentially encode and modulate ``bits`` (rectangular pulses).

    Bit 1 flips the carrier phase, bit 0 keeps it; the first transmitted
    symbol is the phase reference.  Output length is
    ``(len(bits) + 1) * samples_per_bit``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    phases = np.zeros(bits.size + 1)
    phases[1:] = np.cumsum(bits) % 2
    symbols = np.exp(1j * np.pi * phases)
    return np.repeat(symbols, int(params.samples_per_bit))


def demodulate_dbpsk_baseband(params: UnbParams, baseband: np.ndarray, n_bits: int) -> np.ndarray:
    """Decode DBPSK from an already-channelized, bit-aligned baseband.

    Integrates each bit period and compares consecutive integrals: a
    negative real part of ``s_k * conj(s_{k-1})`` means a phase flip
    (bit 1).  Residual frequency error rotates both integrals together, so
    only the per-bit drift matters -- the differential advantage.
    """
    spb = int(params.samples_per_bit)
    needed = (n_bits + 1) * spb
    baseband = np.asarray(baseband)
    if baseband.size < needed:
        raise ValueError(f"need {needed} samples for {n_bits} bits, got {baseband.size}")
    integrals = baseband[:needed].reshape(n_bits + 1, spb).mean(axis=1)
    decisions = np.real(integrals[1:] * np.conj(integrals[:-1]))
    return (decisions < 0).astype(np.uint8)
