"""Ultra-narrowband (SigFox / NB-IoT style) extension.

Sec. 5.2 of the paper argues that the offset-separation idea carries over
to ultra-narrowband LP-WANs and is in fact *simpler* there: a SigFox-class
uplink occupies ~100 Hz while cheap crystals put transmitters kilohertz
apart, so concurrent transmissions land on disjoint slices of the receive
window and can be separated by plain filtering -- no chirp structure
needed.  (The paper also notes the caveat that timing offsets no longer
map to frequency offsets; here timing is recovered per-user from the bit
transitions instead.)

This package provides a minimal DBPSK UNB PHY and a channelizing receiver
demonstrating that claim end to end.
"""

from repro.unb.phy import UnbParams, modulate_dbpsk, random_bits
from repro.unb.decoder import UnbCollisionDecoder, UnbUser, receive_unb_collision

__all__ = [
    "UnbParams",
    "modulate_dbpsk",
    "random_bits",
    "UnbCollisionDecoder",
    "UnbUser",
    "receive_unb_collision",
]
