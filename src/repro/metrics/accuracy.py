"""Symbol- and packet-level accuracy metrics."""

from __future__ import annotations

import numpy as np


def symbol_accuracy(decoded: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of symbols decoded correctly (0.0 when lengths mismatch)."""
    decoded = np.asarray(decoded)
    truth = np.asarray(truth)
    if decoded.size != truth.size or truth.size == 0:
        return 0.0
    return float(np.mean(decoded == truth))


def packet_delivery(
    decoded: np.ndarray, truth: np.ndarray, fec_tolerance: float = 0.06
) -> bool:
    """Whether a symbol stream would survive the LoRa FEC + CRC.

    Hamming(8,4) with diagonal interleaving corrects scattered symbol
    errors up to roughly ``fec_tolerance`` of the stream -- but always at
    least one (a lone symbol error lands one bit per codeword, which the
    FEC corrects even in short packets); denser errors fail the CRC.
    """
    decoded = np.asarray(decoded)
    truth = np.asarray(truth)
    if decoded.size != truth.size or truth.size == 0:
        return False
    n_errors = int(np.sum(decoded != truth))
    tolerated = max(int(fec_tolerance * truth.size), 1)
    return n_errors <= tolerated
