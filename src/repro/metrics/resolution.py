"""Sensor-data resolution error (Figs. 10 and 11a)."""

from __future__ import annotations

import numpy as np


def normalized_resolution_error(
    true_values: np.ndarray, recovered_values: np.ndarray, value_range: tuple[float, float]
) -> float:
    """Mean absolute error normalized by the sensing range.

    The paper reports "loss of resolution" as a percentage: 13.2 % for
    30-sensor teams at 2.5 km means the recovered coarse reading is within
    13.2 % of the sensed range of each sensor's true value on average.
    """
    true_values = np.asarray(true_values, dtype=float)
    recovered_values = np.asarray(recovered_values, dtype=float)
    if true_values.size != recovered_values.size:
        raise ValueError("value arrays must have equal length")
    lo, hi = value_range
    if hi <= lo:
        raise ValueError(f"invalid range: {value_range}")
    if true_values.size == 0:
        return 0.0
    return float(np.mean(np.abs(true_values - recovered_values)) / (hi - lo))
