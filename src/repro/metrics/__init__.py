"""Evaluation metrics shared by the experiments and benchmarks."""

from repro.metrics.accuracy import packet_delivery, symbol_accuracy
from repro.metrics.energy import (
    EnergyReport,
    RadioEnergyProfile,
    battery_life_report,
    energy_per_delivered_packet,
    energy_report_from_metrics,
)
from repro.metrics.resolution import normalized_resolution_error
from repro.metrics.summary import gain, safe_ratio

__all__ = [
    "symbol_accuracy",
    "packet_delivery",
    "normalized_resolution_error",
    "gain",
    "safe_ratio",
    "EnergyReport",
    "RadioEnergyProfile",
    "battery_life_report",
    "energy_per_delivered_packet",
    "energy_report_from_metrics",
]
