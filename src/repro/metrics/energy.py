"""Client energy accounting (the "10-year battery" budget of Sec. 1).

The paper reports transmissions-per-delivered-packet as a battery proxy
("packet transmission is a major drain on battery for sensors", Sec. 9.2);
this module turns MAC metrics into joules and battery lifetime using
SX1276-class current draws, so the 4.5x retransmission reduction can be
read directly as months of extra life.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.simulator import MacMetrics
from repro.phy.params import LoRaParams


@dataclass(frozen=True)
class RadioEnergyProfile:
    """Current draw of one client radio (SX1276-class defaults).

    Values follow the SX1276 datasheet at 3.3 V: ~120 mW transmitting at
    +14 dBm, ~36 mW receiving (beacon / ACK windows), ~1.5 uW sleeping.
    """

    tx_power_w: float = 0.120
    rx_power_w: float = 0.036
    sleep_power_w: float = 1.5e-6
    supply_voltage_v: float = 3.3

    def __post_init__(self) -> None:
        if min(self.tx_power_w, self.rx_power_w, self.sleep_power_w) < 0:
            raise ValueError("power draws must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one node's duty cycle."""

    energy_per_delivery_j: float
    average_power_w: float
    battery_life_years: float

    def __str__(self) -> str:
        return (
            f"{self.energy_per_delivery_j * 1e3:.2f} mJ/delivered packet, "
            f"{self.average_power_w * 1e6:.1f} uW average, "
            f"{self.battery_life_years:.1f} years on the reference battery"
        )


def packet_airtime_s(params: LoRaParams, payload_bits: int) -> float:
    """Airtime of one frame (preamble + data symbols)."""
    n_data = max(-(-payload_bits // params.spreading_factor), 1)
    return (params.preamble_len + n_data) * params.symbol_duration


def energy_per_delivered_packet(
    params: LoRaParams,
    transmissions_per_packet: float,
    payload_bits: int = 160,
    rx_window_s: float | None = None,
    profile: RadioEnergyProfile | None = None,
) -> float:
    """Joules a client spends per *delivered* packet.

    Every attempt costs one TX airtime plus one receive window (ACK or
    beacon); retransmissions multiply both (the paper's
    transmissions-per-packet metric is exactly this multiplier).
    """
    if transmissions_per_packet < 1.0:
        raise ValueError(
            f"transmissions_per_packet must be >= 1, got {transmissions_per_packet}"
        )
    profile = profile or RadioEnergyProfile()
    airtime = packet_airtime_s(params, payload_bits)
    rx_window = rx_window_s if rx_window_s is not None else airtime * 0.25
    per_attempt = profile.tx_power_w * airtime + profile.rx_power_w * rx_window
    return transmissions_per_packet * per_attempt


def battery_life_report(
    params: LoRaParams,
    transmissions_per_packet: float,
    reporting_period_s: float = 60.0,
    payload_bits: int = 160,
    battery_wh: float = 6.6,
    profile: RadioEnergyProfile | None = None,
) -> EnergyReport:
    """Battery life of a node reporting every ``reporting_period_s``.

    ``battery_wh`` defaults to a pair of AA lithium cells (~6.6 Wh), the
    class of battery behind the paper's "ten-year" framing.
    """
    profile = profile or RadioEnergyProfile()
    per_delivery = energy_per_delivered_packet(
        params, transmissions_per_packet, payload_bits, profile=profile
    )
    average_power = per_delivery / reporting_period_s + profile.sleep_power_w
    battery_j = battery_wh * 3600.0
    seconds = battery_j / average_power
    return EnergyReport(
        energy_per_delivery_j=per_delivery,
        average_power_w=average_power,
        battery_life_years=seconds / (365.25 * 24 * 3600.0),
    )


def energy_report_from_metrics(
    params: LoRaParams,
    metrics: MacMetrics,
    reporting_period_s: float = 60.0,
    payload_bits: int = 160,
    profile: RadioEnergyProfile | None = None,
) -> EnergyReport:
    """Energy report straight from a MAC simulation's metrics."""
    return battery_life_report(
        params,
        max(metrics.transmissions_per_packet, 1.0),
        reporting_period_s=reporting_period_s,
        payload_bits=payload_bits,
        profile=profile,
    )
