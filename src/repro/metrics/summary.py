"""Small helpers for reporting paper-style gain ratios."""

from __future__ import annotations


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with 0/0 -> 0 and x/0 -> inf."""
    if denominator == 0:
        return 0.0 if numerator == 0 else float("inf")
    return numerator / denominator


def gain(system_value: float, baseline_value: float) -> float:
    """Multiplicative gain of a system over a baseline (paper's "x" values)."""
    return safe_ratio(system_value, baseline_value)
