"""Client hardware imperfection models.

Choir's entire premise is that cheap LP-WAN client hardware exhibits
per-board carrier-frequency offsets, timing offsets and phase offsets that
are *stable within a packet* but *diverse across boards* (paper Sec. 4-5 and
the Fig. 7 characterization).  This package models those imperfections --
crystal oscillators with ppm-scale error and slow drift, sample-clock /
wake-up timing offsets, transmit power, and the base station's finite ADC.
"""

from repro.hardware.oscillator import OscillatorModel
from repro.hardware.clock import TimingModel
from repro.hardware.radio import LoRaRadio, TransmitterState
from repro.hardware.adc import AdcModel

__all__ = [
    "OscillatorModel",
    "TimingModel",
    "LoRaRadio",
    "TransmitterState",
    "AdcModel",
]
