"""Base-station ADC model: quantization and dynamic-range limits.

Sec. 5.2 of the paper notes Choir "is always limited by the resolution of
the analog-to-digital converter": transmitters whose signals fall below the
quantization floor are lost no matter how clever the decoding.  The USRP
N210 digitizes at 14 bits; this model quantizes I/Q against a configurable
full-scale so range experiments (Fig. 9) inherit a realistic noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AdcModel:
    """Uniform mid-rise quantizer applied independently to I and Q.

    Parameters
    ----------
    bits:
        Resolution per component (the N210's ADC is 14-bit).
    full_scale:
        Amplitude mapped to the top code; larger inputs clip.
    """

    bits: int = 14
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {self.full_scale}")

    @property
    def step(self) -> float:
        """Quantization step size."""
        return 2.0 * self.full_scale / (1 << self.bits)

    @property
    def quantization_noise_power(self) -> float:
        """Theoretical quantization noise power per complex sample.

        Uniform quantization noise has variance ``step^2 / 12`` per
        component; I and Q contribute independently.
        """
        return 2.0 * (self.step**2) / 12.0

    def digitize(self, samples: np.ndarray) -> np.ndarray:
        """Quantize (and clip) a complex waveform."""
        samples = np.asarray(samples, dtype=complex)

        def _quantize(x: np.ndarray) -> np.ndarray:
            clipped = np.clip(x, -self.full_scale, self.full_scale - self.step)
            return (np.floor(clipped / self.step) + 0.5) * self.step

        return _quantize(samples.real) + 1j * _quantize(samples.imag)
