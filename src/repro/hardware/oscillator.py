"""Crystal oscillator model: per-board CFO, within-packet drift, phase noise.

A LoRa client derives its carrier from a cheap crystal with a tolerance of
tens of ppm.  At a 902 MHz carrier even +/- 10 ppm is +/- 9 kHz -- many
dechirped-FFT bins -- so boards land essentially uniformly within a bin once
the integer part is removed, which is exactly the Fig. 7(a)/(b) observation
that fractional offsets span their whole range.  Within one ~10 ms packet the
offset is nearly constant (Fig. 7(d) reports ~0.04 % deviation); we model
the residual instability as a slow random walk plus white phase noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import RngLike, ensure_rng


@dataclass
class OscillatorModel:
    """One board's oscillator.

    Parameters
    ----------
    offset_hz:
        The board's static carrier-frequency offset at the receiver.
    drift_hz_per_s:
        Slow linear drift of the offset (thermal); tiny over a packet.
    jitter_hz:
        Standard deviation of white per-sample frequency jitter, modelling
        short-term oscillator instability.
    """

    offset_hz: float
    drift_hz_per_s: float = 0.0
    jitter_hz: float = 0.0

    @classmethod
    def sample(
        cls,
        rng: RngLike = None,
        tolerance_ppm: float = 25.0,
        carrier_hz: float = 902e6,
        drift_ppm_per_s: float = 2e-4,
        jitter_hz: float = 0.0,
    ) -> "OscillatorModel":
        """Draw a random board from a crystal-tolerance distribution.

        ``tolerance_ppm`` is interpreted as the +/- bound of a uniform
        manufacturing spread, the standard datasheet convention.
        """
        rng = ensure_rng(rng)
        offset_hz = rng.uniform(-tolerance_ppm, tolerance_ppm) * 1e-6 * carrier_hz
        drift = rng.normal(0.0, drift_ppm_per_s) * 1e-6 * carrier_hz
        return cls(offset_hz=offset_hz, drift_hz_per_s=drift, jitter_hz=jitter_hz)

    def frequency_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """Instantaneous frequency offset (Hz) at elapsed time ``t``."""
        return self.offset_hz + self.drift_hz_per_s * np.asarray(t, dtype=float)

    def apply(
        self,
        waveform: np.ndarray,
        sample_rate: float,
        start_time: float = 0.0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Impose this oscillator's offset (and noise) on a waveform.

        The phase is the integral of the instantaneous frequency, so linear
        drift appears as a quadratic phase term.
        """
        waveform = np.asarray(waveform)
        n = waveform.size
        t = start_time + np.arange(n) / sample_rate
        phase = self.offset_hz * t + 0.5 * self.drift_hz_per_s * t * t
        if self.jitter_hz > 0.0:
            rng = ensure_rng(rng)
            freq_noise = rng.normal(0.0, self.jitter_hz, n)
            phase = phase + np.cumsum(freq_noise) / sample_rate
        return waveform * np.exp(2j * np.pi * phase)
