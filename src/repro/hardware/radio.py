"""A complete LP-WAN client radio: modulator + hardware imperfections.

:class:`LoRaRadio` plays the role of the paper's SX1276MB1LAS boards: it
owns an oscillator (CFO), a timing model (TO), a random per-packet phase,
and a transmit power, and renders frames into the impaired complex-baseband
waveform the base station would see before the wireless channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.clock import TimingModel
from repro.hardware.oscillator import OscillatorModel
from repro.phy.chirp import delayed_chirp_train
from repro.phy.modulation import CssModulator
from repro.phy.packet import LoRaFramer
from repro.phy.params import LoRaParams
from repro.utils import RngLike, db_to_linear, ensure_rng


@dataclass(frozen=True)
class TransmitterState:
    """Ground-truth impairments of one transmission (for tests/metrics)."""

    cfo_hz: float
    timing_offset_s: float
    phase_rad: float
    amplitude: float

    def aggregate_offset_bins(self, params: LoRaParams) -> float:
        """The combined CFO+TO shift of the dechirped peak, in FFT bins.

        This is the quantity Choir estimates.  A CFO of ``f`` Hz shifts the
        dechirped tone *up* by ``f / bin_width`` bins; a delay of ``dt``
        seconds shifts it *down* by ``dt * Fs`` bins (Eqn. 5's ``B*dt/T``
        magnitude; the sign follows from dechirping a late chirp against an
        on-time down-chirp: ``phi(t-dt) - phi(t) = -(dt/T_chip) * t + c``).
        """
        cfo_bins = params.hz_to_bins(self.cfo_hz)
        to_bins = self.timing_offset_s * params.sample_rate
        return cfo_bins - to_bins


class LoRaRadio:
    """One client board: deterministic imperfections, per-packet rendering.

    Parameters
    ----------
    params:
        PHY configuration shared with the base station.
    oscillator, timing:
        Hardware models; drawn randomly from board-tolerance distributions
        when not supplied.
    tx_power_dbm:
        Transmit power; combined with the channel's path loss to set the
        received amplitude.
    node_id:
        Stable identifier used by the MAC simulator and metrics.
    """

    def __init__(
        self,
        params: LoRaParams,
        oscillator: OscillatorModel | None = None,
        timing: TimingModel | None = None,
        tx_power_dbm: float = 14.0,
        node_id: int = 0,
        coding_rate: int = 4,
        rng: RngLike = None,
    ) -> None:
        rng = ensure_rng(rng)
        self.params = params
        self.oscillator = oscillator or OscillatorModel.sample(
            rng, carrier_hz=params.carrier_hz
        )
        self.timing = timing or TimingModel.sample(rng)
        self.tx_power_dbm = tx_power_dbm
        self.node_id = node_id
        self._rng = rng
        self._modulator = CssModulator(params)
        self._framer = LoRaFramer(params, coding_rate=coding_rate)

    # ------------------------------------------------------------------
    @property
    def framer(self) -> LoRaFramer:
        return self._framer

    @property
    def rng_state(self) -> dict:
        """Resumable position of the per-packet draw stream.

        A radio reconstructed with the same ``oscillator``/``timing``
        models and a generator restored to this state renders exactly the
        frames this one would have -- the streaming traffic source uses
        it to park idle boards between transmissions without perturbing
        their draw sequences.
        """
        state = self._rng.bit_generator.state
        assert isinstance(state, dict)
        return state

    @property
    def tx_power_linear(self) -> float:
        """Transmit power as a linear amplitude-squared scale (1 mW ref)."""
        return float(db_to_linear(self.tx_power_dbm))

    def ground_truth(self, phase_rad: float = 0.0, amplitude: float = 1.0) -> TransmitterState:
        """The impairments the next transmission will carry."""
        return TransmitterState(
            cfo_hz=self.oscillator.offset_hz,
            timing_offset_s=self.timing.offset_s,
            phase_rad=phase_rad,
            amplitude=amplitude,
        )

    # ------------------------------------------------------------------
    def transmit_symbols(
        self,
        data_symbols: np.ndarray | list,
        amplitude: float = 1.0,
        apply_timing: bool = True,
    ) -> tuple[np.ndarray, TransmitterState]:
        """Render a frame (preamble + data chirps) with impairments.

        Returns the impaired waveform and the ground-truth
        :class:`TransmitterState` (useful for evaluating estimators).
        """
        frame_symbols = self._modulator.frame_symbols(np.asarray(data_symbols, dtype=int))
        delay = self.timing.offset_samples(self.params.sample_rate) if apply_timing else 0.0
        clean = delayed_chirp_train(self.params, frame_symbols, delay)
        phase = float(self._rng.uniform(0.0, 2.0 * np.pi))
        impaired = self.oscillator.apply(clean, self.params.sample_rate, rng=self._rng)
        impaired = impaired * (amplitude * np.exp(1j * phase))
        state = TransmitterState(
            cfo_hz=self.oscillator.offset_hz,
            timing_offset_s=self.timing.offset_s if apply_timing else 0.0,
            phase_rad=phase,
            amplitude=amplitude,
        )
        return impaired, state

    def transmit_payload(
        self, payload: bytes, amplitude: float = 1.0, apply_timing: bool = True
    ) -> tuple[np.ndarray, TransmitterState, np.ndarray]:
        """Encode ``payload`` and render it; also returns the true symbols."""
        frame = self._framer.encode(payload)
        waveform, state = self.transmit_symbols(
            frame.symbols, amplitude=amplitude, apply_timing=apply_timing
        )
        return waveform, state, frame.symbols
