"""Timing-offset model: wake-up jitter and sample-clock skew.

When a base-station beacon solicits concurrent responses (paper Sec. 7.1),
each client starts transmitting after its own interrupt latency and clock
granularity, so packets arrive with sub-symbol timing offsets.  The chirp
time-frequency duality (Eqn. 5) turns a timing offset of ``dt`` into a
frequency shift of ``B * dt / T`` -- i.e. ``dt`` expressed in samples equals
the shift expressed in FFT bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import RngLike, ensure_rng
from repro.utils.dsp import fractional_delay


@dataclass
class TimingModel:
    """One client's timing behaviour relative to the slot boundary.

    Parameters
    ----------
    offset_s:
        Start-of-packet offset in seconds (positive = late).
    skew_ppm:
        Sample-clock skew; over a short LP-WAN packet its effect is far
        below a sample but it is modelled for completeness.
    """

    offset_s: float
    skew_ppm: float = 0.0

    @classmethod
    def sample(
        cls,
        rng: RngLike = None,
        max_offset_s: float = 256e-6,
        skew_ppm_sigma: float = 5.0,
    ) -> "TimingModel":
        """Draw wake-up timing for one client.

        ``max_offset_s`` defaults to a fraction of a LoRa symbol (a symbol
        at SF8/125 kHz lasts ~2 ms), matching the paper's observation that
        beacon-coordinated responses stay within one symbol (Sec. 7.1).
        """
        rng = ensure_rng(rng)
        return cls(
            offset_s=float(rng.uniform(0.0, max_offset_s)),
            skew_ppm=float(rng.normal(0.0, skew_ppm_sigma)),
        )

    def offset_samples(self, sample_rate: float) -> float:
        """Timing offset in (possibly fractional) samples."""
        return self.offset_s * sample_rate

    def apply(self, waveform: np.ndarray, sample_rate: float) -> np.ndarray:
        """Delay a waveform by this client's timing offset.

        The integer part is applied as zero-prefix padding (the signal
        genuinely starts later); the fractional part as a band-limited
        fractional delay.  Clock skew is applied as a resampling-free
        first-order phase approximation, which is accurate for the
        sub-ppm-of-a-packet magnitudes involved.
        """
        waveform = np.asarray(waveform)
        delay = self.offset_samples(sample_rate)
        whole = int(np.floor(delay))
        frac = delay - whole
        if frac > 0:
            waveform = fractional_delay(waveform, frac)
        if whole > 0:
            waveform = np.concatenate([np.zeros(whole, dtype=complex), waveform])
        return waveform
