"""Developer tooling that ships with the package (static analysis, gates)."""

from repro.tools.lint import Diagnostic, RULES, lint_paths, lint_source

__all__ = [
    "Diagnostic",
    "RULES",
    "lint_paths",
    "lint_source",
]
