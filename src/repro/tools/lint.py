"""repro-lint: an AST lint pass enforcing Choir's DSP invariants.

The Choir pipeline (dechirp -> peak fit -> residual search -> SIC ->
clustering) fails *silently* when numeric discipline slips: a stray global
RNG makes an experiment unreproducible, an exact float compare on a
fractional bin position flips a decision near the grid, a mutable default
leaks state between decoder instances.  Generic linters do not know about
these invariants, so this module encodes them as repo-specific rules and
emits ``file:line:code message`` diagnostics with a non-zero exit code on
any violation.

Rule catalog
------------

========  =============================================================
Code      Invariant
========  =============================================================
R001      No direct ``np.random.*`` calls (``default_rng``, ``seed``,
          legacy ``rand``/``randn``/``RandomState``...) outside
          ``utils/rng.py``.  All randomness must route through
          :func:`repro.utils.rng.ensure_rng` so one experiment-level
          seed deterministically derives every stream.
R002      Any module using PEP 604 (``X | Y``) or PEP 585
          (``list[int]``) annotation syntax must carry
          ``from __future__ import annotations`` -- keeps
          ``requires-python >= 3.9`` honest.
R003      No float equality (``==`` / ``!=``) on offset/bin quantities;
          compare with a tolerance (``circular_distance``,
          ``math.isclose``, ``np.isclose``) instead.
R004      No mutable default arguments (``[]``, ``{}``, ``set()``...).
R005      No bare ``except:`` clauses.
R006      Public functions and methods in ``core/`` and ``phy/`` must
          have docstrings.
R007      No direct ``np.linalg.lstsq`` calls in ``core/`` outside
          ``chanest.py`` / ``engine.py``.  The SVD-based solver is the
          scalar *reference* path; hot code must route residual and
          channel solves through the normal-equations paths of
          :mod:`repro.core.engine` (or the chanest reference helpers)
          so decode latency stays bounded.
R008      No direct ``time.perf_counter()`` calls in ``gateway/``
          outside ``telemetry.py`` (and the ``trace/`` package).  All
          gateway timing must route through
          :func:`repro.gateway.telemetry.clock` so durations come from
          one monotonic source and tests can reason about a single
          seam.
========  =============================================================

Suppression: append ``# noqa`` (all rules) or ``# noqa: R003`` /
``# noqa: R001,R003`` (specific rules) to the offending line.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

RULES: dict[str, str] = {
    "R001": "direct np.random call outside utils/rng.py; route through ensure_rng",
    "R002": "PEP 604/585 annotation syntax without `from __future__ import annotations`",
    "R003": "float equality on offset/bin quantity; use a tolerance compare",
    "R004": "mutable default argument",
    "R005": "bare `except:` clause",
    "R006": "public function in core/ or phy/ missing a docstring",
    "R007": "np.linalg.lstsq in core/ outside chanest.py/engine.py; "
    "use repro.core.engine",
    "R008": "time.perf_counter in gateway/ outside telemetry.py; "
    "use repro.gateway.telemetry.clock",
}

#: Files allowed to touch ``np.random`` directly (the RNG plumbing itself).
_RNG_ALLOWED_SUFFIXES: tuple[tuple[str, ...], ...] = (("utils", "rng.py"),)

#: ``core/`` files allowed to call ``np.linalg.lstsq`` directly: the
#: reference channel solver and the engine's own degenerate-Gram fallback.
_R007_ALLOWED_NAMES = frozenset({"chanest.py", "engine.py"})

#: ``gateway/`` files allowed to call ``time.perf_counter`` directly: the
#: telemetry module that wraps it as :func:`clock`.
_R008_ALLOWED_NAMES = frozenset({"telemetry.py"})

#: Terminal attribute names that make an operand a *property of* an
#: offset/bin array (its size, shape, ...) rather than the quantity itself.
_R003_EXEMPT_ATTRS = frozenset({"size", "shape", "ndim", "dtype", "len", "count"})

#: Identifier pattern that marks a value as an offset/bin quantity.
_R003_NAME = re.compile(r"offset|(?:^|_)bins?(?:$|_)")

#: Builtin generics whose subscription is PEP 585 syntax.
_PEP585_GENERICS = frozenset(
    {"list", "dict", "tuple", "set", "frozenset", "type"}
)

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, formatted as ``file:line:code message``."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``file:line:code message`` form."""
        return f"{self.path}:{self.line}:{self.code} {self.message}"


def _suppressed_codes(source_line: str) -> Optional[frozenset[str]]:
    """Codes suppressed by a ``# noqa`` comment (empty set == all codes)."""
    match = _NOQA.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def _dotted_name(node: ast.expr) -> Optional[tuple[str, ...]]:
    """Resolve ``a.b.c`` into ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _Checker(ast.NodeVisitor):
    """Single-file visitor collecting diagnostics for every rule."""

    def __init__(self, path: Path, tree: ast.Module, source_lines: Sequence[str]) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self.diagnostics: list[Diagnostic] = []
        self._rng_exempt = any(
            tuple(path.parts[-len(suffix):]) == suffix
            for suffix in _RNG_ALLOWED_SUFFIXES
        )
        self._docstring_scope = any(
            part in ("core", "phy") for part in path.parent.parts
        )
        self._lstsq_scope = (
            "core" in path.parent.parts and path.name not in _R007_ALLOWED_NAMES
        )
        self._perf_counter_scope = (
            "gateway" in path.parent.parts
            and "trace" not in path.parent.parts
            and path.name not in _R008_ALLOWED_NAMES
        )
        self._has_future_annotations = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
            for node in tree.body
        )
        # R001 alias maps: names bound to numpy, numpy.random, and
        # functions imported straight out of numpy.random.
        self._numpy_aliases: set[str] = set()
        self._random_aliases: set[str] = set()
        self._random_func_aliases: set[str] = set()
        # R007 alias maps: names bound to numpy.linalg / its lstsq.
        self._linalg_aliases: set[str] = set()
        self._lstsq_aliases: set[str] = set()
        # R008 alias maps: names bound to the time module / perf_counter.
        self._time_aliases: set[str] = set()
        self._perf_counter_aliases: set[str] = set()
        # Class nesting depth, to distinguish methods from nested closures.
        self._scope_stack: list[ast.AST] = [tree]

    # -- plumbing ------------------------------------------------------

    def _report(self, code: str, line: int, message: str) -> None:
        if 1 <= line <= len(self.source_lines):
            suppressed = _suppressed_codes(self.source_lines[line - 1])
            if suppressed is not None and (not suppressed or code in suppressed):
                return
        self.diagnostics.append(
            Diagnostic(path=str(self.path), line=line, code=code, message=message)
        )

    # -- import tracking (R001) ----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.asname is None:
                    self._numpy_aliases.add(bound)
                elif alias.name == "numpy":
                    self._numpy_aliases.add(bound)
                elif alias.name == "numpy.random":
                    self._random_aliases.add(bound)
                elif alias.name == "numpy.linalg":
                    self._linalg_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._random_aliases.add(alias.asname or alias.name)
        elif node.module == "numpy.random":
            for alias in node.names:
                self._random_func_aliases.add(alias.asname or alias.name)
        elif node.module == "numpy.linalg":
            for alias in node.names:
                if alias.name == "lstsq":
                    self._lstsq_aliases.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name == "perf_counter":
                    self._perf_counter_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- R007: lstsq discipline in core/ -------------------------------

    def _is_lstsq_call(self, chain: tuple[str, ...]) -> bool:
        if (
            len(chain) == 3
            and chain[0] in self._numpy_aliases
            and chain[1:] == ("linalg", "lstsq")
        ):
            return True
        if len(chain) == 2 and chain[0] in self._linalg_aliases and chain[1] == "lstsq":
            return True
        return len(chain) == 1 and chain[0] in self._lstsq_aliases

    # -- R008: perf_counter discipline in gateway/ ----------------------

    def _is_perf_counter_call(self, chain: tuple[str, ...]) -> bool:
        if (
            len(chain) == 2
            and chain[0] in self._time_aliases
            and chain[1] == "perf_counter"
        ):
            return True
        return len(chain) == 1 and chain[0] in self._perf_counter_aliases

    # -- R001: rng discipline ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self._rng_exempt:
            chain = _dotted_name(node.func)
            if chain is not None and self._is_numpy_random_call(chain):
                self._report(
                    "R001",
                    node.lineno,
                    f"direct call to {'.'.join(chain)}; route randomness "
                    "through repro.utils.rng.ensure_rng",
                )
        if self._lstsq_scope:
            chain = _dotted_name(node.func)
            if chain is not None and self._is_lstsq_call(chain):
                self._report(
                    "R007",
                    node.lineno,
                    f"direct call to {'.'.join(chain)} in core/; route the "
                    "solve through repro.core.engine (normal equations)",
                )
        if self._perf_counter_scope:
            chain = _dotted_name(node.func)
            if chain is not None and self._is_perf_counter_call(chain):
                self._report(
                    "R008",
                    node.lineno,
                    f"direct call to {'.'.join(chain)} in gateway/; use "
                    "repro.gateway.telemetry.clock",
                )
        self.generic_visit(node)

    def _is_numpy_random_call(self, chain: tuple[str, ...]) -> bool:
        if len(chain) >= 3 and chain[0] in self._numpy_aliases and chain[1] == "random":
            return True
        if len(chain) >= 2 and chain[0] in self._random_aliases:
            return True
        return len(chain) == 1 and chain[0] in self._random_func_aliases

    # -- R002: future annotations --------------------------------------

    def _check_annotation(self, annotation: Optional[ast.expr]) -> None:
        if annotation is None or self._has_future_annotations:
            return
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitOr):
                self._report(
                    "R002",
                    sub.lineno,
                    "PEP 604 union in annotation requires "
                    "`from __future__ import annotations`",
                )
                return
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in _PEP585_GENERICS
            ):
                self._report(
                    "R002",
                    sub.lineno,
                    f"PEP 585 `{sub.value.id}[...]` annotation requires "
                    "`from __future__ import annotations`",
                )
                return

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_annotation(node.annotation)
        self.generic_visit(node)

    # -- R003: float equality on offsets/bins --------------------------

    @staticmethod
    def _quantity_name(node: ast.expr) -> Optional[str]:
        """Terminal identifier of an operand, if it is a name/attribute."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            if node.attr in _R003_EXEMPT_ATTRS:
                return None
            return node.attr
        if isinstance(node, ast.Call):
            # len(x), int(x), x.round() ... treat as non-quantity; exact
            # equality on derived integers is legitimate.
            return None
        return None

    def _is_offset_quantity(self, node: ast.expr) -> bool:
        name = self._quantity_name(node)
        return name is not None and bool(_R003_NAME.search(name.lower()))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(
                isinstance(other, ast.Constant)
                and (other.value is None or isinstance(other.value, (str, bool)))
                for other in pair
            ):
                continue
            if any(self._is_offset_quantity(operand) for operand in pair):
                self._report(
                    "R003",
                    node.lineno,
                    "exact ==/!= on an offset/bin quantity; use "
                    "circular_distance / np.isclose with a tolerance",
                )
        self.generic_visit(node)

    # -- R004/R006: function-level rules -------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_docstring(node)
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
            node.args.vararg,
            node.args.kwarg,
        ]:
            if arg is not None:
                self._check_annotation(arg.annotation)
        self._check_annotation(node.returns)
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._report(
                    "R004",
                    default.lineno,
                    f"mutable default argument in `{node.name}`; default to "
                    "None and build inside the function",
                )

    def _check_docstring(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self._docstring_scope or node.name.startswith("_"):
            return
        # Only module-level functions and class methods; nested closures
        # are implementation detail.
        if not isinstance(self._scope_stack[-1], (ast.Module, ast.ClassDef)):
            return
        if not ast.get_docstring(node):
            self._report(
                "R006",
                node.lineno,
                f"public function `{node.name}` in core/phy has no docstring",
            )

    # -- R005: bare except ---------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "R005",
                node.lineno,
                "bare `except:`; name the exception types (or `Exception`)",
            )
        self.generic_visit(node)


def lint_source(source: str, path: Path) -> list[Diagnostic]:
    """Lint one module's source text; syntax errors become diagnostics."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(path, tree, source.splitlines())
    checker.visit(tree)
    return checker.diagnostics


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part.startswith(".") for part in candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths`` and return sorted findings."""
    diagnostics: list[Diagnostic] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, file_path))
    return sorted(diagnostics)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: 0 when clean, 1 on any diagnostic, 2 on bad usage."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Choir repo-specific static analysis (rules R001-R008).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in sorted(RULES.items()):
            print(f"{code}  {description}")
        return 0

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
        return 2

    diagnostics = lint_paths(targets)
    for diagnostic in diagnostics:
        print(diagnostic.format())
    if diagnostics:
        print(
            f"repro-lint: {len(diagnostics)} finding(s) across "
            f"{len({d.path for d in diagnostics})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
