"""Compatibility shim: ``repro.tools.lint`` is now the analysis engine.

The original single-file line scanner that lived here was superseded by
the AST dataflow engine in :mod:`repro.tools.analysis` (one parse per
file, import/alias resolution, call-graph reachability, rules
R001-R011).  Every public name this module used to export is re-exported
unchanged, so ``from repro.tools.lint import lint_paths`` and the
``repro-lint`` console script keep working.
"""

from __future__ import annotations

import sys

from repro.tools.analysis import RULES, Diagnostic, lint_paths, lint_source, main

__all__ = ["RULES", "Diagnostic", "lint_paths", "lint_source", "main"]

if __name__ == "__main__":
    sys.exit(main())
