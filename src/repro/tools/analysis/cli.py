"""``repro-lint`` command line front end for the analysis engine.

Exit codes match the legacy scanner: 0 clean, 1 findings, 2 bad usage.
``--engine=ast`` is the only engine (the legacy line scanner is gone);
the flag is kept so invocations are explicit about what they run, and
so a future engine can slot in without breaking call sites.  ``--json``
additionally writes the findings as a JSON array for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.tools.analysis.base import RULES
from repro.tools.analysis.engine import lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: 0 when clean, 1 on any diagnostic, 2 on bad usage."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Choir repo-specific static analysis (rules R001-R013).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--engine",
        choices=["ast"],
        default="ast",
        help="analysis engine (the AST dataflow engine is the default "
        "and only engine)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write findings as a JSON array to FILE (for CI artifacts)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in sorted(RULES.items()):
            print(f"{code}  {description}")
        return 0

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
        return 2

    diagnostics = lint_paths(targets)
    for diagnostic in diagnostics:
        print(diagnostic.format())
    if args.json is not None:
        payload = [
            {
                "path": d.path,
                "line": d.line,
                "code": d.code,
                "message": d.message,
            }
            for d in diagnostics
        ]
        Path(args.json).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if diagnostics:
        print(
            f"repro-lint: {len(diagnostics)} finding(s) across "
            f"{len({d.path for d in diagnostics})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
