"""Analysis driver: one parse per file, every pass over the shared model.

The engine is the only component that touches the filesystem or handles
syntax errors.  It builds one :class:`ModuleModel` per file, assembles
them into a :class:`Project` (so the concurrency pass can resolve
cross-module attribute types), runs every pass, and filters the combined
findings through the per-module ``# noqa`` suppression map.

``lint_source`` / ``lint_paths`` keep the exact signatures and
diagnostic format of the legacy single-file scanner; callers (tests,
the ``repro-lint`` CLI, CI) are unaffected by the engine swap.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.tools.analysis.base import Diagnostic
from repro.tools.analysis.concurrency import check_concurrency
from repro.tools.analysis.determinism import check_determinism
from repro.tools.analysis.dtypes import check_dtypes
from repro.tools.analysis.model import ModuleModel
from repro.tools.analysis.project import Project
from repro.tools.analysis.rules_core import check_core_rules


def build_module_model(
    source: str, path: Path
) -> Tuple[Optional[ModuleModel], Optional[Diagnostic]]:
    """Parse one module; a syntax error becomes an E999 diagnostic."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Diagnostic(
            path=str(path),
            line=exc.lineno or 1,
            code="E999",
            message=f"syntax error: {exc.msg}",
        )
    return ModuleModel(path, tree, source), None


def _run_passes(project: Project) -> Iterator[Diagnostic]:
    for model in project.models:
        yield from check_core_rules(model)
        yield from check_determinism(model)
        yield from check_dtypes(model)
    yield from check_concurrency(project)


def _filter_suppressed(
    diagnostics: Iterable[Diagnostic], by_path: Dict[str, ModuleModel]
) -> List[Diagnostic]:
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        model = by_path.get(diagnostic.path)
        if model is not None and model.suppressed(diagnostic.line, diagnostic.code):
            continue
        kept.append(diagnostic)
    return kept


def analyze_models(
    models: Iterable[ModuleModel], errors: Iterable[Diagnostic] = ()
) -> List[Diagnostic]:
    """Run every pass over pre-built models and return sorted findings."""
    project = Project(list(models))
    by_path = {str(model.path): model for model in project.models}
    diagnostics = _filter_suppressed(_run_passes(project), by_path)
    diagnostics.extend(errors)
    return sorted(diagnostics)


def lint_source(source: str, path: Path) -> List[Diagnostic]:
    """Lint one module's source text; syntax errors become diagnostics."""
    model, error = build_module_model(source, Path(path))
    if model is None:
        return [error] if error is not None else []
    return analyze_models([model])


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part.startswith(".") for part in candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``paths`` and return sorted findings.

    All files are parsed first and analyzed as one project, so the
    concurrency pass sees cross-module class relationships (for example
    a gateway worker pool holding a ``trace.recorder.TraceRecorder``).
    """
    models: List[ModuleModel] = []
    errors: List[Diagnostic] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        model, error = build_module_model(source, file_path)
        if model is not None:
            models.append(model)
        elif error is not None:
            errors.append(error)
    return analyze_models(models, errors)
