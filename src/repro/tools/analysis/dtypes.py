"""R011: implicit complex64 -> complex128 upcasts in hot kernels.

Single-precision IQ pipelines silently double their memory traffic when
a ``float64`` scalar or ``complex128`` array leaks into a ``complex64``
expression: NEP 50 promotes the result to ``complex128`` and every
downstream op inherits it.  This pass runs a shallow per-function dtype
abstract interpretation over ``core/`` and ``phy/`` modules:

* dtypes enter the lattice through ``np.zeros(..., dtype=np.complex64)``
  -style constructors, ``astype``, explicit scalar constructors
  (``np.float64(x)``), and a handful of dtype-preserving ufuncs;
* Python numeric literals are *weak* (NEP 50: they adopt the array
  dtype, so ``c64 * 0.5`` is fine);
* a ``BinOp`` mixing ``complex64`` with ``float64`` or ``complex128``
  is the reportable event.

Anything the interpreter cannot see becomes *unknown* and never flags:
the rule is deliberately low-recall / high-precision.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.tools.analysis.base import Diagnostic
from repro.tools.analysis.model import ModuleModel, dotted_name

_DTYPES = frozenset({"float32", "float64", "complex64", "complex128"})

#: numpy constructors that default to float64 when ``dtype=`` is absent.
_FLOAT64_DEFAULT_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "linspace", "logspace", "geomspace", "eye"}
)

#: numpy constructors whose result dtype we only know via ``dtype=``.
_DTYPE_KWARG_CTORS = frozenset({"array", "asarray", "ascontiguousarray", "arange"})

#: Elementwise numpy functions that preserve their first operand's dtype.
_PRESERVING_UFUNCS = frozenset(
    {"exp", "conj", "conjugate", "sqrt", "sin", "cos", "tan", "sum", "mean",
     "cumsum", "roll", "reshape", "ravel", "concatenate", "stack", "copy"}
)

#: ``np.abs``/``np.angle`` map complex onto the matching real precision.
_COMPLEX_TO_REAL = {"complex64": "float32", "complex128": "float64"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _dtype_from_annotation_expr(node: ast.expr) -> Optional[str]:
    """``np.complex64`` / ``"complex64"`` / ``float`` -> lattice value."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _DTYPES else None
    chain = dotted_name(node)
    if chain is None:
        return None
    terminal = chain[-1]
    if terminal in _DTYPES:
        return terminal
    if terminal == "float":
        return "float64"
    if terminal == "complex":
        return "complex128"
    return None


def _promote(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """NEP 50 promotion over the lattice; None is absorbing (unknown)."""
    if left is None or right is None:
        return None
    if left == "weak":
        return right
    if right == "weak":
        return left
    if left == right:
        return left
    complex_result = "complex64" in (left, right) or "complex128" in (left, right)
    wide = (
        "float64" in (left, right)
        or "complex128" in (left, right)
    )
    if complex_result:
        return "complex128" if wide else "complex64"
    return "float64" if wide else "float32"


def _is_upcast(left: Optional[str], right: Optional[str]) -> bool:
    pair = {left, right}
    return "complex64" in pair and bool(pair & {"float64", "complex128"})


class _KernelVisitor(ast.NodeVisitor):
    """Per-function dtype interpretation; reports upcasting BinOps."""

    def __init__(self, model: ModuleModel, diagnostics: List[Diagnostic]) -> None:
        self.model = model
        self.diagnostics = diagnostics
        self.env: Dict[str, Optional[str]] = {}

    # -- inference ------------------------------------------------------

    def _resolve(self, node: ast.expr) -> Optional[Tuple[str, ...]]:
        chain = dotted_name(node)
        if chain is None:
            return None
        return self.model.imports.resolve(chain)

    def _dtype_kwarg(self, node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return _dtype_from_annotation_expr(keyword.value)
        return None

    def infer(self, node: ast.expr) -> Optional[str]:
        """Lattice value of an expression: dtype name, "weak", or None."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float, complex)):
                return "weak"
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Subscript):
            # Indexing/slicing an array preserves its dtype.
            return self.infer(node.value)
        if isinstance(node, ast.Attribute):
            if node.attr in ("real", "imag"):
                inner = self.infer(node.value)
                return _COMPLEX_TO_REAL.get(inner or "", inner)
            if node.attr == "T":
                return self.infer(node.value)
            return None
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if _is_upcast(left, right):
                self._report(node, left, right)
            return _promote(left, right)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        return None

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype" and node.args:
            return _dtype_from_annotation_expr(node.args[0]) or self._dtype_kwarg(node)
        resolved = self._resolve(func)
        if resolved is None:
            return None
        if resolved[0] != "numpy":
            return None
        if len(resolved) >= 2 and resolved[1] == "fft":
            # np.fft always computes in double precision.
            return "complex128"
        terminal = resolved[-1]
        if terminal in _DTYPES:
            return terminal
        if terminal in _FLOAT64_DEFAULT_CTORS:
            return self._dtype_kwarg(node) or "float64"
        if terminal in _DTYPE_KWARG_CTORS:
            return self._dtype_kwarg(node)
        if terminal in _PRESERVING_UFUNCS and node.args:
            return self.infer(node.args[0])
        if terminal in ("abs", "absolute", "angle") and node.args:
            inner = self.infer(node.args[0])
            return _COMPLEX_TO_REAL.get(inner or "", inner)
        return None

    # -- reporting ------------------------------------------------------

    def _report(self, node: ast.BinOp, left: Optional[str],
                right: Optional[str]) -> None:
        wide = right if left == "complex64" else left
        self.diagnostics.append(
            Diagnostic(
                path=str(self.model.path),
                line=node.lineno,
                code="R011",
                message=(
                    f"implicit complex64 -> complex128 upcast: {wide} operand "
                    "in a complex64 expression; cast it (np.float32/"
                    "np.complex64) to keep the kernel single-precision"
                ),
            )
        )

    # -- statement walk -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        inferred = self.infer(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = inferred

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        inferred = self.infer(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = inferred

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target_dtype = (
            self.env.get(node.target.id)
            if isinstance(node.target, ast.Name)
            else None
        )
        value_dtype = self.infer(node.value)
        if _is_upcast(target_dtype, value_dtype):
            self._report(
                ast.BinOp(
                    left=node.target, op=node.op, right=node.value,
                    lineno=node.lineno, col_offset=node.col_offset,
                ),
                target_dtype,
                value_dtype,
            )
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = _promote(target_dtype, value_dtype)

    def visit_Expr(self, node: ast.Expr) -> None:
        self.infer(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.infer(node.value)

    def _visit_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit_If(self, node: ast.If) -> None:
        self.infer(node.test)
        self._visit_block(node.body)
        self._visit_block(node.orelse)

    def visit_For(self, node: ast.For) -> None:
        iter_dtype = self.infer(node.iter)
        if isinstance(node.target, ast.Name):
            # Iterating an array yields rows of the same dtype.
            self.env[node.target.id] = iter_dtype
        self._visit_block(node.body)
        self._visit_block(node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.infer(node.test)
        self._visit_block(node.body)
        self._visit_block(node.orelse)

    def visit_With(self, node: ast.With) -> None:
        self._visit_block(node.body)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions get their own interpretation pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def check_dtypes(model: ModuleModel) -> Iterator[Diagnostic]:
    """Run R011 over every function in a core//phy/ module."""
    if not model.in_packages(("core", "phy")):
        return iter(())
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(model.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visitor = _KernelVisitor(model, diagnostics)
            for stmt in node.body:
                visitor.visit(stmt)
    return iter(diagnostics)
