"""R009: lock discipline for state shared with worker threads.

The pass consumes the :class:`~repro.tools.analysis.project.Project`
class index and runs three analyses:

1. **Reachability** -- BFS over the class-method call graph from every
   thread entry point (``threading.Thread(target=self.m)``, ``Timer``,
   ``Future.add_done_callback``), following both ``self.m()`` edges and
   cross-class ``self.attr.m()`` edges through inferred attribute types.
2. **Lock-context inference** -- a write is guarded when it happens
   inside ``with self.<lock>:`` *or* inside a private helper that every
   caller invokes with a lock held (fixpoint over call sites, so
   ``Telemetry._offer``-style helpers don't need their own lock).
3. **Lock-order consistency** -- nested ``with self.a: with self.b:``
   pairs must acquire in one global order per class.

Any attribute touched by entry-reachable code is considered shared;
every mutation of a shared attribute, from *any* method (worker side or
main thread), must then be guarded.  Attributes that are locks, or whose
type synchronizes internally (``queue.Queue``), are exempt.

:func:`classify_attrs` exports the per-attribute verdicts so the runtime
race witness can cross-check that every dynamically observed shared
write was statically accounted for.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.tools.analysis.base import Diagnostic
from repro.tools.analysis.model import ModuleModel
from repro.tools.analysis.project import AttrWrite, ClassModel, Project

#: Witness-acceptable classifications (see :func:`classify_attrs`).
SAFE_CLASSIFICATIONS = frozenset(
    {"lock", "synchronized", "guarded", "suppressed", "readonly", "unshared"}
)

_MethodKey = Tuple[str, str]  # (class qualname, method name)


class ConcurrencyAnalysis:
    """Project-wide reachability + lock inference, computed once."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.reachable: Set[_MethodKey] = set()
        self.entry_origin: Dict[str, List[str]] = {}
        self._compute_reachability()
        self.always_locked: Set[_MethodKey] = set()
        self._infer_lock_contexts()

    # -- reachability ---------------------------------------------------

    def _edges_from(self, class_model: ClassModel,
                    method_name: str) -> Iterator[_MethodKey]:
        method = class_model.methods.get(method_name)
        if method is None:
            return
        for site in method.calls:
            if site.attr is None:
                if site.method in class_model.methods:
                    yield (class_model.qualname, site.method)
            else:
                target = self.project.resolve_attr_class(class_model, site.attr)
                if target is not None and site.method in target.methods:
                    yield (target.qualname, site.method)

    def _compute_reachability(self) -> None:
        frontier: List[_MethodKey] = []
        for class_model in self.project.classes.values():
            entries = class_model.entry_methods()
            if entries:
                self.entry_origin[class_model.qualname] = entries
            for entry in entries:
                if entry in class_model.methods:
                    frontier.append((class_model.qualname, entry))
        self.reachable = set(frontier)
        while frontier:
            qualname, method_name = frontier.pop()
            class_model = self.project.classes[qualname]
            for edge in self._edges_from(class_model, method_name):
                if edge not in self.reachable:
                    self.reachable.add(edge)
                    frontier.append(edge)

    # -- lock-context inference -----------------------------------------

    def _infer_lock_contexts(self) -> None:
        # Call-site index: for each target method, who calls it and with
        # what lock context.  Entry points get a synthetic lockless site
        # (the thread runtime calls them bare).
        sites: Dict[_MethodKey, List[Tuple[Optional[_MethodKey], bool]]] = {}
        entry_keys: Set[_MethodKey] = set()
        for class_model in self.project.classes.values():
            for entry in class_model.entry_methods():
                key = (class_model.qualname, entry)
                entry_keys.add(key)
                sites.setdefault(key, []).append((None, False))
            for method in class_model.methods.values():
                caller = (class_model.qualname, method.name)
                for site in method.calls:
                    if site.attr is None:
                        if site.method not in class_model.methods:
                            continue
                        target_key = (class_model.qualname, site.method)
                    else:
                        target = self.project.resolve_attr_class(
                            class_model, site.attr
                        )
                        if target is None or site.method not in target.methods:
                            continue
                        target_key = (target.qualname, site.method)
                    sites.setdefault(target_key, []).append(
                        (caller, bool(site.locks))
                    )
        # Fixpoint: a *private* helper is always-locked when every known
        # call site either holds a lock or sits in an always-locked body.
        changed = True
        while changed:
            changed = False
            for key, callers in sites.items():
                if key in self.always_locked or key in entry_keys:
                    continue
                method_name = key[1]
                if not method_name.startswith("_") or method_name.startswith("__"):
                    # Public methods are callable from anywhere; never
                    # assume a caller-held lock for them.
                    continue
                if callers and all(
                    locked or (caller is not None and caller in self.always_locked)
                    for caller, locked in callers
                ):
                    self.always_locked.add(key)
                    changed = True

    # -- shared-state classification ------------------------------------

    def shared_attrs(self, class_model: ClassModel) -> Set[str]:
        """Attributes touched by any entry-reachable method of the class."""
        shared: Set[str] = set()
        for method in class_model.methods.values():
            if (class_model.qualname, method.name) not in self.reachable:
                continue
            shared.update(method.reads)
            shared.update(write.attr for write in method.writes)
        return shared

    def _write_guarded(self, class_model: ClassModel, method_name: str,
                       write: AttrWrite) -> bool:
        if write.locks:
            return True
        return (class_model.qualname, method_name) in self.always_locked

    def check_class(self, class_model: ClassModel) -> Iterator[Diagnostic]:
        """R009 diagnostics for one class (unfiltered by noqa)."""
        model = self.project.model_for_class(class_model.qualname)
        if model is None:
            return
        shared = self.shared_attrs(class_model)
        exempt = set(class_model.lock_attrs) | {
            attr
            for attr, kind in class_model.attr_types.items()
            if kind == "synchronized"
        }
        lock_hint = min(class_model.lock_attrs, default="_lock")
        entries = ", ".join(self.entry_origin.get(class_model.qualname, ()))
        for method in class_model.methods.values():
            if method.name == "__init__":
                continue
            for write in method.writes:
                attr = write.attr
                if attr not in shared or attr in exempt or "lock" in attr.lower():
                    continue
                if self._write_guarded(class_model, method.name, write):
                    continue
                yield Diagnostic(
                    path=str(model.path),
                    line=write.lineno,
                    code="R009",
                    message=(
                        f"unguarded mutation of shared `self.{attr}` in "
                        f"`{class_model.name}.{method.name}` (reachable from "
                        f"thread entry {entries or 'point'}); wrap in "
                        f"`with self.{lock_hint}:`"
                    ),
                )
        yield from self._check_lock_order(model, class_model)

    def _check_lock_order(self, model: ModuleModel,
                          class_model: ClassModel) -> Iterator[Diagnostic]:
        orders: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
        for method in class_model.methods.values():
            for outer, inner, lineno in method.lock_pairs:
                orders.setdefault((outer, inner), []).append((method.name, lineno))
        for (outer, inner), occurrences in sorted(orders.items()):
            reverse = orders.get((inner, outer))
            if reverse is None or outer >= inner:
                # Report each conflicting pair once, at every site of
                # both orders; self-nesting is a re-entrancy question,
                # not an ordering one.
                continue
            for method_name, lineno in occurrences + reverse:
                yield Diagnostic(
                    path=str(model.path),
                    line=lineno,
                    code="R009",
                    message=(
                        f"inconsistent lock acquisition order in "
                        f"`{class_model.name}.{method_name}`: `self.{outer}` "
                        f"and `self.{inner}` are nested in both orders"
                    ),
                )

    # -- witness export --------------------------------------------------

    def classify_attrs(self, qualname: str) -> Dict[str, str]:
        """Per-attribute static verdicts for one class.

        Returns a mapping ``attr -> classification`` with values in
        ``{"lock", "synchronized", "unshared", "readonly", "guarded",
        "suppressed", "unguarded"}``.  The runtime witness accepts a
        dynamically observed shared write only when its attribute's
        classification is in :data:`SAFE_CLASSIFICATIONS` (everything
        except ``"unguarded"``).
        """
        class_model = self.project.classes[qualname]
        model = self.project.model_for_class(qualname)
        shared = self.shared_attrs(class_model)
        verdicts: Dict[str, str] = {}
        attrs: Set[str] = set(class_model.attr_types) | shared
        for method in class_model.methods.values():
            attrs.update(write.attr for write in method.writes)
            attrs.update(method.reads)
        for attr in attrs:
            if attr in class_model.lock_attrs or "lock" in attr.lower():
                verdicts[attr] = "lock"
                continue
            if class_model.attr_types.get(attr) == "synchronized":
                verdicts[attr] = "synchronized"
                continue
            if attr not in shared:
                verdicts[attr] = "unshared"
                continue
            writes = [
                (method.name, write)
                for method in class_model.methods.values()
                if method.name != "__init__"
                for write in method.writes
                if write.attr == attr
            ]
            if not writes:
                verdicts[attr] = "readonly"
                continue
            unguarded = [
                (name, write)
                for name, write in writes
                if not self._write_guarded(class_model, name, write)
            ]
            if not unguarded:
                verdicts[attr] = "guarded"
            elif model is not None and all(
                model.suppressed(write.lineno, "R009") for _, write in unguarded
            ):
                verdicts[attr] = "suppressed"
            else:
                verdicts[attr] = "unguarded"
        return verdicts


def check_concurrency(project: Project) -> Iterator[Diagnostic]:
    """Run R009 over every class in the project (unfiltered by noqa)."""
    analysis = ConcurrencyAnalysis(project)
    for class_model in project.classes.values():
        yield from analysis.check_class(class_model)
