"""Rules R001-R008 (legacy scanner ports) plus R012/R013 (layering rules).

One visitor collects all of them in a single traversal of the shared
:class:`repro.tools.analysis.model.ModuleModel` tree.  Diagnostics are
byte-compatible with the pre-engine scanner: same codes, same anchor
lines, same messages (the per-rule alias bookkeeping the old checker
carried is subsumed by the model's :class:`ImportMap`).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.tools.analysis.base import Diagnostic
from repro.tools.analysis.model import ModuleModel, dotted_name

#: Files allowed to touch ``np.random`` directly (the RNG plumbing itself).
_RNG_ALLOWED_SUFFIXES: Tuple[Tuple[str, ...], ...] = (("utils", "rng.py"),)

#: ``core/`` files allowed to call ``np.linalg.lstsq`` directly: the
#: reference channel solver and the engine's own degenerate-Gram fallback.
_R007_ALLOWED_NAMES = frozenset({"chanest.py", "engine.py"})

#: ``gateway/`` files allowed to call ``time.perf_counter`` directly: the
#: telemetry module that wraps it as :func:`clock`.
_R008_ALLOWED_NAMES = frozenset({"telemetry.py"})

#: The module every escalation decision lives behind: gateway//server/
#: code must reach Tier 0 through :func:`repro.core.cascade.build_pipeline`
#: rather than importing/calling the fast path directly (R012).
_FASTPATH_MODULE: Tuple[str, ...] = ("repro", "core", "fastpath")

#: Modules whose use marks a file as doing resource accounting; confined
#: to ``repro/profile/`` so the places that can perturb timing or start
#: allocation tracing stay auditable (R013).
_R013_MODULES = frozenset({"tracemalloc", "resource"})

#: Terminal attribute names that make an operand a *property of* an
#: offset/bin array (its size, shape, ...) rather than the quantity itself.
_R003_EXEMPT_ATTRS = frozenset({"size", "shape", "ndim", "dtype", "len", "count"})

#: Identifier pattern that marks a value as an offset/bin quantity.
_R003_NAME = re.compile(r"offset|(?:^|_)bins?(?:$|_)")

#: Builtin generics whose subscription is PEP 585 syntax.
_PEP585_GENERICS = frozenset({"list", "dict", "tuple", "set", "frozenset", "type"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class CoreRulesVisitor(ast.NodeVisitor):
    """Single-traversal visitor for R001-R008 over one module model."""

    def __init__(self, model: ModuleModel) -> None:
        self.model = model
        path = model.path
        self.diagnostics: List[Diagnostic] = []
        self._rng_exempt = any(
            tuple(path.parts[-len(suffix):]) == suffix
            for suffix in _RNG_ALLOWED_SUFFIXES
        )
        self._docstring_scope = any(
            part in ("core", "phy") for part in path.parent.parts
        )
        self._lstsq_scope = (
            "core" in path.parent.parts and path.name not in _R007_ALLOWED_NAMES
        )
        self._perf_counter_scope = (
            "gateway" in path.parent.parts
            and "trace" not in path.parent.parts
            and path.name not in _R008_ALLOWED_NAMES
        )
        self._fastpath_scope = any(
            part in ("gateway", "server") for part in path.parent.parts
        )
        self._resource_scope = "profile" not in path.parent.parts
        # Class nesting depth, to distinguish methods from nested closures.
        self._scope_stack: List[ast.AST] = [model.tree]

    # -- plumbing ------------------------------------------------------

    def _report(self, code: str, line: int, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(path=str(self.model.path), line=line, code=code, message=message)
        )

    def _resolved(self, node: ast.expr) -> Tuple[Optional[Tuple[str, ...]], str]:
        """(fully-qualified chain or None, source spelling of the chain)."""
        chain = dotted_name(node)
        if chain is None:
            return None, ""
        return self.model.imports.resolve(chain), ".".join(chain)

    # -- R001/R007/R008: call-site discipline --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """R001/R007/R008: flag disallowed direct call targets."""
        resolved, spelled = self._resolved(node.func)
        if resolved is not None:
            if (
                not self._rng_exempt
                and len(resolved) >= 3
                and resolved[:2] == ("numpy", "random")
            ):
                self._report(
                    "R001",
                    node.lineno,
                    f"direct call to {spelled}; route randomness "
                    "through repro.utils.rng.ensure_rng",
                )
            if self._lstsq_scope and resolved == ("numpy", "linalg", "lstsq"):
                self._report(
                    "R007",
                    node.lineno,
                    f"direct call to {spelled} in core/; route the "
                    "solve through repro.core.engine (normal equations)",
                )
            if self._perf_counter_scope and resolved == ("time", "perf_counter"):
                self._report(
                    "R008",
                    node.lineno,
                    f"direct call to {spelled} in gateway/; use "
                    "repro.gateway.telemetry.clock",
                )
            if (
                self._fastpath_scope
                and resolved[: len(_FASTPATH_MODULE)] == _FASTPATH_MODULE
            ):
                self._report(
                    "R012",
                    node.lineno,
                    f"direct call to {spelled} outside the cascade; select "
                    "tiers via repro.core.cascade.build_pipeline",
                )
            if self._resource_scope and (
                resolved == ("time", "process_time")
                or resolved[0] in _R013_MODULES
            ):
                self._report(
                    "R013",
                    node.lineno,
                    f"direct call to {spelled} outside repro/profile/; use "
                    "repro.profile.resources (ResourceAccountant, "
                    "process_cpu, peak_rss_kb)",
                )
        self.generic_visit(node)

    # -- R012: escalation decisions stay inside the cascade ------------

    def _check_fastpath_import(self, line: int, module: Tuple[str, ...]) -> None:
        if (
            self._fastpath_scope
            and module[: len(_FASTPATH_MODULE)] == _FASTPATH_MODULE
        ):
            self._report(
                "R012",
                line,
                "repro.core.fastpath imported outside the cascade; select "
                "tiers via repro.core.cascade.build_pipeline",
            )

    def _check_resource_import(self, line: int, module: Tuple[str, ...]) -> None:
        """R013: resource-accounting modules imported outside profile/."""
        if self._resource_scope and module[0] in _R013_MODULES:
            self._report(
                "R013",
                line,
                f"`{module[0]}` imported outside repro/profile/; route "
                "resource accounting through repro.profile.resources",
            )

    def visit_Import(self, node: ast.Import) -> None:
        """R012/R013: disallowed module imports for this file's layer."""
        for alias in node.names:
            chain = tuple(alias.name.split("."))
            self._check_fastpath_import(node.lineno, chain)
            self._check_resource_import(node.lineno, chain)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """R012/R013: `from <module> import ...` forms of the same.

        R012 additionally catches ``from repro.core import fastpath``;
        R013 flags any ``from tracemalloc//resource/ import ...``."""
        if node.module is None or node.level:
            self.generic_visit(node)
            return
        base = tuple(node.module.split("."))
        self._check_resource_import(node.lineno, base)
        if base[: len(_FASTPATH_MODULE)] == _FASTPATH_MODULE:
            self._check_fastpath_import(node.lineno, base)
        else:
            for alias in node.names:
                self._check_fastpath_import(node.lineno, base + (alias.name,))
        self.generic_visit(node)

    # -- R002: future annotations --------------------------------------

    def _check_annotation(self, annotation: Optional[ast.expr]) -> None:
        if annotation is None or self.model.has_future_annotations:
            return
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitOr):
                self._report(
                    "R002",
                    sub.lineno,
                    "PEP 604 union in annotation requires "
                    "`from __future__ import annotations`",
                )
                return
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in _PEP585_GENERICS
            ):
                self._report(
                    "R002",
                    sub.lineno,
                    f"PEP 585 `{sub.value.id}[...]` annotation requires "
                    "`from __future__ import annotations`",
                )
                return

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """R002: modern annotation syntax needs the future import."""
        self._check_annotation(node.annotation)
        self.generic_visit(node)

    # -- R003: float equality on offsets/bins --------------------------

    @staticmethod
    def _quantity_name(node: ast.expr) -> Optional[str]:
        """Terminal identifier of an operand, if it is a name/attribute."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            if node.attr in _R003_EXEMPT_ATTRS:
                return None
            return node.attr
        # len(x), int(x), x.round() ... treat as non-quantity; exact
        # equality on derived integers is legitimate.
        return None

    def _is_offset_quantity(self, node: ast.expr) -> bool:
        name = self._quantity_name(node)
        return name is not None and bool(_R003_NAME.search(name.lower()))

    def visit_Compare(self, node: ast.Compare) -> None:
        """R003: exact equality on offset/bin quantities."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(
                isinstance(other, ast.Constant)
                and (other.value is None or isinstance(other.value, (str, bool)))
                for other in pair
            ):
                continue
            if any(self._is_offset_quantity(operand) for operand in pair):
                self._report(
                    "R003",
                    node.lineno,
                    "exact ==/!= on an offset/bin quantity; use "
                    "circular_distance / np.isclose with a tolerance",
                )
        self.generic_visit(node)

    # -- R004/R006: function-level rules -------------------------------

    def _visit_function(self, node: _FunctionNode) -> None:
        self._check_mutable_defaults(node)
        self._check_docstring(node)
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
            node.args.vararg,
            node.args.kwarg,
        ]:
            if arg is not None:
                self._check_annotation(arg.annotation)
        self._check_annotation(node.returns)
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """R004/R006 plus annotation checks for a function."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """R004/R006 plus annotation checks for an async function."""
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track class scope so R006 sees methods as public items."""
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def _check_mutable_defaults(self, node: _FunctionNode) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._report(
                    "R004",
                    default.lineno,
                    f"mutable default argument in `{node.name}`; default to "
                    "None and build inside the function",
                )

    def _check_docstring(self, node: _FunctionNode) -> None:
        if not self._docstring_scope or node.name.startswith("_"):
            return
        # Only module-level functions and class methods; nested closures
        # are implementation detail.
        if not isinstance(self._scope_stack[-1], (ast.Module, ast.ClassDef)):
            return
        if not ast.get_docstring(node):
            self._report(
                "R006",
                node.lineno,
                f"public function `{node.name}` in core/phy has no docstring",
            )

    # -- R005: bare except ---------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """R005: bare except clauses."""
        if node.type is None:
            self._report(
                "R005",
                node.lineno,
                "bare `except:`; name the exception types (or `Exception`)",
            )
        self.generic_visit(node)


def check_core_rules(model: ModuleModel) -> Iterator[Diagnostic]:
    """Run R001-R008, R012 and R013 over one module model."""
    visitor = CoreRulesVisitor(model)
    visitor.visit(model.tree)
    return iter(visitor.diagnostics)


__all__: Sequence[str] = ("CoreRulesVisitor", "check_core_rules")
