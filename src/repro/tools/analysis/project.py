"""Cross-module program model: classes, attribute dataflow, thread entries.

Where :mod:`repro.tools.analysis.model` answers single-module questions
(imports, suppression), this module builds the *project* view the
concurrency pass needs:

* a class index across every analyzed module (``repro.gateway.workers.
  DecodeWorkerPool`` -> :class:`ClassModel`),
* per-class attribute dataflow: every ``self.x`` mutation site with the
  set of class locks held at that point, every ``self.x`` read, and the
  inferred type of each attribute (from ``__init__`` construction or
  parameter annotations) so calls through ``self.attr.method()`` can be
  resolved cross-class,
* thread entry points: methods registered via ``threading.Thread(
  target=self.m)`` / ``threading.Timer`` / ``Future.add_done_callback``.

Everything is a deliberately shallow abstract interpretation -- enough to
drive call-graph reachability and lock-context inference without a full
type system.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.tools.analysis.model import ModuleModel, dotted_name

#: Method names on ``self.<attr>`` that mutate the attribute in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "write",
    }
)

#: Constructors whose instances synchronize internally (mutating them
#: without the class lock is safe by design).
SYNCHRONIZED_TYPES = frozenset(
    {
        ("queue", "Queue"),
        ("queue", "LifoQueue"),
        ("queue", "PriorityQueue"),
        ("queue", "SimpleQueue"),
    }
)

#: Constructors that make an attribute a lock (acquiring it opens a
#: guarded region; mutating it is not itself a shared write).
LOCK_TYPES = frozenset(
    {
        ("threading", "Lock"),
        ("threading", "RLock"),
        ("threading", "Condition"),
        ("threading", "Semaphore"),
        ("threading", "BoundedSemaphore"),
    }
)

#: Thread-spawning constructors whose ``target=`` is an entry point.
_THREAD_TYPES = frozenset({("threading", "Thread"), ("threading", "Timer")})


@dataclass(frozen=True)
class AttrWrite:
    """One mutation of ``self.<attr>`` inside a method body."""

    attr: str
    lineno: int
    kind: str  # "assign" | "augassign" | "setitem" | "delete" | "mutcall"
    locks: Tuple[str, ...]  # class lock attrs held at the write


@dataclass(frozen=True)
class CallSite:
    """One ``self.m(...)`` or ``self.attr.m(...)`` call inside a method."""

    attr: Optional[str]  # None for direct self.m() calls
    method: str
    lineno: int
    locks: Tuple[str, ...]


@dataclass
class MethodModel:
    """Dataflow facts about one method body."""

    name: str
    node: ast.AST
    writes: List[AttrWrite] = field(default_factory=list)
    reads: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)
    lock_pairs: List[Tuple[str, str, int]] = field(default_factory=list)
    thread_targets: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassModel:
    """One class's attribute dataflow and lock discipline."""

    name: str
    qualname: str  # module.Class
    module: str
    node: ast.ClassDef
    methods: Dict[str, MethodModel] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)

    def entry_methods(self) -> List[str]:
        """Methods registered anywhere in the class as thread targets."""
        found: List[str] = []
        for method in self.methods.values():
            for target, _ in method.thread_targets:
                if target not in found:
                    found.append(target)
        return found


def _is_lockish(class_model: ClassModel, attr: str) -> bool:
    return attr in class_model.lock_attrs or "lock" in attr.lower()


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"``; None otherwise."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _AnnotationType:
    """Extract a nominal class name from a parameter annotation."""

    @staticmethod
    def extract(model: ModuleModel, annotation: Optional[ast.expr]) -> Optional[str]:
        """Resolve ``X`` / ``Optional[X]`` / ``X | None`` / ``"X"`` to a FQN."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            head = dotted_name(annotation.value)
            if head is not None and head[-1] in ("Optional", "Union"):
                inner = annotation.slice
                elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                for elt in elts:
                    found = _AnnotationType.extract(model, elt)
                    if found is not None:
                        return found
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return _AnnotationType.extract(
                model, annotation.left
            ) or _AnnotationType.extract(model, annotation.right)
        chain = dotted_name(annotation)
        if chain is None:
            return None
        if chain[-1] == "None":
            return None
        return _qualify(model, chain)


def _qualify(model: ModuleModel, chain: Tuple[str, ...]) -> Optional[str]:
    """Fully-qualified dotted name for ``chain``, or module-local fallback."""
    resolved = model.imports.resolve(chain)
    if resolved is not None:
        return ".".join(resolved)
    if len(chain) == 1:
        # A name defined in this module (class or function).
        return f"{model.module_name}.{chain[0]}" if model.module_name else chain[0]
    return None


class _MethodVisitor(ast.NodeVisitor):
    """Collect dataflow facts for one method body, tracking held locks."""

    def __init__(self, model: ModuleModel, class_model: ClassModel,
                 method: MethodModel) -> None:
        self.model = model
        self.class_model = class_model
        self.method = method
        self._locks: List[str] = []

    # -- lock tracking --------------------------------------------------

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: List[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and _is_lockish(self.class_model, attr):
                for held in self._locks:
                    self.method.lock_pairs.append((held, attr, item.context_expr.lineno))
                acquired.append(attr)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._locks.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self._locks.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # -- writes ---------------------------------------------------------

    def _record_write(self, attr: str, lineno: int, kind: str) -> None:
        self.method.writes.append(
            AttrWrite(attr=attr, lineno=lineno, kind=kind, locks=tuple(self._locks))
        )

    def _handle_target(self, target: ast.expr, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(elt, kind)
            return
        if isinstance(target, ast.Starred):
            self._handle_target(target.value, kind)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record_write(attr, target.lineno, kind)
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._record_write(attr, target.lineno, "setitem")
            else:
                self.visit(target.value)
            self.visit(target.slice)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_target(target, "assign")
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_target(node.target, "augassign")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_target(node.target, "assign")
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._handle_target(target, "delete")

    # -- reads ----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self.method.reads.add(attr)
        self.generic_visit(node)

    # -- calls and thread entries ---------------------------------------

    def _entry_targets_in(self, node: ast.expr) -> List[str]:
        """Self-method names referenced by a callback argument."""
        attr = _self_attr(node)
        if attr is not None:
            return [attr]
        if isinstance(node, ast.Lambda):
            found: List[str] = []
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call):
                    called = _self_attr(sub.func)
                    if called is not None:
                        found.append(called)
            return found
        return []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # self.m(...) and self.attr.m(...)
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func)
            if attr is not None:
                self.method.calls.append(
                    CallSite(attr=None, method=attr, lineno=node.lineno,
                             locks=tuple(self._locks))
                )
                if attr in MUTATING_METHODS:
                    # self.append(...)-style mutation of the instance
                    # itself; rare, treated as a write to the method name.
                    pass
            else:
                owner = _self_attr(func.value)
                if owner is not None:
                    self.method.calls.append(
                        CallSite(attr=owner, method=func.attr, lineno=node.lineno,
                                 locks=tuple(self._locks))
                    )
                    if func.attr in MUTATING_METHODS:
                        self._record_write(owner, node.lineno, "mutcall")
            if func.attr == "add_done_callback" and node.args:
                for target in self._entry_targets_in(node.args[0]):
                    self.method.thread_targets.append((target, node.lineno))
        # threading.Thread(target=self.m) / threading.Timer(..., self.m)
        chain = dotted_name(func)
        if chain is not None:
            resolved = self.model.imports.resolve(chain)
            if resolved is not None and tuple(resolved) in _THREAD_TYPES:
                candidates: List[ast.expr] = [
                    kw.value for kw in node.keywords if kw.arg == "target"
                ]
                if tuple(resolved) == ("threading", "Timer") and len(node.args) >= 2:
                    candidates.append(node.args[1])
                for candidate in candidates:
                    for target in self._entry_targets_in(candidate):
                        self.method.thread_targets.append((target, node.lineno))
        self.generic_visit(node)


class _InitScanner:
    """Sequential scan of ``__init__`` inferring attribute types."""

    def __init__(self, model: ModuleModel, class_model: ClassModel,
                 node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.model = model
        self.class_model = class_model
        self.env: Dict[str, Optional[str]] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.env[arg.arg] = _AnnotationType.extract(model, arg.annotation)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                inferred = self._infer(stmt.value)
                for target in stmt.targets:
                    self._apply(target, inferred, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._apply(stmt.target, self._infer(stmt.value), stmt.value)

    def _apply(self, target: ast.expr, inferred: Optional[str],
               value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = inferred
            return
        attr = _self_attr(target)
        if attr is None:
            return
        if inferred is not None:
            self.class_model.attr_types.setdefault(attr, inferred)
        # Lock/synchronized detection wants the *constructor*, which the
        # FQN string already encodes.
        chain = self._ctor_chain(value)
        if chain is not None:
            if chain in LOCK_TYPES:
                self.class_model.lock_attrs.add(attr)
            elif chain in SYNCHRONIZED_TYPES:
                self.class_model.attr_types[attr] = "synchronized"

    def _ctor_chain(self, value: ast.expr) -> Optional[Tuple[str, ...]]:
        if isinstance(value, ast.IfExp):
            return self._ctor_chain(value.body) or self._ctor_chain(value.orelse)
        if not isinstance(value, ast.Call):
            return None
        chain = dotted_name(value.func)
        if chain is None:
            return None
        resolved = self.model.imports.resolve(chain)
        return tuple(resolved) if resolved is not None else tuple(chain)

    def _infer(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.IfExp):
            return self._infer(value.body) or self._infer(value.orelse)
        if isinstance(value, ast.Name):
            return self.env.get(value.id)
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            if chain is None:
                return None
            if tuple(chain) in SYNCHRONIZED_TYPES:
                return "synchronized"
            qualified = _qualify(self.model, chain)
            resolved = self.model.imports.resolve(chain)
            if resolved is not None and tuple(resolved) in SYNCHRONIZED_TYPES:
                return "synchronized"
            return qualified
        return None


def build_class_model(model: ModuleModel, node: ast.ClassDef) -> ClassModel:
    """Analyze one class body into a :class:`ClassModel`."""
    class_model = ClassModel(
        name=node.name,
        qualname=(
            f"{model.module_name}.{node.name}" if model.module_name else node.name
        ),
        module=model.module_name,
        node=node,
    )
    methods = [
        stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # Two passes: locks/attr types first (so method bodies know which
    # attributes are locks), then the dataflow walk of every method.
    for stmt in methods:
        if stmt.name == "__init__":
            _InitScanner(model, class_model, stmt)
    for stmt in methods:
        method = MethodModel(name=stmt.name, node=stmt)
        visitor = _MethodVisitor(model, class_model, method)
        for body_stmt in stmt.body:
            visitor.visit(body_stmt)
        class_model.methods[stmt.name] = method
    return class_model


class Project:
    """All analyzed modules plus the cross-module class index."""

    def __init__(self, models: Sequence[ModuleModel]) -> None:
        self.models: List[ModuleModel] = list(models)
        self.by_module: Dict[str, ModuleModel] = {
            model.module_name: model for model in self.models
        }
        self.classes: Dict[str, ClassModel] = {}
        self._class_module: Dict[str, ModuleModel] = {}
        for model in self.models:
            for node in model.tree.body:
                if isinstance(node, ast.ClassDef):
                    class_model = build_class_model(model, node)
                    self.classes[class_model.qualname] = class_model
                    self._class_module[class_model.qualname] = model

    def model_for_class(self, qualname: str) -> Optional[ModuleModel]:
        """The module model a class was parsed from."""
        return self._class_module.get(qualname)

    def resolve_attr_class(self, class_model: ClassModel,
                           attr: str) -> Optional[ClassModel]:
        """The :class:`ClassModel` behind ``self.<attr>``, when inferable."""
        target = class_model.attr_types.get(attr)
        if target is None or target == "synchronized":
            return None
        return self.classes.get(target)
