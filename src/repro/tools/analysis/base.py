"""Shared vocabulary of the analysis engine: diagnostics and the rule catalog.

Every pass in :mod:`repro.tools.analysis` reports findings as
:class:`Diagnostic` values rendered ``file:line:code message`` -- the
same canonical form the original single-file linter used, so editor
integrations and the CI grep surface are unchanged by the engine
migration.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The full rule catalog.  R001-R008 predate the AST engine (their
#: diagnostics are byte-compatible with the legacy scanner); R009-R011
#: are the dataflow passes the engine exists for.
RULES: dict[str, str] = {
    "R001": "direct np.random call outside utils/rng.py; route through ensure_rng",
    "R002": "PEP 604/585 annotation syntax without `from __future__ import annotations`",
    "R003": "float equality on offset/bin quantity; use a tolerance compare",
    "R004": "mutable default argument",
    "R005": "bare `except:` clause",
    "R006": "public function in core/ or phy/ missing a docstring",
    "R007": "np.linalg.lstsq in core/ outside chanest.py/engine.py; "
    "use repro.core.engine",
    "R008": "time.perf_counter in gateway/ outside telemetry.py; "
    "use repro.gateway.telemetry.clock",
    "R009": "unguarded shared-state mutation reachable from a thread entry "
    "point, or inconsistent lock acquisition order",
    "R010": "nondeterminism in a decode path: unordered set iteration "
    "feeding ordered output, id()-keyed sorting, or RNG not derived "
    "via derive_rng/ensure_rng",
    "R011": "implicit complex64 -> complex128 upcast in a core//phy/ hot "
    "kernel (float64/complex128 operand mixed into complex64 data)",
    "R012": "repro.core.fastpath used from gateway//server/ code; tier "
    "selection and escalation belong to repro.core.cascade.build_pipeline",
    "R013": "tracemalloc/resource/time.process_time outside repro/profile/; "
    "route resource accounting through repro.profile.resources",
}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, formatted as ``file:line:code message``."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``file:line:code message`` form."""
        return f"{self.path}:{self.line}:{self.code} {self.message}"
