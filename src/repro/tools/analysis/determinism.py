"""R010: determinism hazards in decode paths.

Three hazard families, all of which have bitten reproduction pipelines
before (identical inputs, different outputs across runs or machines):

* **Stray RNG state** -- constructing stdlib ``random`` state instead of
  deriving a generator through ``repro.utils.rng.derive_rng`` /
  ``ensure_rng`` breaks the per-job seed-tree contract (``np.random``
  is already policed by R001).
* **id()-keyed ordering** -- ``sorted(xs, key=id)`` orders by memory
  address, which varies run to run.
* **Unordered iteration feeding ordered output** -- iterating a ``set``
  into a list/tuple/dict or a loop body makes the output order depend on
  hash seeding and insertion history.  Iteration is fine when it flows
  through an order-insensitive sink (``sorted``, ``min``, ``max``,
  ``sum``, ``len``, ``any``, ``all``, or back into a set).

The pass is scoped to runtime packages: the analysis tooling itself
(``tools/``) and the RNG plumbing (``utils/rng.py``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.tools.analysis.base import Diagnostic
from repro.tools.analysis.model import ModuleModel, dotted_name

#: stdlib ``random`` module members whose call sites create or consume
#: process-global (or ad hoc) RNG state.
_STDLIB_RNG = frozenset(
    {
        "Random",
        "SystemRandom",
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
    }
)

#: Builtins that consume an iterable without exposing its order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Ordering-sensitive sort entry points whose ``key=`` we inspect.
_SORTERS = frozenset({"sorted", "min", "max"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_set_builtin_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _key_uses_id(key: ast.expr) -> bool:
    """Whether a sort ``key=`` argument is ``id`` or closes over ``id(...)``."""
    if isinstance(key, ast.Name) and key.id == "id":
        return True
    if isinstance(key, ast.Lambda):
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
            for sub in ast.walk(key.body)
        )
    return False


class DeterminismVisitor(ast.NodeVisitor):
    """Single traversal collecting every R010 hazard in one module."""

    def __init__(self, model: ModuleModel) -> None:
        self.model = model
        self.diagnostics: List[Diagnostic] = []
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(model.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        # Per-function name -> "is set-typed" inference; module scope is
        # the outermost frame.
        self._set_names: List[Set[str]] = [self._collect_set_names(model.tree)]

    # -- plumbing -------------------------------------------------------

    def _report(self, line: int, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                path=str(self.model.path), line=line, code="R010", message=message
            )
        )

    def _collect_set_names(self, scope: ast.AST) -> Set[str]:
        """Names bound to set expressions anywhere in ``scope``.

        A name also bound to a non-set value anywhere is dropped again:
        ambiguity must not produce false positives.
        """
        bound: Set[str] = set()
        ambiguous: Set[str] = set()
        stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes track their own bindings
            if isinstance(node, ast.Assign):
                is_set = self._is_unordered(node.value, track_names=False)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        (bound if is_set else ambiguous).add(target.id)
            stack.extend(ast.iter_child_nodes(node))
        return bound - ambiguous

    def _is_unordered(self, node: ast.expr, track_names: bool = True) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if _is_set_builtin_call(node):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra preserves unorderedness.
            return self._is_unordered(node.left, track_names) or self._is_unordered(
                node.right, track_names
            )
        if track_names and isinstance(node, ast.Name):
            return any(node.id in frame for frame in self._set_names)
        return False

    def _sanitized(self, node: ast.AST) -> bool:
        """Whether an enclosing call is order-insensitive."""
        current: Optional[ast.AST] = node
        while current is not None:
            parent = self._parents.get(id(current))
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE
            ):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            current = parent
        return False

    # -- scope handling -------------------------------------------------

    def _visit_scope(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self._set_names.append(self._collect_set_names(node))
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Enter a new function scope for set-name tracking."""
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Enter a new async-function scope for set-name tracking."""
        self._visit_scope(node)

    # -- stray RNG state ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Check stray RNG construction, id()-keyed sorts, list(set)."""
        chain = dotted_name(node.func)
        if chain is not None:
            resolved = self.model.imports.resolve(chain)
            if (
                resolved is not None
                and len(resolved) == 2
                and resolved[0] == "random"
                and resolved[1] in _STDLIB_RNG
            ):
                self._report(
                    node.lineno,
                    f"`{'.'.join(chain)}` creates RNG state outside the "
                    "seed tree; derive a generator via "
                    "repro.utils.rng.derive_rng/ensure_rng",
                )
        self._check_sort_key(node)
        self._check_materialize(node)
        self.generic_visit(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        is_sorter = (
            isinstance(node.func, ast.Name) and node.func.id in _SORTERS
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if not is_sorter:
            return
        for keyword in node.keywords:
            if keyword.arg == "key" and _key_uses_id(keyword.value):
                self._report(
                    node.lineno,
                    "id()-keyed ordering depends on memory addresses; "
                    "sort by a stable key",
                )

    # -- unordered iteration feeding ordered output ---------------------

    def _report_set_iteration(self, node: ast.AST, what: str) -> None:
        self._report(
            node.lineno,
            f"{what} iterates an unordered set into an ordered output; "
            "wrap in sorted(...) or use a deterministic container",
        )

    def _check_materialize(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and self._is_unordered(node.args[0])
            and not self._sanitized(node)
        ):
            self._report_set_iteration(node, f"{node.func.id}(...)")

    def visit_For(self, node: ast.For) -> None:
        """Flag for-loops that iterate an unordered set directly."""
        if self._is_unordered(node.iter) and not self._sanitized(node):
            self._report_set_iteration(node, "for loop")
        self.generic_visit(node)

    def _check_comprehension(
        self, node: Union[ast.ListComp, ast.GeneratorExp, ast.DictComp]
    ) -> None:
        if self._sanitized(node):
            return
        kind = {
            ast.ListComp: "list comprehension",
            ast.GeneratorExp: "generator expression",
            ast.DictComp: "dict comprehension",
        }[type(node)]
        for generator in node.generators:
            if self._is_unordered(generator.iter):
                self._report_set_iteration(node, kind)
                return

    def visit_ListComp(self, node: ast.ListComp) -> None:
        """Flag list comprehensions over unordered sets."""
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        """Flag generator expressions over unordered sets."""
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        """Flag dict comprehensions over unordered sets."""
        self._check_comprehension(node)
        self.generic_visit(node)


#: Files exempt from R010: the RNG plumbing itself.
_R010_ALLOWED_SUFFIXES: Tuple[Tuple[str, ...], ...] = (("utils", "rng.py"),)


def check_determinism(model: ModuleModel) -> Iterator[Diagnostic]:
    """Run R010 over one module model (unfiltered by noqa)."""
    path = model.path
    if "tools" in path.parts:
        return iter(())
    if any(
        tuple(path.parts[-len(suffix):]) == suffix
        for suffix in _R010_ALLOWED_SUFFIXES
    ):
        return iter(())
    visitor = DeterminismVisitor(model)
    visitor.visit(model.tree)
    return iter(visitor.diagnostics)
