"""AST dataflow analysis engine behind ``repro-lint``.

Layout:

* :mod:`~repro.tools.analysis.base` -- rule catalog + :class:`Diagnostic`
* :mod:`~repro.tools.analysis.model` -- per-module parse/import/noqa model
* :mod:`~repro.tools.analysis.project` -- cross-module class index,
  attribute dataflow, thread entry points
* :mod:`~repro.tools.analysis.rules_core` -- R001-R008 (legacy rules)
* :mod:`~repro.tools.analysis.concurrency` -- R009 lock discipline
* :mod:`~repro.tools.analysis.determinism` -- R010 determinism hazards
* :mod:`~repro.tools.analysis.dtypes` -- R011 complex64 upcast contract
* :mod:`~repro.tools.analysis.engine` -- driver (parse once, run all)
* :mod:`~repro.tools.analysis.cli` -- the ``repro-lint`` entry point
* :mod:`~repro.tools.analysis.witness` -- runtime race witness
"""

from repro.tools.analysis.base import RULES, Diagnostic
from repro.tools.analysis.cli import main
from repro.tools.analysis.engine import lint_paths, lint_source

__all__ = ["RULES", "Diagnostic", "lint_paths", "lint_source", "main"]
