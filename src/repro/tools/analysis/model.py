"""Per-module AST model: one parse, shared by every rule.

The engine parses each file exactly once into a :class:`ModuleModel` and
hands the same model to every pass.  The model owns the three things all
rules need and no rule should rebuild:

* the parse tree and raw source lines,
* an :class:`ImportMap` resolving local names through ``import``/
  ``from-import`` aliases to fully-qualified dotted names, and
* the suppression map: ``# noqa`` / ``# noqa: R003,R009`` comments,
  applied to the *full logical line* of multi-line statements (a
  suppression on any physical line of a wrapped statement covers a
  diagnostic anchored to that statement's first line).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Statement types whose full source span is one logical line (no body).
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Pass,
    ast.Break,
    ast.Continue,
)


def dotted_name(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` into ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def line_noqa(source_line: str) -> Optional[frozenset[str]]:
    """Codes suppressed by a ``# noqa`` comment (empty set == all codes)."""
    match = _NOQA.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


class ImportMap:
    """Local-name -> fully-qualified dotted-name resolution for one module.

    ``import numpy.random as nr`` binds ``nr -> ("numpy", "random")``;
    ``from numpy.random import default_rng as mk`` binds
    ``mk -> ("numpy", "random", "default_rng")``; plain ``import numpy.x``
    binds the top-level ``numpy``.  :meth:`resolve` qualifies an attribute
    chain through those bindings, returning ``None`` for purely local
    names.
    """

    def __init__(self, module_name: str = "") -> None:
        self.module_name = module_name
        self._modules: Dict[str, Tuple[str, ...]] = {}
        self._objects: Dict[str, Tuple[str, ...]] = {}

    def add_import(self, node: ast.Import) -> None:
        """Record one ``import a.b [as c]`` statement."""
        for alias in node.names:
            parts = tuple(alias.name.split("."))
            if alias.asname is not None:
                self._modules[alias.asname] = parts
            else:
                self._modules[parts[0]] = (parts[0],)

    def add_import_from(self, node: ast.ImportFrom) -> None:
        """Record one ``from a.b import c [as d]`` statement."""
        if node.level:
            # Relative import: anchor on this module's package when known.
            package = tuple(self.module_name.split(".")[: -node.level])
            if not package and not self.module_name:
                return
            base = package + tuple((node.module or "").split(".") if node.module else ())
        else:
            base = tuple((node.module or "").split("."))
        for alias in node.names:
            if alias.name == "*":
                continue
            self._objects[alias.asname or alias.name] = base + (alias.name,)

    def resolve(self, chain: Tuple[str, ...]) -> Optional[Tuple[str, ...]]:
        """Fully qualify ``chain`` through the import bindings, or None."""
        if not chain:
            return None
        head = chain[0]
        target = self._objects.get(head)
        if target is None:
            target = self._modules.get(head)
        if target is None:
            return None
        return target + tuple(chain[1:])

    def resolve_name(self, chain: Tuple[str, ...]) -> str:
        """:meth:`resolve` joined with dots; the original chain if local."""
        resolved = self.resolve(chain)
        return ".".join(resolved if resolved is not None else chain)


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``src/repro/a/b.py`` -> ``repro.a.b``).

    Falls back to the bare stem for paths outside a recognizable package
    root, which keeps fixture files in temp directories addressable.
    """
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    for root in ("repro", "src"):
        if root in stem_parts:
            idx = stem_parts.index(root)
            chosen = stem_parts[idx + 1 :] if root == "src" else stem_parts[idx:]
            if chosen:
                if chosen[-1] == "__init__":
                    chosen = chosen[:-1]
                return ".".join(chosen)
    return path.stem if path.stem != "__init__" else (parts[-2] if len(parts) > 1 else "")


class ModuleModel:
    """Everything the rule passes need about one parsed module."""

    def __init__(self, path: Path, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source_lines: List[str] = source.splitlines()
        self.module_name = module_name_for(path)
        self.imports = ImportMap(self.module_name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self.imports.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                self.imports.add_import_from(node)
        self.has_future_annotations = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "__future__"
            and any(alias.name == "annotations" for alias in node.names)
            for node in tree.body
        )
        self._noqa: Dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.source_lines, start=1):
            codes = line_noqa(line)
            if codes is not None:
                self._noqa[lineno] = codes
        self._span_of: Dict[int, Tuple[int, int]] = {}
        self._index_logical_lines()

    # ------------------------------------------------------------------
    # Logical-line indexing for multi-line noqa
    # ------------------------------------------------------------------
    def _record_span(self, start: int, end: int) -> None:
        if end < start:
            end = start
        for line in range(start, end + 1):
            existing = self._span_of.get(line)
            if existing is None or (end - start) < (existing[1] - existing[0]):
                self._span_of[line] = (start, end)

    def _index_logical_lines(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, _SIMPLE_STMTS):
                self._record_span(node.lineno, node.end_lineno or node.lineno)
            elif isinstance(node, (ast.If, ast.While)):
                self._record_span(node.lineno, node.test.end_lineno or node.lineno)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._record_span(node.lineno, node.iter.end_lineno or node.lineno)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                end = max(
                    (item.context_expr.end_lineno or node.lineno)
                    for item in node.items
                )
                self._record_span(node.lineno, end)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # The header logical line runs from `def`/`class` to the
                # line before the first body statement (the signature,
                # however many physical lines it wraps).
                self._record_span(node.lineno, node.body[0].lineno - 1)

    # ------------------------------------------------------------------
    # Suppression
    # ------------------------------------------------------------------
    def _noqa_covers(self, lineno: int, code: str) -> bool:
        codes = self._noqa.get(lineno)
        return codes is not None and (not codes or code in codes)

    def suppressed(self, lineno: int, code: str) -> bool:
        """Whether a diagnostic at ``lineno`` for ``code`` is noqa'd.

        A suppression comment counts when it sits on the diagnostic's
        physical line *or* on any physical line of the logical statement
        containing it (so ``# noqa`` at the end of a wrapped call covers
        a diagnostic anchored to the call's first line).
        """
        if self._noqa_covers(lineno, code):
            return True
        span = self._span_of.get(lineno)
        if span is None:
            return False
        return any(
            self._noqa_covers(line, code) for line in range(span[0], span[1] + 1)
        )

    # ------------------------------------------------------------------
    # Path scopes shared by several rules
    # ------------------------------------------------------------------
    def in_packages(self, names: Iterable[str]) -> bool:
        """Whether this module sits under any of the named directories."""
        parts = set(self.path.parent.parts)
        return any(name in parts for name in names)
