"""Runtime race witness: dynamic cross-check of the R009 verdicts.

Static analysis says which shared attributes of a worker pool are
lock-guarded; the witness checks the claim against reality.  It
instruments a live object (normally a
:class:`~repro.gateway.workers.DecodeWorkerPool`) under a test flag:

* every lock attribute is wrapped in a :class:`LockProxy` that tracks,
  per thread, which locks are currently held;
* every list/dict attribute is wrapped in an observing container that
  reports in-place mutations;
* the instance's class is swapped for a generated subclass whose
  ``__setattr__`` reports attribute rebinds;

producing a happens-before log: a globally sequenced stream of
:class:`WriteEvent` records, each stamped with the writing thread and
the lock set it held.  :func:`cross_check` then demands that every
*dynamically shared* write (an attribute written outside the thread
that attached the witness, or by two different threads) was statically
classified as safe -- guarded, suppressed with justification,
synchronized, or a lock itself.  Anything else is an unclassified
shared write: either a real race or a blind spot in R009.  Both fail
the witness test.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple, Type

from repro.tools.analysis.concurrency import SAFE_CLASSIFICATIONS, ConcurrencyAnalysis
from repro.tools.analysis.engine import _iter_python_files, build_module_model
from repro.tools.analysis.project import Project

_LOCK_TYPES = (
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Condition,
    threading.Semaphore,
)


@dataclass(frozen=True)
class WriteEvent:
    """One observed mutation, stamped for happens-before reconstruction."""

    seq: int
    thread: int
    attr: str
    kind: str  # "rebind" | "mutate" | "acquire" | "release"
    locks: FrozenSet[str]


class Witness:
    """Event recorder shared by every proxy attached to one object."""

    def __init__(self) -> None:
        self.events: List[WriteEvent] = []
        self.attached_thread = threading.get_ident()
        self._seq = 0
        self._log_lock = threading.Lock()
        self._tls = threading.local()

    # -- lock bookkeeping -----------------------------------------------

    def _held(self) -> Set[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = set()
            self._tls.held = held
        return held

    def record(self, attr: str, kind: str) -> None:
        """Append one event to the happens-before log."""
        with self._log_lock:
            self._seq += 1
            self.events.append(
                WriteEvent(
                    seq=self._seq,
                    thread=threading.get_ident(),
                    attr=attr,
                    kind=kind,
                    locks=frozenset(self._held()),
                )
            )

    # -- verdicts -------------------------------------------------------

    def write_events(self) -> List[WriteEvent]:
        """All rebind/mutate events (lock traffic filtered out)."""
        return [e for e in self.events if e.kind in ("rebind", "mutate")]

    def shared_written_attrs(self) -> List[str]:
        """Attributes written outside the attaching thread (or by 2+ threads)."""
        writers: Dict[str, Set[int]] = {}
        for event in self.write_events():
            writers.setdefault(event.attr, set()).add(event.thread)
        return sorted(
            attr
            for attr, threads in writers.items()
            if len(threads) > 1 or threads != {self.attached_thread}
        )

    def unguarded_shared_writes(self) -> List[WriteEvent]:
        """Shared writes performed while holding no lock at all."""
        shared = set(self.shared_written_attrs())
        return [
            e for e in self.write_events() if e.attr in shared and not e.locks
        ]


class LockProxy:
    """Wraps a real lock; mirrors acquire/release into the witness log."""

    def __init__(self, witness: Witness, name: str, real: Any) -> None:
        self._witness = witness
        self._name = name
        self._real = real

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        """Acquire the real lock, then log the acquisition."""
        acquired = self._real.acquire(*args, **kwargs)
        if acquired:
            self._witness._held().add(self._name)
            self._witness.record(self._name, "acquire")
        return acquired

    def release(self) -> None:
        """Log the release, then release the real lock."""
        self._witness.record(self._name, "release")
        self._witness._held().discard(self._name)
        self._real.release()

    def __enter__(self) -> "LockProxy":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._real, item)


class ObservedList(list):
    """List that reports in-place mutation to the witness."""

    def __init__(self, witness: Witness, attr: str,
                 items: Iterable[Any] = ()) -> None:
        super().__init__(items)
        self._witness = witness
        self._attr = attr

    def _note(self) -> None:
        self._witness.record(self._attr, "mutate")


class ObservedDict(dict):
    """Dict that reports in-place mutation to the witness."""

    def __init__(self, witness: Witness, attr: str,
                 items: Any = ()) -> None:
        super().__init__(items)
        self._witness = witness
        self._attr = attr

    def _note(self) -> None:
        self._witness.record(self._attr, "mutate")


def _install_observers() -> None:
    """Generate the mutating-method overrides on the observed containers."""

    def make(base: type, name: str) -> Any:
        underlying = getattr(base, name)

        def method(self: Any, *args: Any, **kwargs: Any) -> Any:
            self._note()
            return underlying(self, *args, **kwargs)

        method.__name__ = name
        method.__doc__ = f"``{base.__name__}.{name}`` with a witness mutate event."
        return method

    for name in ("append", "extend", "insert", "remove", "pop", "clear",
                 "sort", "reverse", "__setitem__", "__delitem__", "__iadd__"):
        setattr(ObservedList, name, make(list, name))
    for name in ("pop", "popitem", "clear", "update", "setdefault",
                 "__setitem__", "__delitem__"):
        setattr(ObservedDict, name, make(dict, name))


_install_observers()


def attach(obj: Any) -> Witness:
    """Instrument ``obj`` in place and return its witness.

    Locks become :class:`LockProxy`, plain lists/dicts become observing
    containers, and the instance's class is swapped for a generated
    subclass whose ``__setattr__`` logs every rebind.  The object keeps
    working exactly as before -- only observed.
    """
    witness = Witness()
    for name, value in list(vars(obj).items()):
        if isinstance(value, _LOCK_TYPES):
            object.__setattr__(obj, name, LockProxy(witness, name, value))
        elif type(value) is list:
            object.__setattr__(obj, name, ObservedList(witness, name, value))
        elif type(value) is dict:
            object.__setattr__(obj, name, ObservedDict(witness, name, value))

    cls = obj.__class__

    def recording_setattr(self: Any, name: str, value: Any) -> None:
        witness.record(name, "rebind")
        object.__setattr__(self, name, value)

    instrumented: Type[Any] = type(
        f"Witnessed{cls.__name__}", (cls,), {"__setattr__": recording_setattr}
    )
    obj.__class__ = instrumented
    return witness


@contextmanager
def install(pool_cls: type) -> Iterator[List[Tuple[Any, Witness]]]:
    """Auto-attach a witness to every ``pool_cls`` constructed in scope.

    Lets e2e tests observe pools the gateway builds internally::

        with install(DecodeWorkerPool) as observed:
            gateway.run(...)
        for pool, witness in observed:
            assert not witness.unguarded_shared_writes()
    """
    observed: List[Tuple[Any, Witness]] = []
    original_init = pool_cls.__init__

    def wrapped_init(self: Any, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        observed.append((self, attach(self)))

    pool_cls.__init__ = wrapped_init
    try:
        yield observed
    finally:
        pool_cls.__init__ = original_init


def static_verdicts(qualname: str, roots: Iterable[Path]) -> Dict[str, str]:
    """R009 per-attribute verdicts for ``qualname`` over a source tree."""
    models = []
    for path in _iter_python_files(roots):
        model, _ = build_module_model(path.read_text(encoding="utf-8"), path)
        if model is not None:
            models.append(model)
    analysis = ConcurrencyAnalysis(Project(models))
    return analysis.classify_attrs(qualname)


def cross_check(witness: Witness, verdicts: Dict[str, str]) -> List[str]:
    """Dynamically shared writes the static analysis failed to classify.

    Returns problem strings (empty == witness passes).  A shared write
    is accounted for when its attribute's static verdict is in
    :data:`~repro.tools.analysis.concurrency.SAFE_CLASSIFICATIONS` and
    *not* ``unshared``/``readonly`` -- a write the static pass thought
    impossible is exactly the blind spot the witness exists to catch.
    """
    problems: List[str] = []
    for event in witness.unguarded_shared_writes():
        problems.append(
            f"unguarded shared write: self.{event.attr} from thread "
            f"{event.thread} (seq {event.seq}) with no lock held"
        )
    for attr in witness.shared_written_attrs():
        verdict = verdicts.get(attr)
        if verdict is None or verdict in ("unshared", "readonly"):
            problems.append(
                f"statically unclassified shared write: self.{attr} "
                f"(static verdict: {verdict})"
            )
        elif verdict not in SAFE_CLASSIFICATIONS:
            problems.append(
                f"shared write to self.{attr} statically classified "
                f"as {verdict}"
            )
    return problems
