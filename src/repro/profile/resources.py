"""Process-level resource accounting: CPU vs wall, RSS, allocations.

This module (and only this module -- repro-lint rule R013) is allowed
to touch ``time.process_time``, ``resource`` and ``tracemalloc``;
everything else routes through :class:`ResourceAccountant` or the
:func:`process_cpu` / :func:`peak_rss_kb` wrappers, so the places that
can perturb timing or start allocation tracing stay auditable.

The accountant brackets a run: CPU seconds (``time.process_time`` --
process-wide, so it aggregates every worker thread) against wall
seconds from ``telemetry.clock()``, the OS-reported peak RSS, and --
only when explicitly requested, because tracing costs real time -- the
``tracemalloc`` top-N allocation sites.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.gateway.telemetry import clock

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]


def process_cpu() -> float:
    """CPU seconds consumed by this process (user + system, all threads)."""
    return time.process_time()


def peak_rss_kb() -> int:
    """OS-reported peak resident set size in KiB (0 where unsupported)."""
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class AllocationSite:
    """One ``tracemalloc`` aggregation row (file:line, size, count)."""

    site: str
    size_kb: float
    count: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form."""
        return {"site": self.site, "size_kb": self.size_kb, "count": self.count}


@dataclass(frozen=True)
class ResourceSummary:
    """What one bracketed run cost the process."""

    wall_s: float
    cpu_s: float
    peak_rss_kb: int
    alloc_peak_kb: float = 0.0
    top_allocations: List[AllocationSite] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """CPU seconds per wall second (>1 means real parallelism)."""
        return self.cpu_s / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (see :func:`summary_from_dict`)."""
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "utilization": self.utilization,
            "peak_rss_kb": self.peak_rss_kb,
            "alloc_peak_kb": self.alloc_peak_kb,
            "top_allocations": [
                site.to_dict() for site in self.top_allocations
            ],
        }


def summary_from_dict(state: Dict[str, Any]) -> ResourceSummary:
    """Rehydrate a :class:`ResourceSummary` from its ``to_dict`` form."""
    return ResourceSummary(
        wall_s=float(state.get("wall_s", 0.0)),
        cpu_s=float(state.get("cpu_s", 0.0)),
        peak_rss_kb=int(state.get("peak_rss_kb", 0)),
        alloc_peak_kb=float(state.get("alloc_peak_kb", 0.0)),
        top_allocations=[
            AllocationSite(
                site=str(row.get("site", "?")),
                size_kb=float(row.get("size_kb", 0.0)),
                count=int(row.get("count", 0)),
            )
            for row in state.get("top_allocations", [])
        ],
    )


class ResourceAccountant:
    """Bracket a run and report what it cost.

    ``alloc_top_n > 0`` turns on ``tracemalloc`` for the bracketed
    region (the ``--profile-alloc`` path); it is deliberately opt-in
    because tracing allocations slows the traced code several-fold.  If
    tracemalloc was already running (say, an outer accountant), the
    inner one leaves it untouched.
    """

    def __init__(self, alloc_top_n: int = 0) -> None:
        self.alloc_top_n = int(alloc_top_n)
        self._wall_start: Optional[float] = None
        self._cpu_start = 0.0
        self._started_tracing = False
        self.summary: Optional[ResourceSummary] = None

    def start(self) -> "ResourceAccountant":
        """Begin the bracket (idempotent restart resets the clocks)."""
        if self.alloc_top_n > 0 and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._cpu_start = process_cpu()
        self._wall_start = clock()
        return self

    def stop(self) -> ResourceSummary:
        """Close the bracket and return (and retain) the summary."""
        if self._wall_start is None:
            raise RuntimeError("ResourceAccountant.stop() before start()")
        wall_s = clock() - self._wall_start
        cpu_s = process_cpu() - self._cpu_start
        alloc_peak_kb = 0.0
        top: List[AllocationSite] = []
        if self.alloc_top_n > 0 and tracemalloc.is_tracing():
            _, peak_bytes = tracemalloc.get_traced_memory()
            alloc_peak_kb = peak_bytes / 1024.0
            stats = tracemalloc.take_snapshot().statistics("lineno")
            for stat in stats[: self.alloc_top_n]:
                frame = stat.traceback[0]
                top.append(
                    AllocationSite(
                        site=f"{frame.filename}:{frame.lineno}",
                        size_kb=stat.size / 1024.0,
                        count=stat.count,
                    )
                )
            if self._started_tracing:
                tracemalloc.stop()
                self._started_tracing = False
        self.summary = ResourceSummary(
            wall_s=wall_s,
            cpu_s=cpu_s,
            peak_rss_kb=peak_rss_kb(),
            alloc_peak_kb=alloc_peak_kb,
            top_allocations=top,
        )
        self._wall_start = None
        return self.summary

    def __enter__(self) -> "ResourceAccountant":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
