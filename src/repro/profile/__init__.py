"""Kernel-level profiling, resource accounting, and diffable run manifests.

The package the raw-speed refactor will be judged by: it answers *which
kernel, at which batch shape, with how many FFTs* the gateway spends its
time on, what that costs in CPU vs wall and allocations, and whether a
given change made any of it worse.

Four cooperating pieces:

* :mod:`repro.profile.context` + :mod:`repro.profile.profiler` -- the
  ambient :class:`KernelProfiler`.  Core DSP kernels declare themselves
  with ``profile.context.kernel("engine.gram_solve", shape=...)`` and
  the ContextVar plumbing (mirroring ``repro.trace.context``) keeps the
  dependency arrow pointing the right way: core never imports gateway.
* :mod:`repro.profile.resources` -- CPU-vs-wall, peak RSS, and optional
  ``tracemalloc`` top-N accounting.  The *only* module allowed to touch
  ``time.process_time`` / ``resource`` / ``tracemalloc`` (lint R013).
* :mod:`repro.profile.manifest` -- the self-describing ``RunManifest``
  JSON every ``repro gateway|server|campaign`` run can emit.
* :mod:`repro.profile.diff` -- thresholded, lower-is-better-aware
  comparison of two manifests (or two bench reports); the engine behind
  ``repro diff`` and ``tools/bench_report.py --compare``.

Exports resolve lazily (PEP 562): the core DSP modules import
``repro.profile.context`` from inside the gateway import graph, so this
``__init__`` must stay import-free to keep that graph acyclic.
"""

from typing import Any

_EXPORTS = {
    "DiffReport": "repro.profile.diff",
    "MetricDelta": "repro.profile.diff",
    "diff_metrics": "repro.profile.diff",
    "RunManifest": "repro.profile.manifest",
    "build_manifest": "repro.profile.manifest",
    "load_manifest": "repro.profile.manifest",
    "KernelProfiler": "repro.profile.profiler",
    "shape_bucket": "repro.profile.profiler",
    "ResourceAccountant": "repro.profile.resources",
    "ResourceSummary": "repro.profile.resources",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
