"""Thresholded metric comparison: the engine behind ``repro diff``.

Generalizes the ad-hoc comparator that used to live in
``tools/bench_report.py``: two flat ``{metric-name: value}`` series are
compared with a relative tolerance plus an absolute slack, and every
metric gets a verdict -- ``ok`` / ``faster`` / ``slower`` /
``new-key`` / ``missing-key``.  The comparison is *direction aware*:
seconds, bytes, drops and losses regress upward, delivery rates and
realtime factors regress downward, and metrics with no obvious
direction (raw event counts) are reported but never gated.

``tools/bench_report.py --compare`` calls back into this module with a
forced lower-is-better direction and :func:`format_compare_line`, which
reproduces its historical output byte for byte; ``repro diff`` uses the
richer :class:`DiffReport` rendering over two run manifests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Name suffixes that mark a metric as lower-is-better.
LOWER_SUFFIXES = ("_s", "_ms", "_kb", "_bytes", ".bytes")

#: Name fragments that mark a metric as lower-is-better.
LOWER_TOKENS = (
    "dropped",
    "errors",
    "failures",
    "loss",
    "evicted",
    "wait",
    "escalated",
    "queue_depth",
    "occupancy",
)

#: Name fragments that mark a metric as higher-is-better.
HIGHER_TOKENS = (
    "delivery_rate",
    "realtime_factor",
    "recovered",
    "delivered",
    "decoded",
    "crc_ok",
)


def metric_direction(name: str) -> str:
    """Classify ``name`` as ``"lower"``, ``"higher"`` or ``"info"``.

    Higher-is-better tokens win over the generic lower-is-better
    suffixes so e.g. ``...delivery_rate`` is not misread; anything
    unrecognized is informational (reported, never gated).
    """
    lowered = name.lower()
    if any(token in lowered for token in HIGHER_TOKENS):
        return "higher"
    if any(lowered.endswith(suffix) for suffix in LOWER_SUFFIXES):
        return "lower"
    if any(token in lowered for token in LOWER_TOKENS):
        return "lower"
    return "info"


@dataclass(frozen=True)
class MetricDelta:
    """One metric's comparison outcome."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str
    verdict: str
    limit: Optional[float] = None

    @property
    def regression(self) -> bool:
        """Whether this delta alone should fail a gate."""
        return self.verdict == "slower"

    @property
    def ratio(self) -> Optional[float]:
        """candidate / baseline, when both exist and baseline != 0."""
        if self.baseline and self.candidate is not None:
            return self.candidate / self.baseline
        return None


@dataclass(frozen=True)
class DiffReport:
    """Every metric's verdict for one baseline/candidate comparison."""

    deltas: Tuple[MetricDelta, ...]
    tolerance: float
    slack: float

    @property
    def regressions(self) -> List[MetricDelta]:
        """Deltas whose verdict is ``slower``."""
        return [d for d in self.deltas if d.verdict == "slower"]

    @property
    def missing(self) -> List[MetricDelta]:
        """Baseline metrics absent from the candidate."""
        return [d for d in self.deltas if d.verdict == "missing-key"]

    @property
    def new(self) -> List[MetricDelta]:
        """Candidate metrics absent from the baseline."""
        return [d for d in self.deltas if d.verdict == "new-key"]

    @property
    def improvements(self) -> List[MetricDelta]:
        """Deltas whose verdict is ``faster``."""
        return [d for d in self.deltas if d.verdict == "faster"]

    def exit_code(self, strict: bool = False) -> int:
        """0 = clean; 1 = regressions (strict: or baseline keys missing)."""
        if self.regressions:
            return 1
        if strict and self.missing:
            return 1
        return 0

    def lines(self, show_ok: bool = False) -> List[str]:
        """Human-readable verdict lines (``ok`` rows only on request)."""
        out: List[str] = []
        for delta in self.deltas:
            if delta.verdict == "ok" and not show_ok:
                continue
            out.append(format_delta_line(delta))
        return out

    def summary(self) -> str:
        """One-line tally of the comparison."""
        return (
            f"{len(self.deltas)} metrics compared: "
            f"{len(self.regressions)} slower, "
            f"{len(self.improvements)} faster, "
            f"{len(self.missing)} missing, {len(self.new)} new "
            f"(tolerance {self.tolerance:.0%}, slack {self.slack:g})"
        )


def diff_metrics(
    baseline: Mapping[str, float],
    candidate: Mapping[str, float],
    tolerance: float = 0.25,
    slack: float = 0.0,
    direction: Optional[Callable[[str], str]] = None,
) -> DiffReport:
    """Compare two flat metric series with thresholded verdicts.

    A lower-is-better metric is ``slower`` when it exceeds
    ``baseline * (1 + tolerance) + slack`` and ``faster`` below
    ``baseline * (1 - tolerance) - slack``; higher-is-better metrics
    mirror the bounds.  ``direction`` overrides the per-name
    classification (``tools/bench_report.py`` forces ``"lower"`` for
    every gated latency).  Baseline keys come first in sorted order,
    then candidate-only keys, so rendering order is deterministic.
    """
    classify = direction if direction is not None else metric_direction
    deltas: List[MetricDelta] = []
    for name in sorted(baseline):
        base_value = float(baseline[name])
        kind = classify(name)
        cand_raw = candidate.get(name)
        if cand_raw is None:
            deltas.append(
                MetricDelta(
                    name=name,
                    baseline=base_value,
                    candidate=None,
                    direction=kind,
                    verdict="missing-key",
                )
            )
            continue
        cand_value = float(cand_raw)
        upper = base_value * (1.0 + tolerance) + slack
        lower = base_value * (1.0 - tolerance) - slack
        if kind == "lower":
            limit: Optional[float] = upper
            if cand_value > upper:
                verdict = "slower"
            elif cand_value < lower:
                verdict = "faster"
            else:
                verdict = "ok"
        elif kind == "higher":
            limit = lower
            if cand_value < lower:
                verdict = "slower"
            elif cand_value > upper:
                verdict = "faster"
            else:
                verdict = "ok"
        else:
            limit = None
            verdict = "ok"
        deltas.append(
            MetricDelta(
                name=name,
                baseline=base_value,
                candidate=cand_value,
                direction=kind,
                verdict=verdict,
                limit=limit,
            )
        )
    for name in sorted(set(candidate) - set(baseline)):
        deltas.append(
            MetricDelta(
                name=name,
                baseline=None,
                candidate=float(candidate[name]),
                direction=classify(name),
                verdict="new-key",
            )
        )
    return DiffReport(
        deltas=tuple(deltas), tolerance=tolerance, slack=slack
    )


def format_compare_line(delta: MetricDelta) -> str:
    """The historical ``bench_report --compare`` line for one delta.

    Byte-compatible with the pre-``repro.profile`` comparator: values
    render in milliseconds (cosmetic for non-second metrics), missing
    keys render as hard failures, and anything within the limit -- even
    a large improvement -- prints ``ok``.
    """
    if delta.candidate is None:
        return f"  FAIL {delta.name}: missing from candidate"
    assert delta.baseline is not None and delta.limit is not None
    verdict = "FAIL" if delta.regression else "ok  "
    return (
        f"  {verdict} {delta.name}: {delta.candidate * 1e3:.2f}ms"
        f" (baseline {delta.baseline * 1e3:.2f}ms,"
        f" limit {delta.limit * 1e3:.2f}ms)"
    )


def format_delta_line(delta: MetricDelta) -> str:
    """The ``repro diff`` rendering of one delta (unit-agnostic)."""
    if delta.verdict == "missing-key":
        return f"  missing  {delta.name}: baseline {delta.baseline:.6g}"
    if delta.verdict == "new-key":
        return f"  new      {delta.name}: candidate {delta.candidate:.6g}"
    assert delta.baseline is not None and delta.candidate is not None
    tag = {"slower": "SLOWER ", "faster": "faster ", "ok": "ok     "}[
        delta.verdict
    ]
    ratio = delta.ratio
    ratio_part = f" ({ratio:.2f}x)" if ratio is not None else ""
    limit_part = (
        f", limit {delta.limit:.6g}" if delta.limit is not None else ""
    )
    return (
        f"  {tag}  {delta.name}: {delta.candidate:.6g}"
        f" (baseline {delta.baseline:.6g}{limit_part}){ratio_part}"
    )


def metric_table(metrics: Mapping[str, float]) -> Dict[str, float]:
    """Defensive float-casting copy of a metric mapping."""
    return {str(name): float(value) for name, value in metrics.items()}
