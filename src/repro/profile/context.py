"""Ambient profiler context: how core DSP kernels reach the profiler.

Exactly the ``repro.trace.context`` pattern: the worker (or the gateway
runtime) installs its :class:`repro.profile.profiler.KernelProfiler`
into a :class:`contextvars.ContextVar` for the duration of a decode, and
any kernel can declare itself with :func:`kernel` / :func:`add` without
knowing whether profiling is on.  When no profiler is installed every
call is a cheap no-op (a single ContextVar read), which is what keeps
the profiling-off hot path within the <2% overhead budget.

``ContextVar`` (rather than a module global) makes the propagation
correct under every executor: each worker thread sees only its own job's
profiler, and the process executor installs the profiler inside the
worker process where the stats are accumulated and shipped back with the
outcome.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.profile.profiler import KernelProfiler

_ACTIVE: ContextVar[Optional[KernelProfiler]] = ContextVar(
    "repro_kernel_profiler", default=None
)


def current() -> Optional[KernelProfiler]:
    """The profiler installed for the running job, or None."""
    return _ACTIVE.get()


def profile_active() -> bool:
    """Whether the calling code runs under an installed profiler."""
    return _ACTIVE.get() is not None


@contextmanager
def use_profiler(profiler: Optional[KernelProfiler]) -> Iterator[None]:
    """Install ``profiler`` as the ambient profile context for the block.

    Passing ``None`` is allowed and leaves profiling inactive, so
    callers can use one ``with`` statement for both the profiled and
    unprofiled paths.
    """
    token = _ACTIVE.set(profiler)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


@contextmanager
def kernel(
    name: str,
    shape: str = "",
    fft_count: int = 0,
    fft_points: int = 0,
    bytes_touched: int = 0,
) -> Iterator[None]:
    """Account the wrapped block to kernel ``name``; no-op when off.

    Nested :func:`kernel` blocks record *self time* (elapsed minus time
    inside child kernels), so summed kernel wall times stay additive.
    """
    profiler = _ACTIVE.get()
    if profiler is None:
        yield
        return
    with profiler.kernel(
        name,
        shape,
        fft_count=fft_count,
        fft_points=fft_points,
        bytes_touched=bytes_touched,
    ):
        yield


def add(
    fft_count: int = 0, fft_points: int = 0, bytes_touched: int = 0
) -> None:
    """Attribute extra work to the innermost kernel; no-op when off."""
    profiler = _ACTIVE.get()
    if profiler is not None:
        profiler.add(
            fft_count=fft_count,
            fft_points=fft_points,
            bytes_touched=bytes_touched,
        )
