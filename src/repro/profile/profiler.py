"""The kernel profiler: per-(kernel, shape-class) time and work accounting.

Stage histograms (PR 5) say *which pipeline stage* is slow;
:class:`KernelProfiler` says *which numerical kernel, at which batch
shape, with how many FFTs* -- the per-block complexity accounting a
hardware-or-rewrite decision actually needs.  Kernels are declared with
the ambient API in :mod:`repro.profile.context`; each declaration opens
a frame on a per-thread stack, so nested kernels account **self time**
(elapsed minus time inside child kernels).  Summed self times therefore
never double-count, and the stack paths double as flamegraph input.

Per (kernel name, shape class) the profiler records:

* ``calls`` -- invocation count
* ``wall_s`` / ``max_wall_s`` -- total and worst-case self time, via
  ``telemetry.clock()`` (the gateway's single timing authority)
* ``fft_count`` / ``fft_points`` -- how many FFTs, totalling how many
  points, the kernel claims to have run (declared, not measured)
* ``bytes_touched`` -- declared working-set traffic

Shape classes are short strings like ``sf7.K4.M64``; dimensions that
vary per call should be bucketed with :func:`shape_bucket` (next power
of two) to keep metric cardinality bounded.

State round-trips as a plain dict (:meth:`state` / :meth:`merge_state`)
so per-job profiles ship back across the process executor exactly like
telemetry deltas, and :meth:`fold_into` aggregates everything into a
:class:`~repro.gateway.telemetry.Telemetry` registry under
``profile.kernel.*`` for the existing JSONL / Prometheus exports.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gateway.telemetry import Telemetry

#: Format tag stamped on portable profiler state.
PROFILE_FORMAT = "repro-profile/v1"

_clock: Optional[Callable[[], float]] = None


def clock() -> float:
    """The profiler's stopwatch: ``repro.gateway.telemetry.clock``.

    Bound lazily on first use so that importing this module (which the
    core DSP kernels reach via :mod:`repro.profile.context`) never pulls
    in the gateway package at import time -- the dependency arrow stays
    core -> profile, with the single timing authority shared at runtime.
    """
    global _clock
    if _clock is None:
        from repro.gateway.telemetry import clock as telemetry_clock

        _clock = telemetry_clock
    return _clock()

#: Key used when work is reported outside any open kernel frame.
UNTRACKED = "(untracked)"


def shape_bucket(n: int) -> int:
    """Round ``n`` up to the next power of two (shape-class bucketing).

    Batch dimensions like "number of candidate columns" vary call to
    call; bucketing them keeps the (kernel, shape) table small while
    preserving the order of magnitude that matters for complexity
    accounting.
    """
    if n <= 1:
        return 1
    return 1 << int(n - 1).bit_length()


class _Frame:
    """One open kernel invocation on a thread's stack."""

    __slots__ = (
        "name",
        "shape",
        "start",
        "child_s",
        "fft_count",
        "fft_points",
        "bytes_touched",
    )

    def __init__(self, name: str, shape: str) -> None:
        self.name = name
        self.shape = shape
        self.start = clock()
        self.child_s = 0.0
        self.fft_count = 0
        self.fft_points = 0
        self.bytes_touched = 0


class KernelStat:
    """Accumulated totals for one (kernel, shape-class) pair."""

    __slots__ = (
        "calls",
        "wall_s",
        "max_wall_s",
        "fft_count",
        "fft_points",
        "bytes_touched",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0
        self.max_wall_s = 0.0
        self.fft_count = 0
        self.fft_points = 0
        self.bytes_touched = 0

    def add(
        self,
        self_s: float,
        fft_count: int,
        fft_points: int,
        bytes_touched: int,
    ) -> None:
        """Fold one closed frame's self time and work into the totals."""
        self.calls += 1
        self.wall_s += self_s
        if self_s > self.max_wall_s:
            self.max_wall_s = self_s
        self.fft_count += fft_count
        self.fft_points += fft_points
        self.bytes_touched += bytes_touched

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the portable-state / JSON projection)."""
        return {
            "calls": self.calls,
            "wall_s": self.wall_s,
            "max_wall_s": self.max_wall_s,
            "fft_count": self.fft_count,
            "fft_points": self.fft_points,
            "bytes_touched": self.bytes_touched,
        }

    def merge_dict(self, state: Dict[str, Any]) -> None:
        """Sum another row's :meth:`to_dict` into this one (max of maxes)."""
        self.calls += int(state.get("calls", 0))
        self.wall_s += float(state.get("wall_s", 0.0))
        self.max_wall_s = max(
            self.max_wall_s, float(state.get("max_wall_s", 0.0))
        )
        self.fft_count += int(state.get("fft_count", 0))
        self.fft_points += int(state.get("fft_points", 0))
        self.bytes_touched += int(state.get("bytes_touched", 0))


class KernelProfiler:
    """Thread-safe accumulator of kernel self-time and work estimates.

    One instance can serve a whole gateway run: worker threads each keep
    their own frame stack (keyed by thread id), and the stats table is
    merged under a single lock only when a frame closes.
    """

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str], KernelStat] = {}
        self._paths: Dict[str, float] = {}
        self._cpu_s = 0.0
        self._root_wall_s = 0.0
        self._roots = 0
        self._stacks: Dict[int, List[_Frame]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def kernel(
        self,
        name: str,
        shape: str = "",
        fft_count: int = 0,
        fft_points: int = 0,
        bytes_touched: int = 0,
    ) -> Iterator[None]:
        """Time the wrapped block as one invocation of kernel ``name``.

        Nested ``kernel`` blocks subtract their elapsed time from the
        parent's self time, so totals across the table stay additive.
        Work estimates can be supplied up front or accumulated from
        inside the block with :meth:`add`.
        """
        ident = threading.get_ident()
        stack = self._stacks.setdefault(ident, [])
        frame = _Frame(name, shape)
        frame.fft_count = fft_count
        frame.fft_points = fft_points
        frame.bytes_touched = bytes_touched
        stack.append(frame)
        try:
            yield
        finally:
            self._close(ident, stack, frame)

    def _close(
        self, ident: int, stack: List[_Frame], frame: _Frame
    ) -> None:
        elapsed = clock() - frame.start
        # Guard against frames leaked by generator abandonment: unwind
        # to (and including) our own frame rather than trusting the top.
        while stack and stack[-1] is not frame:
            stack.pop()
        if stack:
            stack.pop()
        self_s = max(0.0, elapsed - frame.child_s)
        if stack:
            stack[-1].child_s += elapsed
            path = ";".join(f.name for f in stack) + f";{frame.name}"
        else:
            path = frame.name
            del self._stacks[ident]
        with self._lock:
            stat = self._stats.get((frame.name, frame.shape))
            if stat is None:
                stat = KernelStat()
                self._stats[(frame.name, frame.shape)] = stat
            stat.add(
                self_s, frame.fft_count, frame.fft_points, frame.bytes_touched
            )
            self._paths[path] = self._paths.get(path, 0.0) + self_s
            if not stack:
                self._roots += 1
                self._root_wall_s += elapsed

    def add(
        self,
        fft_count: int = 0,
        fft_points: int = 0,
        bytes_touched: int = 0,
    ) -> None:
        """Attribute extra work to the innermost open kernel frame.

        Useful when a count is only known mid-block (for example the
        number of FFT rows a channelizer flush produced).  Outside any
        frame the work lands on the ``(untracked)`` row instead of being
        lost.
        """
        stack = self._stacks.get(threading.get_ident())
        if stack:
            frame = stack[-1]
            frame.fft_count += fft_count
            frame.fft_points += fft_points
            frame.bytes_touched += bytes_touched
            return
        with self._lock:
            stat = self._stats.get((UNTRACKED, ""))
            if stat is None:
                stat = KernelStat()
                self._stats[(UNTRACKED, "")] = stat
            stat.fft_count += fft_count
            stat.fft_points += fft_points
            stat.bytes_touched += bytes_touched

    def add_cpu(self, cpu_s: float) -> None:
        """Fold one job's measured CPU seconds into the run total."""
        with self._lock:
            self._cpu_s += float(cpu_s)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def stats(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """The (kernel, shape) table as plain dicts."""
        with self._lock:
            return {key: stat.to_dict() for key, stat in self._stats.items()}

    def total_wall_s(self) -> float:
        """Summed self time across every kernel (never double-counts)."""
        with self._lock:
            return sum(stat.wall_s for stat in self._stats.values())

    def kernel_wall_s(self, name: str) -> float:
        """Summed self time of ``name`` across all shape classes."""
        with self._lock:
            return sum(
                stat.wall_s
                for (kernel, _), stat in self._stats.items()
                if kernel == name
            )

    @property
    def cpu_s(self) -> float:
        """Summed per-job CPU seconds reported via :meth:`add_cpu`."""
        with self._lock:
            return self._cpu_s

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    # ------------------------------------------------------------------
    # Portable state (the executor propagation path)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Picklable, JSON-able state -- ships on ``DecodeOutcome``."""
        with self._lock:
            return {
                "format": PROFILE_FORMAT,
                "kernels": {
                    _join_key(name, shape): stat.to_dict()
                    for (name, shape), stat in sorted(self._stats.items())
                },
                "paths": dict(sorted(self._paths.items())),
                "cpu_s": self._cpu_s,
                "root_wall_s": self._root_wall_s,
                "roots": self._roots,
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another profiler's :meth:`state` into this one (sums)."""
        kernels = state.get("kernels", {})
        paths = state.get("paths", {})
        with self._lock:
            for key, stat_dict in kernels.items():
                name, shape = _split_key(key)
                stat = self._stats.get((name, shape))
                if stat is None:
                    stat = KernelStat()
                    self._stats[(name, shape)] = stat
                stat.merge_dict(stat_dict)
            for path, seconds in paths.items():
                self._paths[path] = self._paths.get(path, 0.0) + float(
                    seconds
                )
            self._cpu_s += float(state.get("cpu_s", 0.0))
            self._root_wall_s += float(state.get("root_wall_s", 0.0))
            self._roots += int(state.get("roots", 0))

    def merge(self, other: "KernelProfiler") -> None:
        """Fold another profiler instance into this one."""
        self.merge_state(other.state())

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def fold_into(self, telemetry: "Telemetry") -> None:
        """Aggregate the kernel table into a telemetry registry.

        Every (kernel, shape) row lands under ``profile.kernel.*``:
        counters for calls / FFTs / bytes and a duration histogram for
        self time (exact count / total / max; the mean stands in for the
        percentile reservoir, since only aggregates survive the merge).
        """
        for (name, shape), stat in sorted(self.stats().items()):
            base = f"profile.kernel.{name}"
            if shape:
                base = f"{base}.{shape}"
            if stat["calls"]:
                telemetry.counter(f"{base}.calls").inc(stat["calls"])
                mean = stat["wall_s"] / stat["calls"]
                telemetry.histogram(f"{base}.wall_s").merge_state(
                    {
                        "type": "histogram",
                        "values": [mean],
                        "count": stat["calls"],
                        "total_s": stat["wall_s"],
                        "max_s": stat["max_wall_s"],
                    }
                )
            if stat["fft_count"]:
                telemetry.counter(f"{base}.ffts").inc(stat["fft_count"])
                telemetry.counter(f"{base}.fft_points").inc(
                    stat["fft_points"]
                )
            if stat["bytes_touched"]:
                telemetry.counter(f"{base}.bytes").inc(
                    stat["bytes_touched"]
                )

    def collapsed(self) -> str:
        """Collapsed-stack text (``a;b;c <microseconds>`` per line).

        Directly consumable by flamegraph.pl / speedscope / inferno;
        the "sample count" column is integer microseconds of self time.
        """
        with self._lock:
            paths = dict(self._paths)
        lines = []
        for path in sorted(paths):
            micros = int(round(paths[path] * 1e6))
            lines.append(f"{path} {max(micros, 1)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def chrome_events(
        self, pid: int = 0, tid: int = 9999
    ) -> List[Dict[str, Any]]:
        """Aggregate flame strip as Chrome trace ``X`` events.

        Real per-invocation timestamps are not kept (that is the span
        tracer's job); instead the kernel tree is laid out once, widths
        proportional to cumulative wall time, on a dedicated track --
        the Perfetto rendering of :meth:`collapsed`.
        """
        with self._lock:
            paths = dict(self._paths)
        tree = _path_tree(paths)
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": "kernel profile (aggregate)"},
            }
        ]
        _emit_flame(tree, 0.0, pid, tid, events)
        return events


def _join_key(name: str, shape: str) -> str:
    return f"{name}|{shape}" if shape else name


def _split_key(key: str) -> Tuple[str, str]:
    name, _, shape = key.partition("|")
    return name, shape


class _Node:
    __slots__ = ("name", "self_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.self_s = 0.0
        self.children: Dict[str, "_Node"] = {}

    @property
    def total_s(self) -> float:
        return self.self_s + sum(
            child.total_s for child in self.children.values()
        )


def _path_tree(paths: Dict[str, float]) -> Dict[str, _Node]:
    roots: Dict[str, _Node] = {}
    for path in sorted(paths):
        parts = path.split(";")
        level = roots
        node: Optional[_Node] = None
        for part in parts:
            node = level.get(part)
            if node is None:
                node = _Node(part)
                level[part] = node
            level = node.children
        assert node is not None
        node.self_s += paths[path]
    return roots


def _emit_flame(
    level: Dict[str, _Node],
    start_s: float,
    pid: int,
    tid: int,
    events: List[Dict[str, Any]],
) -> None:
    cursor = start_s
    for name in sorted(level):
        node = level[name]
        total = node.total_s
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": "kernel",
                "ts": cursor * 1e6,
                "dur": total * 1e6,
                "args": {"self_ms": node.self_s * 1e3},
            }
        )
        _emit_flame(node.children, cursor, pid, tid, events)
        cursor += total
