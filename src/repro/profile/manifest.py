"""Self-describing run manifests: what ran, on what, and what it cost.

A :class:`RunManifest` is the JSON record a ``repro gateway|server|
campaign`` run leaves behind so a later run (on another commit, another
machine, another config) can be *diffed* against it: package version and
platform, the seed and config, the deterministic report digest, the full
telemetry snapshot, the kernel profile, the resource summary, and a
flattened ``metrics`` table that :mod:`repro.profile.diff` compares with
thresholded verdicts.

The digest rides in from the existing ``report_digest`` machinery in
``repro.scenario.build`` -- callers pass it pre-computed, keeping this
module free of scenario/gateway imports (it sits below both in the
dependency order).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Format tag stamped on every manifest.
MANIFEST_FORMAT = "repro-manifest/v1"

#: Histogram snapshot keys flattened into the comparable metric table.
_HISTOGRAM_METRIC_KEYS = ("count", "p50_s", "p95_s", "max_s", "total_s")


def platform_info() -> Dict[str, str]:
    """Where this run happened (the run-over-run comparability context)."""
    info = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    try:
        import numpy

        info["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return info


def package_version() -> str:
    """The repro package version recorded in every manifest."""
    from repro import __version__

    return __version__


def telemetry_metrics(
    snapshot: Mapping[str, Mapping[str, Any]],
    skip_prefixes: tuple = (),
) -> Dict[str, float]:
    """Flatten a ``Telemetry.snapshot()`` into comparable scalars.

    Counters keep their name; gauges add a ``.peak`` row; histograms
    explode into count / p50 / p95 / max / total rows.  ``skip_prefixes``
    drops families another manifest section already covers (the kernel
    table, when a profiler state is attached separately).
    """
    metrics: Dict[str, float] = {}
    for name, state in snapshot.items():
        if any(name.startswith(prefix) for prefix in skip_prefixes):
            continue
        kind = state.get("type")
        if kind == "counter":
            metrics[name] = float(state["value"])
        elif kind == "gauge":
            metrics[name] = float(state["value"])
            metrics[f"{name}.peak"] = float(state["peak"])
        elif kind == "histogram":
            for key in _HISTOGRAM_METRIC_KEYS:
                if key in state:
                    metrics[f"{name}.{key}"] = float(state[key])
    return metrics


def profiler_metrics(profile_state: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a ``KernelProfiler.state()`` into comparable scalars."""
    metrics: Dict[str, float] = {}
    for key, stat in profile_state.get("kernels", {}).items():
        name = key.replace("|", ".")
        metrics[f"profile.kernel.{name}.wall_s"] = float(stat["wall_s"])
        metrics[f"profile.kernel.{name}.calls"] = float(stat["calls"])
        if stat.get("fft_count"):
            metrics[f"profile.kernel.{name}.ffts"] = float(
                stat["fft_count"]
            )
    if profile_state.get("cpu_s"):
        metrics["profile.cpu_s"] = float(profile_state["cpu_s"])
    return metrics


def resource_metrics(resources: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a ``ResourceSummary.to_dict()`` into comparable scalars."""
    metrics: Dict[str, float] = {}
    for key in ("wall_s", "cpu_s", "peak_rss_kb", "alloc_peak_kb"):
        if key in resources:
            metrics[f"resources.{key}"] = float(resources[key])
    return metrics


@dataclass(frozen=True)
class RunManifest:
    """One run's self-describing record (see module docstring)."""

    kind: str
    format: str = MANIFEST_FORMAT
    version: str = ""
    platform: Dict[str, str] = field(default_factory=dict)
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    digest: Optional[Dict[str, Any]] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    kernels: Optional[Dict[str, Any]] = None
    resources: Optional[Dict[str, Any]] = None
    points: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (None sections omitted)."""
        out: Dict[str, Any] = {
            "format": self.format,
            "kind": self.kind,
            "version": self.version,
            "platform": dict(self.platform),
            "seed": self.seed,
            "config": dict(self.config),
            "metrics": dict(self.metrics),
        }
        if self.digest is not None:
            out["digest"] = self.digest
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.kernels is not None:
            out["kernels"] = self.kernels
        if self.resources is not None:
            out["resources"] = self.resources
        if self.points is not None:
            out["points"] = self.points
        return out

    def to_json(self, indent: int = 2) -> str:
        """Pretty JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: Union[str, Path]) -> None:
        """Write the manifest JSON to ``path``."""
        Path(path).write_text(self.to_json() + "\n")


def build_manifest(
    kind: str,
    config: Mapping[str, Any],
    seed: Optional[int] = None,
    digest: Optional[Mapping[str, Any]] = None,
    telemetry: Optional[Any] = None,
    profiler: Optional[Any] = None,
    resources: Optional[Any] = None,
    extra_metrics: Optional[Mapping[str, float]] = None,
    points: Optional[List[Dict[str, Any]]] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from live run objects.

    ``telemetry`` is a :class:`~repro.gateway.telemetry.Telemetry`
    registry (or an already-taken snapshot dict), ``profiler`` a
    :class:`~repro.profile.profiler.KernelProfiler` (or its state dict),
    ``resources`` a :class:`~repro.profile.resources.ResourceSummary`
    (or its dict); ``digest`` is the precomputed ``report_digest``
    projection.  Everything optional is optional.
    """
    snapshot: Optional[Dict[str, Any]] = None
    if telemetry is not None:
        snapshot = (
            dict(telemetry)
            if isinstance(telemetry, Mapping)
            else telemetry.snapshot()
        )
    profile_state: Optional[Dict[str, Any]] = None
    if profiler is not None:
        profile_state = (
            dict(profiler)
            if isinstance(profiler, Mapping)
            else profiler.state()
        )
    resource_state: Optional[Dict[str, Any]] = None
    if resources is not None:
        resource_state = (
            dict(resources)
            if isinstance(resources, Mapping)
            else resources.to_dict()
        )
    metrics: Dict[str, float] = {}
    if snapshot is not None:
        skip = ("profile.kernel.",) if profile_state is not None else ()
        metrics.update(telemetry_metrics(snapshot, skip_prefixes=skip))
    if profile_state is not None:
        metrics.update(profiler_metrics(profile_state))
    if resource_state is not None:
        metrics.update(resource_metrics(resource_state))
    if extra_metrics:
        metrics.update(
            {str(k): float(v) for k, v in extra_metrics.items()}
        )
    return RunManifest(
        kind=kind,
        version=package_version(),
        platform=platform_info(),
        seed=seed,
        config=dict(config),
        digest=dict(digest) if digest is not None else None,
        metrics=metrics,
        telemetry=snapshot,
        kernels=profile_state,
        resources=resource_state,
        points=points,
    )


def load_manifest(path: Union[str, Path]) -> RunManifest:
    """Read a manifest JSON written by :meth:`RunManifest.write`."""
    data = json.loads(Path(path).read_text())
    fmt = data.get("format")
    if fmt != MANIFEST_FORMAT:
        raise ValueError(
            f"{path}: not a repro run manifest"
            f" (format {fmt!r}, expected {MANIFEST_FORMAT!r})"
        )
    return RunManifest(
        kind=str(data.get("kind", "unknown")),
        format=MANIFEST_FORMAT,
        version=str(data.get("version", "")),
        platform=dict(data.get("platform", {})),
        seed=data.get("seed"),
        config=dict(data.get("config", {})),
        digest=data.get("digest"),
        metrics={
            str(k): float(v) for k, v in data.get("metrics", {}).items()
        },
        telemetry=data.get("telemetry"),
        kernels=data.get("kernels"),
        resources=data.get("resources"),
        points=data.get("points"),
    )
