"""LoRa frame construction: payload bytes <-> chirp symbol values.

The transmit chain follows the LoRa PHY (paper Sec. 3): CRC append,
whitening, Hamming FEC over nibbles, diagonal interleaving across blocks of
``SF`` codewords, and Gray mapping onto chirp symbol values.  The receive
chain inverts every stage and reports whether the CRC verified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.crc import append_crc, check_crc
from repro.phy.encoding import (
    bits_to_symbols,
    bytes_to_bits,
    bits_to_bytes,
    deinterleave,
    hamming_decode,
    hamming_encode,
    interleave,
    symbols_to_bits,
    whiten,
)
from repro.phy.params import LoRaParams


@dataclass(frozen=True)
class LoRaFrame:
    """A fully encoded frame: the original payload and its symbol stream."""

    payload: bytes
    symbols: np.ndarray
    coding_rate: int

    @property
    def n_symbols(self) -> int:
        """Number of data symbols in the encoded frame."""
        return int(self.symbols.size)


@dataclass(frozen=True)
class DecodedFrame:
    """Result of decoding a symbol stream back into bytes."""

    payload: bytes
    crc_ok: bool
    corrected_codewords: int


class LoRaFramer:
    """Encode payload bytes to symbols and decode symbols back to bytes."""

    def __init__(self, params: LoRaParams, coding_rate: int = 4) -> None:
        if not 1 <= coding_rate <= 4:
            raise ValueError(f"coding_rate must be in 1..4, got {coding_rate}")
        self.params = params
        self.coding_rate = coding_rate

    # ------------------------------------------------------------------
    def _block_bits(self) -> int:
        """Bits per interleaver block: SF codewords of (4+CR) bits."""
        return self.params.spreading_factor * (4 + self.coding_rate)

    def coded_bit_count(self, payload_len: int) -> int:
        """Number of FEC-coded bits for a payload of ``payload_len`` bytes."""
        data_bytes = payload_len + 2  # payload + CRC16
        n_nibbles = data_bytes * 2
        return n_nibbles * (4 + self.coding_rate)

    def n_symbols_for_payload(self, payload_len: int) -> int:
        """Data symbols needed to carry ``payload_len`` payload bytes."""
        coded = self.coded_bit_count(payload_len)
        block = self._block_bits()
        n_blocks = -(-coded // block)  # ceil division
        return n_blocks * block // self.params.spreading_factor

    # ------------------------------------------------------------------
    def encode(self, payload: bytes) -> LoRaFrame:
        """Run the full transmit coding chain on ``payload``."""
        sf = self.params.spreading_factor
        cr = self.coding_rate
        data = append_crc(payload)
        bits = whiten(bytes_to_bits(data))
        nibbles = (
            bits.reshape(-1, 4) @ (1 << np.arange(4)).astype(np.uint8)
        ).astype(np.uint8)
        coded = hamming_encode(nibbles, cr)
        block = self._block_bits()
        if coded.size % block:
            pad = block - coded.size % block
            coded = np.concatenate([coded, np.zeros(pad, dtype=np.uint8)])
        interleaved = np.concatenate(
            [
                interleave(coded[i : i + block], sf, 4 + cr)
                for i in range(0, coded.size, block)
            ]
        )
        symbols = bits_to_symbols(interleaved, sf)
        return LoRaFrame(payload=bytes(payload), symbols=symbols, coding_rate=cr)

    def decode(self, symbols: np.ndarray, payload_len: int) -> DecodedFrame:
        """Invert :meth:`encode` for a payload of known length."""
        sf = self.params.spreading_factor
        cr = self.coding_rate
        expected_symbols = self.n_symbols_for_payload(payload_len)
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size < expected_symbols:
            raise ValueError(
                f"need {expected_symbols} symbols for a {payload_len}-byte "
                f"payload, got {symbols.size}"
            )
        bits = symbols_to_bits(symbols[:expected_symbols], sf)
        block = self._block_bits()
        deinterleaved = np.concatenate(
            [
                deinterleave(bits[i : i + block], sf, 4 + cr)
                for i in range(0, bits.size, block)
            ]
        )
        coded_len = self.coded_bit_count(payload_len)
        nibbles, corrected = hamming_decode(deinterleaved[:coded_len], cr)
        data_bits = ((nibbles[:, None] >> np.arange(4)) & 1).astype(np.uint8).reshape(-1)
        data = bits_to_bytes(whiten(data_bits))[: payload_len + 2]
        ok = check_crc(data)
        return DecodedFrame(payload=data[:-2], crc_ok=ok, corrected_codewords=corrected)
