"""Standard single-user LoRa demodulation (the non-Choir receive path).

This is what a commodity LoRaWAN gateway does: dechirp each symbol window
with the base down-chirp, take a ``2**SF``-point FFT, and pick the maximum
bin (paper Sec. 4, the two-step process).  It decodes exactly one
transmitter; when chirps from two same-spreading-factor transmitters
collide, its output is garbage -- which is the premise Choir starts from.
"""

from __future__ import annotations

import numpy as np

from repro.phy.chirp import downchirp
from repro.phy.params import LoRaParams


def dechirp_symbol(params: LoRaParams, samples: np.ndarray) -> np.ndarray:
    """Multiply one symbol window by the base down-chirp."""
    samples = np.asarray(samples)
    n = params.samples_per_symbol
    if samples.size != n:
        raise ValueError(f"expected {n} samples, got {samples.size}")
    return samples * downchirp(params)


def demodulate_symbol(params: LoRaParams, samples: np.ndarray) -> int:
    """Decode one symbol window to the max-energy FFT bin."""
    spectrum = np.fft.fft(dechirp_symbol(params, samples), params.chips_per_symbol)
    return int(np.argmax(np.abs(spectrum)))


def demodulate_symbols(params: LoRaParams, waveform: np.ndarray) -> np.ndarray:
    """Decode a contiguous run of symbol windows."""
    waveform = np.asarray(waveform)
    n = params.samples_per_symbol
    n_sym = waveform.size // n
    out = np.zeros(n_sym, dtype=np.int64)
    for i in range(n_sym):
        out[i] = demodulate_symbol(params, waveform[i * n : (i + 1) * n])
    return out


class CssDemodulator:
    """Frame-level demodulator with CFO correction from the preamble.

    The preamble symbols are all zero, so any consistent nonzero peak during
    the preamble is the transmitter's aggregate frequency offset; the
    demodulator subtracts it (rounded to an integer bin) from the data
    peaks.  This models the standard LoRa receiver's integer-bin CFO
    compensation -- deliberately *without* Choir's fractional-offset
    machinery.
    """

    def __init__(self, params: LoRaParams, sync_word: int | None = None) -> None:
        self.params = params
        self.sync_word = sync_word

    def demodulate_frame(self, waveform: np.ndarray, n_data_symbols: int) -> np.ndarray:
        """Decode the data symbols of one frame starting at sample 0."""
        params = self.params
        n = params.samples_per_symbol
        n_overhead = params.preamble_len + (1 if self.sync_word is not None else 0)
        needed = (n_overhead + n_data_symbols) * n
        waveform = np.asarray(waveform)
        if waveform.size < needed:
            raise ValueError(
                f"waveform too short: need {needed} samples, got {waveform.size}"
            )
        all_symbols = demodulate_symbols(params, waveform[:needed])
        preamble_peaks = all_symbols[: params.preamble_len]
        # Integer CFO estimate: modal preamble peak (all preamble symbols are 0).
        values, counts = np.unique(preamble_peaks, return_counts=True)
        cfo_bins = int(values[np.argmax(counts)])
        data = all_symbols[n_overhead:]
        return (data - cfo_bins) % params.chips_per_symbol
