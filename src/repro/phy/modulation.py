"""CSS modulation: symbol values -> complex baseband waveform."""

from __future__ import annotations

import numpy as np

from repro.phy.chirp import chirp_train, upchirp
from repro.phy.params import LoRaParams


def modulate_symbols(params: LoRaParams, symbols: np.ndarray | list) -> np.ndarray:
    """Modulate a sequence of symbol values into a CSS waveform.

    Each symbol ``s`` becomes one up-chirp starting at frequency
    ``s * bin_width`` (paper Fig. 2); the output is the concatenation.
    """
    return chirp_train(params, symbols)


class CssModulator:
    """Stateful modulator that prepends the frame preamble.

    The preamble is ``params.preamble_len`` base up-chirps (symbol 0), the
    shared "known symbol" Choir uses to estimate per-user offsets
    (paper Sec. 4).  A sync word symbol can optionally follow it so the
    standard demodulator can delimit preamble from data.
    """

    def __init__(self, params: LoRaParams, sync_word: int | None = None) -> None:
        self.params = params
        if sync_word is not None and not 0 <= sync_word < params.chips_per_symbol:
            raise ValueError(f"sync_word out of range: {sync_word}")
        self.sync_word = sync_word

    def preamble(self) -> np.ndarray:
        """The preamble waveform alone."""
        base = upchirp(self.params, 0)
        return np.tile(base, self.params.preamble_len)

    def frame_symbols(self, data_symbols: np.ndarray | list) -> np.ndarray:
        """The full frame symbol sequence: preamble [+ sync] + data."""
        head = [0] * self.params.preamble_len
        if self.sync_word is not None:
            head.append(self.sync_word)
        return np.concatenate([np.asarray(head, dtype=int), np.asarray(data_symbols, dtype=int)])

    def frame_waveform(self, data_symbols: np.ndarray | list) -> np.ndarray:
        """Full frame: preamble [+ sync word] + data chirps."""
        return modulate_symbols(self.params, self.frame_symbols(data_symbols))

    def frame_num_symbols(self, n_data_symbols: int) -> int:
        """Total symbols in a frame carrying ``n_data_symbols``."""
        return self.params.preamble_len + (1 if self.sync_word is not None else 0) + n_data_symbols
